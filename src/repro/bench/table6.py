"""Table VI: point vs cluster multicolor symmetric Gauss-Seidel as GMRES preconditioners.

For five systems (bodyy5, Elasticity3D_60, Geo_1438, Laplace3D_100, Serena — synthetic
stand-ins at reproduction scale) the paper compares the point multicolor SGS
preconditioner of Kokkos Kernels against the cluster multicolor SGS of Algorithm 4
(clusters from Algorithm 3 aggregation), reporting setup time, total apply (solve)
time and GMRES iterations. The shape to reproduce: the cluster method's setup is
cheaper (it colors a much smaller, coarsened graph) and its iteration count is in the
same ballpark as the point method's (the paper reports ~5% fewer iterations,
geometric mean).
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph.suite import paper_statistics
from ..solvers.gmres import gmres
from ..gs.cluster import ClusterMulticolorGaussSeidel
from ..gs.multicolor import MulticolorGaussSeidel
from ..util.tables import Table
from .config import BenchConfig, cached_suite_matrix
from .experiment import Experiment, register_experiment, warm_suite_matrices

__all__ = [
    "Table6Row", "run_table6", "table6_table", "PAPER_TABLE6", "TABLE6_MATRICES",
    "TABLE6_EXPERIMENT",
]

#: Matrices used in the paper's Table VI.
TABLE6_MATRICES: Tuple[str, ...] = (
    "bodyy5", "Elasticity3D_60", "Geo_1438", "Laplace3D_100", "Serena",
)

#: Paper reference rows:
#: name -> (point setup s, cluster setup s, point apply s, cluster apply s, point iters, cluster iters).
PAPER_TABLE6: Dict[str, Tuple[float, float, float, float, float, float]] = {
    "bodyy5": (0.0154, 0.00849, 0.124, 0.0616, 187.0, 172.6),
    "Elasticity3D_60": (0.174, 0.0438, 7.41, 4.56, 328.2, 337.4),
    "Geo_1438": (0.209, 0.0662, 11.1, 4.73, 408.5, 388.4),
    "Laplace3D_100": (0.0553, 0.0409, 0.664, 0.567, 158.4, 144.6),
    "Serena": (0.215, 0.0664, 6.55, 2.93, 227.0, 219.2),
}


@dataclass(frozen=True)
class Table6Row:
    """Measured preconditioner comparison for one matrix."""

    matrix: str
    point_setup_seconds: float
    cluster_setup_seconds: float
    point_apply_seconds: float
    cluster_apply_seconds: float
    point_iterations: int
    cluster_iterations: int
    point_converged: bool
    cluster_converged: bool
    paper: Tuple[float, float, float, float, float, float]


def _plan(config: BenchConfig) -> List[str]:
    return list(config.matrices if config.matrices is not None else TABLE6_MATRICES)


def table6_task(
    name: str, config: BenchConfig, tol: float = 1e-8, maxiter: int = 800
) -> Table6Row:
    """Per-matrix map stage: point vs cluster multicolor SGS preconditioning GMRES."""
    A = cached_suite_matrix(name, config.scale, config.seed, config.mtx_dir)
    b = np.ones(A.shape[0])
    point = MulticolorGaussSeidel(A, sweeps=1, symmetric=True)
    cluster = ClusterMulticolorGaussSeidel(A, sweeps=1, symmetric=True)

    start = time.perf_counter()
    point_result = gmres(A, b, M=point.as_preconditioner(), tol=tol, maxiter=maxiter)
    point_apply = time.perf_counter() - start
    start = time.perf_counter()
    cluster_result = gmres(A, b, M=cluster.as_preconditioner(), tol=tol, maxiter=maxiter)
    cluster_apply = time.perf_counter() - start

    return Table6Row(
        matrix=name,
        point_setup_seconds=point.setup_seconds,
        cluster_setup_seconds=cluster.setup_seconds,
        point_apply_seconds=point_apply,
        cluster_apply_seconds=cluster_apply,
        point_iterations=point_result.iterations,
        cluster_iterations=cluster_result.iterations,
        point_converged=point_result.converged,
        cluster_converged=cluster_result.converged,
        paper=PAPER_TABLE6.get(name, (float("nan"),) * 6),
    )


def _render(rows: List[Table6Row]) -> str:
    return table6_table(rows).render()


TABLE6_EXPERIMENT = register_experiment(
    Experiment(
        name="table6",
        title="Table VI: point vs cluster multicolor SGS preconditioning GMRES",
        plan=_plan,
        task=table6_task,
        render=_render,
        key_field="matrix",
        deterministic_fields=("point_iterations", "cluster_iterations"),
        warm=warm_suite_matrices,
    )
)


def run_table6(
    config: BenchConfig = BenchConfig(),
    tol: float = 1e-8,
    maxiter: int = 800,
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
) -> List[Table6Row]:
    """Run the Table VI experiment on the five stand-in systems."""
    task = None
    if (tol, maxiter) != (1e-8, 800):
        task = functools.partial(table6_task, tol=tol, maxiter=maxiter)
    return TABLE6_EXPERIMENT.run(config, backend=backend, jobs=jobs, task=task).rows


def table6_table(rows: List[Table6Row]) -> Table:
    """Format Table VI rows as a paper-style text table."""
    table = Table(
        ["matrix", "P. setup (s)", "C. setup (s)", "P. apply (s)", "C. apply (s)",
         "P. iters", "C. iters", "paper P./C. iters"],
        title="Table VI: point vs cluster multicolor SGS preconditioning GMRES",
    )
    for row in rows:
        table.add_row(
            [
                row.matrix,
                round(row.point_setup_seconds, 4), round(row.cluster_setup_seconds, 4),
                round(row.point_apply_seconds, 3), round(row.cluster_apply_seconds, 3),
                row.point_iterations, row.cluster_iterations,
                f"{row.paper[4]:.1f} / {row.paper[5]:.1f}",
            ]
        )
    return table

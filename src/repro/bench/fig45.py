"""Figs. 4 and 5: strong-scaling efficiency of MIS-2 on the Intel Skylake and
ThunderX2 CPUs.

The paper plots, per matrix, the scaling efficiency ``t(1) / (p * t(p))`` against the
OpenMP thread count, observing near-ideal scaling up to the physical core count
(48 on Skylake, 56 on ThunderX2, with 26.9x and 43.9x geometric-mean speedups
respectively) and a slowdown when hyperthreads are used. The same curves are produced
here from the CPU strong-scaling model applied to the memory-traffic counters of
Algorithm 1 — the hardware substitution documented in DESIGN.md.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..mis.kk import kk_mis2
from ..graph.suite import paper_statistics
from ..parallel.costmodel import scale_traffic, scaling_efficiency, strong_scaling_times
from ..parallel.machine import device
from ..util.tables import Table, geometric_mean
from .config import BenchConfig, cached_suite_graph
from .experiment import Experiment, matrix_plan, register_experiment, warm_suite_graphs

__all__ = [
    "ScalingRow", "run_scaling", "scaling_table", "DEFAULT_THREAD_COUNTS",
    "FIG4_EXPERIMENT", "FIG5_EXPERIMENT",
]

#: Thread counts plotted for each CPU (through 2x the physical cores = all hyperthreads).
DEFAULT_THREAD_COUNTS: Dict[str, Sequence[int]] = {
    "skylake": (1, 2, 4, 8, 16, 24, 32, 48, 64, 96),
    "tx2": (1, 2, 4, 8, 16, 28, 42, 56, 84, 112),
}


@dataclass(frozen=True)
class ScalingRow:
    """Strong-scaling curve of one matrix on one CPU."""

    matrix: str
    device_key: str
    thread_counts: Sequence[int]
    #: Modelled time (seconds) at each thread count.
    times: Sequence[float]
    #: Scaling efficiency t(1) / (p * t(p)) at each thread count.
    efficiency: Sequence[float]

    def speedup_at(self, threads: int) -> float:
        """Speedup over one thread at the given thread count."""
        idx = list(self.thread_counts).index(threads)
        return self.times[0] / self.times[idx]


def scaling_task(
    name: str,
    config: BenchConfig,
    device_key: str = "skylake",
    thread_counts: Optional[Tuple[int, ...]] = None,
    extrapolate_to_paper_size: bool = True,
) -> ScalingRow:
    """Per-matrix map stage: the modelled strong-scaling curve on one CPU."""
    spec = device(device_key)
    counts = tuple(thread_counts or DEFAULT_THREAD_COUNTS[device_key])
    graph = cached_suite_graph(name, config.scale, config.seed, config.mtx_dir)
    result = kk_mis2(graph, seed=config.seed)
    traffic = result.traffic
    if extrapolate_to_paper_size:
        record = paper_statistics(name)
        traffic = scale_traffic(traffic, record.paper_num_vertices / max(1, graph.num_vertices))
    times = strong_scaling_times(traffic, spec, counts)
    eff = scaling_efficiency(traffic, spec, counts)
    return ScalingRow(
        matrix=name,
        device_key=device_key,
        thread_counts=counts,
        times=tuple(times),
        efficiency=tuple(eff),
    )


def _render(rows: List[ScalingRow]) -> str:
    return scaling_table(rows).render()


FIG4_EXPERIMENT = register_experiment(
    Experiment(
        name="fig4",
        title="Fig. 4: strong-scaling efficiency on the Intel Skylake CPU",
        plan=matrix_plan,
        task=functools.partial(scaling_task, device_key="skylake"),
        render=_render,
        key_field="matrix",
        deterministic_fields=("thread_counts", "times", "efficiency"),
        warm=warm_suite_graphs,
    )
)

FIG5_EXPERIMENT = register_experiment(
    Experiment(
        name="fig5",
        title="Fig. 5: strong-scaling efficiency on the Marvell ThunderX2 CPU",
        plan=matrix_plan,
        task=functools.partial(scaling_task, device_key="tx2"),
        render=_render,
        key_field="matrix",
        deterministic_fields=("thread_counts", "times", "efficiency"),
        warm=warm_suite_graphs,
    )
)


def run_scaling(
    device_key: str,
    config: BenchConfig = BenchConfig(),
    thread_counts: "Sequence[int] | None" = None,
    extrapolate_to_paper_size: bool = True,
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
) -> List[ScalingRow]:
    """Compute strong-scaling curves for every suite matrix on ``device_key``."""
    spec = device(device_key)
    if spec.kind != "cpu":
        raise ValueError("scaling figures apply to the CPU devices (skylake, tx2)")
    experiment = FIG4_EXPERIMENT if device_key == "skylake" else FIG5_EXPERIMENT
    task = None
    if thread_counts is not None or not extrapolate_to_paper_size:
        task = functools.partial(
            scaling_task,
            device_key=device_key,
            thread_counts=tuple(thread_counts) if thread_counts is not None else None,
            extrapolate_to_paper_size=extrapolate_to_paper_size,
        )
    return experiment.run(config, backend=backend, jobs=jobs, task=task).rows


def scaling_table(rows: List[ScalingRow]) -> Table:
    """Format the scaling curves (efficiency per thread count) plus the geometric-mean
    speedup at the physical core count."""
    if not rows:
        raise ValueError("no scaling rows")
    counts = rows[0].thread_counts
    device_key = rows[0].device_key
    spec = device(device_key)
    table = Table(
        ["matrix"] + [f"{c} thr" for c in counts],
        title=f"Fig. {'4' if device_key == 'skylake' else '5'}: strong-scaling efficiency on {spec.name}",
    )
    for row in rows:
        table.add_row([row.matrix] + [round(e, 3) for e in row.efficiency])
    cores = spec.physical_cores
    if cores in counts:
        mean_speedup = geometric_mean([row.speedup_at(cores) for row in rows])
        table.add_row(
            [f"geomean speedup @{cores}"] + [round(mean_speedup, 1) if c == cores else "-" for c in counts]
        )
    return table

"""Table III: MIS-2 size and iteration count on structured problems of growing size.

The paper varies Galeri Elasticity3D and Laplace3D grids (30^3 ... 60^3 and
50^3 ... 100^3 respectively) and reports that (i) the MIS-2 size stays proportional to
|V| for a given problem type, and (ii) the iteration count grows by only 1-2 as the
problem grows 4-8x — i.e. the expected O(log V) behaviour. The same sweep is run here
on grids scaled down by a configurable factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..graph.generators import elasticity3d, laplace3d
from ..mis.kk import kk_mis2
from ..util.tables import Table
from .config import BenchConfig
from .experiment import Experiment, register_experiment

__all__ = ["Table3Row", "run_table3", "table3_table", "PAPER_TABLE3", "TABLE3_EXPERIMENT"]

#: The paper's Table III reference rows: (problem, |V|, MIS-2 size, iterations).
PAPER_TABLE3: List[Tuple[str, int, int, int]] = [
    ("Elasticity 30x30x30", 81000, 634, 8),
    ("Elasticity 60x30x30", 162000, 1291, 10),
    ("Elasticity 60x60x30", 324000, 2454, 10),
    ("Elasticity 60x60x60", 648000, 4833, 10),
    ("Laplace 50x50x50", 125000, 11469, 9),
    ("Laplace 100x50x50", 250000, 22909, 9),
    ("Laplace 100x100x50", 500000, 45333, 9),
    ("Laplace 100x100x100", 1000000, 90041, 10),
]

#: Grid dimension sweeps mirroring the paper's, at reproduction scale.
DEFAULT_ELASTICITY_GRIDS: List[Tuple[int, int, int]] = [
    (10, 10, 10), (20, 10, 10), (20, 20, 10), (20, 20, 20)
]
DEFAULT_LAPLACE_GRIDS: List[Tuple[int, int, int]] = [
    (17, 17, 17), (34, 17, 17), (34, 34, 17), (34, 34, 34)
]


@dataclass(frozen=True)
class Table3Row:
    """MIS-2 scaling data point for one structured problem."""

    problem: str
    num_vertices: int
    mis2_size: int
    iterations: int
    mis2_fraction: float


def _units(
    elasticity_grids: Sequence[Tuple[int, int, int]],
    laplace_grids: Sequence[Tuple[int, int, int]],
) -> List[Tuple[str, int, int, int]]:
    """Work units: one (problem kind, nx, ny, nz) tuple per structured grid."""
    units = [("Elasticity", nx, ny, nz) for nx, ny, nz in elasticity_grids]
    units += [("Laplace", nx, ny, nz) for nx, ny, nz in laplace_grids]
    return units


def _plan(config: BenchConfig) -> List[Tuple[str, int, int, int]]:
    return _units(DEFAULT_ELASTICITY_GRIDS, DEFAULT_LAPLACE_GRIDS)


def table3_task(unit: Tuple[str, int, int, int], config: BenchConfig) -> Table3Row:
    """Per-grid map stage: MIS-2 size/iterations on one structured problem."""
    kind, nx, ny, nz = unit
    generator = elasticity3d if kind == "Elasticity" else laplace3d
    graph = generator(nx, ny, nz)
    result = kk_mis2(graph, seed=config.seed)
    return Table3Row(
        problem=f"{kind} {nx}x{ny}x{nz}",
        num_vertices=graph.num_vertices,
        mis2_size=result.size,
        iterations=result.iterations,
        mis2_fraction=result.size / max(1, graph.num_vertices),
    )


def _render(rows: List[Table3Row]) -> str:
    return table3_table(rows).render()


TABLE3_EXPERIMENT = register_experiment(
    Experiment(
        name="table3",
        title="Table III: MIS-2 size and iteration count for varying structured problem sizes",
        plan=_plan,
        task=table3_task,
        render=_render,
        key_field="problem",
        deterministic_fields=("num_vertices", "mis2_size", "iterations"),
    )
)


def run_table3(
    config: BenchConfig = BenchConfig(),
    elasticity_grids: Sequence[Tuple[int, int, int]] = tuple(DEFAULT_ELASTICITY_GRIDS),
    laplace_grids: Sequence[Tuple[int, int, int]] = tuple(DEFAULT_LAPLACE_GRIDS),
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
) -> List[Table3Row]:
    """Run the Table III sweep on Elasticity3D and Laplace3D grids."""
    return TABLE3_EXPERIMENT.run(
        config, backend=backend, jobs=jobs, units=_units(elasticity_grids, laplace_grids)
    ).rows


def table3_table(rows: List[Table3Row]) -> Table:
    """Format Table III rows as a paper-style text table."""
    table = Table(
        ["problem", "|V|", "|MIS-2|", "iterations", "MIS-2 fraction"],
        title="Table III: MIS-2 size and iteration count for varying structured problem sizes",
    )
    for row in rows:
        table.add_row(
            [row.problem, row.num_vertices, row.mis2_size, row.iterations,
             round(row.mis2_fraction, 4)]
        )
    return table

"""Benchmark configuration shared by all experiment drivers.

Every driver accepts a :class:`BenchConfig`; the defaults keep the whole suite small
enough to regenerate every table and figure in a few minutes on two CPU cores, while
``scale`` can be raised towards 1.0 to approach the paper's problem sizes when more
hardware is available.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import scipy.sparse as sp

from ..graph.csr import CSRGraph
from ..graph.suite import DEFAULT_SCALE, load_suite_graph, load_suite_matrix, suite_names

__all__ = [
    "BenchConfig",
    "cached_suite_graph",
    "cached_suite_matrix",
    "clear_suite_cache",
    "suite_cache_stats",
]


@dataclass(frozen=True)
class BenchConfig:
    """Knobs shared by the experiment drivers.

    The dataclass is frozen and contains only primitives/tuples, so it is both
    hashable and picklable — experiment task functions carry it into the
    chunked backend's process-pool workers unchanged.
    """

    #: Fraction of the paper's vertex counts used for the synthetic suite stand-ins.
    scale: float = DEFAULT_SCALE
    #: Timed trials per measurement (the paper uses 100; scaled down by default).
    trials: int = 3
    #: Untimed warmup runs before timing.
    warmup: int = 1
    #: Seed for all deterministic pseudo-random choices.
    seed: int = 0
    #: Optional directory with real SuiteSparse ``.mtx`` files (used when present).
    mtx_dir: Optional[str] = None
    #: Subset of suite matrices to run (None = all 17).
    matrices: Optional[Tuple[str, ...]] = None
    #: Execution backend every measurement runs on (None = the process default).
    #: The drivers install it as the default backend for the run, so every kernel's
    #: traffic counter records it.
    backend: Optional[str] = None
    #: Intra-graph partition count for the experiments that support
    #: partition-parallel execution (None = unpartitioned). Partitioned runs
    #: additionally *verify* bit-identicality against the unpartitioned kernels
    #: and record boundary/ghost-exchange/shipped-bytes stats.
    parts: Optional[int] = None
    #: Partitioned execution path: rank-resident (default — each part's CSR
    #: ships to its pinned worker once, supersteps exchange halo deltas) or
    #: the non-resident baseline (``False`` — every superstep re-ships each
    #: part whole). Results are bit-identical either way; only the recorded
    #: shipped-bytes counts (and the wall clock) differ. Ignored when
    #: ``parts`` is None.
    resident: bool = True
    #: Partitioned delta wire format: changed-only halo deltas with
    #: once-per-iteration worklist shipment (default) or the full-halo
    #: format (``False`` — whole halos every ghost-reading phase, worklists
    #: re-sent to every phase that reads them). Results are bit-identical
    #: either way; only the recorded shipped-bytes counts differ. Ignored
    #: when ``parts`` is None.
    changed_deltas: bool = True
    #: Partitioned superstep schedule: overlapped boundary/interior
    #: sub-phases (default — the next phase's halo deltas ship while workers
    #: compute interior sub-worklists) or the barrier baseline (``False`` —
    #: every phase is a full sync point). Results, supersteps and
    #: shipped-byte counts are bit-identical either way; only wall-clock
    #: differs. Ignored when ``parts`` is None (and on non-resident runs,
    #: which always use the barrier schedule).
    overlap: bool = True

    def matrix_names(self) -> List[str]:
        """Names of the matrices this configuration covers, in Table II order."""
        if self.matrices is not None:
            return list(self.matrices)
        return suite_names(main_only=True)


# --------------------------------------------------------------------- suite cache
#
# Suite stand-in generation dominates the small benches, so graphs and matrices are
# cached per process. The caches are module-level LRU dicts with an explicit,
# normalised ``(name, scale, seed, mtx_dir)`` key: under process-pool sharding
# every worker transparently builds its own cache on first use (the dicts are
# never pickled — task functions carry only the key ingredients), and on Linux a
# fork-started worker additionally inherits whatever the parent had already
# built. A lock keeps lookups/evictions safe under the threaded backend's pool;
# generation itself runs outside the lock (a rare duplicate generation is
# harmless — both workers produce the identical deterministic object). Bounded so
# a long sweep over many scales cannot grow without limit.

_CacheKey = Tuple[str, float, int, Optional[str]]
_GRAPH_CACHE: "OrderedDict[_CacheKey, CSRGraph]" = OrderedDict()
_MATRIX_CACHE: "OrderedDict[_CacheKey, sp.csr_matrix]" = OrderedDict()
_CACHE_CAPACITY = 64
_CACHE_LOCK = threading.Lock()


def _cache_key(name: str, scale: float, seed: int, mtx_dir: Optional[str]) -> _CacheKey:
    return (str(name), float(scale), int(seed), None if mtx_dir is None else str(mtx_dir))


def _cache_get(cache: "OrderedDict[_CacheKey, object]", key: _CacheKey):
    with _CACHE_LOCK:
        value = cache.get(key)
        if value is not None:
            cache.move_to_end(key)
        return value


def _cache_put(cache: "OrderedDict[_CacheKey, object]", key: _CacheKey, value) -> None:
    with _CACHE_LOCK:
        cache[key] = value
        cache.move_to_end(key)
        while len(cache) > _CACHE_CAPACITY:
            cache.popitem(last=False)


def cached_suite_graph(
    name: str, scale: float, seed: int, mtx_dir: Optional[str] = None
) -> CSRGraph:
    """Per-process cache of suite stand-in graphs (generation dominates small benches)."""
    key = _cache_key(name, scale, seed, mtx_dir)
    graph = _cache_get(_GRAPH_CACHE, key)
    if graph is None:
        graph = load_suite_graph(name, scale=scale, seed=seed, mtx_dir=mtx_dir)
        _cache_put(_GRAPH_CACHE, key, graph)
    return graph


def cached_suite_matrix(
    name: str, scale: float, seed: int, mtx_dir: Optional[str] = None
) -> sp.csr_matrix:
    """Per-process cache of suite stand-in matrices."""
    key = _cache_key(name, scale, seed, mtx_dir)
    matrix = _cache_get(_MATRIX_CACHE, key)
    if matrix is None:
        matrix = load_suite_matrix(name, scale=scale, seed=seed, mtx_dir=mtx_dir)
        _cache_put(_MATRIX_CACHE, key, matrix)
    return matrix


def clear_suite_cache() -> None:
    """Drop every cached suite graph/matrix in this process."""
    with _CACHE_LOCK:
        _GRAPH_CACHE.clear()
        _MATRIX_CACHE.clear()


def suite_cache_stats() -> Dict[str, int]:
    """Current cache occupancy of this process (for tests and diagnostics)."""
    with _CACHE_LOCK:
        return {"graphs": len(_GRAPH_CACHE), "matrices": len(_MATRIX_CACHE)}

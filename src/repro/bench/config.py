"""Benchmark configuration shared by all experiment drivers.

Every driver accepts a :class:`BenchConfig`; the defaults keep the whole suite small
enough to regenerate every table and figure in a few minutes on two CPU cores, while
``scale`` can be raised towards 1.0 to approach the paper's problem sizes when more
hardware is available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional, Tuple

import scipy.sparse as sp

from ..graph.csr import CSRGraph
from ..graph.suite import DEFAULT_SCALE, load_suite_graph, load_suite_matrix, suite_names

__all__ = ["BenchConfig", "cached_suite_graph", "cached_suite_matrix"]


@dataclass(frozen=True)
class BenchConfig:
    """Knobs shared by the experiment drivers."""

    #: Fraction of the paper's vertex counts used for the synthetic suite stand-ins.
    scale: float = DEFAULT_SCALE
    #: Timed trials per measurement (the paper uses 100; scaled down by default).
    trials: int = 3
    #: Untimed warmup runs before timing.
    warmup: int = 1
    #: Seed for all deterministic pseudo-random choices.
    seed: int = 0
    #: Optional directory with real SuiteSparse ``.mtx`` files (used when present).
    mtx_dir: Optional[str] = None
    #: Subset of suite matrices to run (None = all 17).
    matrices: Optional[Tuple[str, ...]] = None
    #: Execution backend every measurement runs on (None = the process default).
    #: The drivers install it as the default backend for the run, so every kernel's
    #: traffic counter records it.
    backend: Optional[str] = None

    def matrix_names(self) -> List[str]:
        """Names of the matrices this configuration covers, in Table II order."""
        if self.matrices is not None:
            return list(self.matrices)
        return suite_names(main_only=True)


@lru_cache(maxsize=64)
def cached_suite_graph(name: str, scale: float, seed: int, mtx_dir: Optional[str]) -> CSRGraph:
    """Process-wide cache of suite stand-in graphs (generation dominates small benches)."""
    return load_suite_graph(name, scale=scale, seed=seed, mtx_dir=mtx_dir)


@lru_cache(maxsize=64)
def cached_suite_matrix(name: str, scale: float, seed: int, mtx_dir: Optional[str]) -> sp.csr_matrix:
    """Process-wide cache of suite stand-in matrices."""
    return load_suite_matrix(name, scale=scale, seed=seed, mtx_dir=mtx_dir)

"""Figs. 6 and 7: Algorithm 1 vs CUSP (MIS-2 alone) and vs ViennaCL (MIS-2 + coarsening).

Fig. 6 compares Kokkos Kernels MIS-2 against CUSP's implementation of Bell's
algorithm on a V100 (5-7x speedup over the 17 matrices); Fig. 7 compares MIS-2 plus
the basic coarsening of Algorithm 2 against ViennaCL's equivalent pipeline (3-8x).
In this reproduction the CUSP/ViennaCL side is :func:`repro.mis.bell.bell_mis`
(+ Algorithm 2 for Fig. 7), and speedups are reported both through the V100 roofline
model (primary) and as Python wall-clock ratios of the vectorised kernels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

from ..coarsen.basic import mis2_basic_aggregation
from ..graph.suite import paper_statistics
from ..mis.bell import bell_mis
from ..mis.kk import kk_mis2
from ..parallel.costmodel import predict_device_time, scale_traffic
from ..util.tables import Table, geometric_mean
from ..util.timing import repeat_timed
from .config import BenchConfig, cached_suite_graph

__all__ = ["SpeedupRow", "run_fig6", "run_fig7", "speedup_table"]


@dataclass(frozen=True)
class SpeedupRow:
    """Speedup of the Kokkos Kernels pipeline over the baseline library for one matrix."""

    matrix: str
    #: Which comparison this row belongs to (``"cusp"`` for Fig. 6, ``"viennacl"`` for Fig. 7).
    baseline: str
    kk_model_ms: float
    baseline_model_ms: float
    kk_python_ms: float
    baseline_python_ms: float

    @property
    def model_speedup(self) -> float:
        return self.baseline_model_ms / self.kk_model_ms if self.kk_model_ms > 0 else float("nan")

    @property
    def python_speedup(self) -> float:
        return (
            self.baseline_python_ms / self.kk_python_ms if self.kk_python_ms > 0 else float("nan")
        )


def run_fig6(
    config: BenchConfig = BenchConfig(), extrapolate_to_paper_size: bool = True
) -> List[SpeedupRow]:
    """Fig. 6: MIS-2 alone, Algorithm 1 vs CUSP (Bell's algorithm).

    With ``extrapolate_to_paper_size`` (default) both sides' traffic is scaled to the
    paper's problem size before the V100 model is applied, putting the comparison in
    the bandwidth-dominated regime of the paper's measurements.
    """
    rows: List[SpeedupRow] = []
    for name in config.matrix_names():
        graph = cached_suite_graph(name, config.scale, config.seed, config.mtx_dir)
        factor = 1.0
        if extrapolate_to_paper_size:
            factor = paper_statistics(name).paper_num_vertices / max(1, graph.num_vertices)
        kk_result, kk_stats = repeat_timed(
            lambda: kk_mis2(graph, seed=config.seed), trials=config.trials, warmup=config.warmup
        )
        bell_result, bell_stats = repeat_timed(
            lambda: bell_mis(graph, k=2, seed=config.seed),
            trials=config.trials,
            warmup=config.warmup,
        )
        rows.append(
            SpeedupRow(
                matrix=name,
                baseline="cusp",
                kk_model_ms=predict_device_time(scale_traffic(kk_result.traffic, factor), "v100") * 1e3,
                baseline_model_ms=predict_device_time(
                    scale_traffic(bell_result.traffic, factor), "v100") * 1e3,
                kk_python_ms=kk_stats.mean * 1e3,
                baseline_python_ms=bell_stats.mean * 1e3,
            )
        )
    return rows


def run_fig7(
    config: BenchConfig = BenchConfig(), extrapolate_to_paper_size: bool = True
) -> List[SpeedupRow]:
    """Fig. 7: MIS-2 + Algorithm 2 coarsening, Algorithm 1 vs ViennaCL (Bell + same coarsening)."""
    rows: List[SpeedupRow] = []
    for name in config.matrix_names():
        graph = cached_suite_graph(name, config.scale, config.seed, config.mtx_dir)
        factor = 1.0
        if extrapolate_to_paper_size:
            factor = paper_statistics(name).paper_num_vertices / max(1, graph.num_vertices)

        def kk_pipeline():
            mis = kk_mis2(graph, seed=config.seed)
            mis2_basic_aggregation(graph, mis=mis)
            return mis

        def viennacl_pipeline():
            mis = bell_mis(graph, k=2, seed=config.seed)
            mis2_basic_aggregation(graph, mis=mis)
            return mis

        kk_result, kk_stats = repeat_timed(
            kk_pipeline, trials=config.trials, warmup=config.warmup
        )
        vcl_result, vcl_stats = repeat_timed(
            viennacl_pipeline, trials=config.trials, warmup=config.warmup
        )
        rows.append(
            SpeedupRow(
                matrix=name,
                baseline="viennacl",
                kk_model_ms=predict_device_time(scale_traffic(kk_result.traffic, factor), "v100") * 1e3,
                baseline_model_ms=predict_device_time(
                    scale_traffic(vcl_result.traffic, factor), "v100") * 1e3,
                kk_python_ms=kk_stats.mean * 1e3,
                baseline_python_ms=vcl_stats.mean * 1e3,
            )
        )
    return rows


def speedup_table(rows: List[SpeedupRow], figure: str) -> Table:
    """Format Fig. 6/7 speedups plus their geometric mean."""
    table = Table(
        ["matrix", "KK model (ms)", "baseline model (ms)", "model speedup",
         "KK python (ms)", "baseline python (ms)", "python speedup"],
        title=figure,
    )
    for row in rows:
        table.add_row(
            [
                row.matrix,
                round(row.kk_model_ms, 3), round(row.baseline_model_ms, 3),
                round(row.model_speedup, 2),
                round(row.kk_python_ms, 3), round(row.baseline_python_ms, 3),
                round(row.python_speedup, 2),
            ]
        )
    table.add_row(
        [
            "geometric mean", "-", "-",
            round(geometric_mean([r.model_speedup for r in rows]), 2),
            "-", "-",
            round(geometric_mean([r.python_speedup for r in rows]), 2),
        ]
    )
    return table

"""Figs. 6 and 7: Algorithm 1 vs CUSP (MIS-2 alone) and vs ViennaCL (MIS-2 + coarsening).

Fig. 6 compares Kokkos Kernels MIS-2 against CUSP's implementation of Bell's
algorithm on a V100 (5-7x speedup over the 17 matrices); Fig. 7 compares MIS-2 plus
the basic coarsening of Algorithm 2 against ViennaCL's equivalent pipeline (3-8x).
In this reproduction the CUSP/ViennaCL side is :func:`repro.mis.bell.bell_mis`
(+ Algorithm 2 for Fig. 7), and speedups are reported both through the V100 roofline
model (primary) and as Python wall-clock ratios of the vectorised kernels.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import List, Optional

from ..coarsen.basic import mis2_basic_aggregation
from ..graph.suite import paper_statistics
from ..mis.bell import bell_mis
from ..mis.kk import kk_mis2
from ..parallel.costmodel import predict_device_time, scale_traffic
from ..util.tables import Table, geometric_mean
from ..util.timing import repeat_timed
from .config import BenchConfig, cached_suite_graph
from .experiment import Experiment, matrix_plan, register_experiment, warm_suite_graphs

__all__ = [
    "SpeedupRow", "run_fig6", "run_fig7", "speedup_table",
    "FIG6_EXPERIMENT", "FIG7_EXPERIMENT",
]


@dataclass(frozen=True)
class SpeedupRow:
    """Speedup of the Kokkos Kernels pipeline over the baseline library for one matrix."""

    matrix: str
    #: Which comparison this row belongs to (``"cusp"`` for Fig. 6, ``"viennacl"`` for Fig. 7).
    baseline: str
    kk_model_ms: float
    baseline_model_ms: float
    kk_python_ms: float
    baseline_python_ms: float

    @property
    def model_speedup(self) -> float:
        return self.baseline_model_ms / self.kk_model_ms if self.kk_model_ms > 0 else float("nan")

    @property
    def python_speedup(self) -> float:
        return (
            self.baseline_python_ms / self.kk_python_ms if self.kk_python_ms > 0 else float("nan")
        )


def fig6_task(
    name: str, config: BenchConfig, extrapolate_to_paper_size: bool = True
) -> SpeedupRow:
    """Per-matrix map stage: Algorithm 1 vs CUSP (Bell's algorithm), MIS-2 alone."""
    graph = cached_suite_graph(name, config.scale, config.seed, config.mtx_dir)
    factor = 1.0
    if extrapolate_to_paper_size:
        factor = paper_statistics(name).paper_num_vertices / max(1, graph.num_vertices)
    kk_result, kk_stats = repeat_timed(
        lambda: kk_mis2(graph, seed=config.seed), trials=config.trials, warmup=config.warmup
    )
    bell_result, bell_stats = repeat_timed(
        lambda: bell_mis(graph, k=2, seed=config.seed),
        trials=config.trials,
        warmup=config.warmup,
    )
    return SpeedupRow(
        matrix=name,
        baseline="cusp",
        kk_model_ms=predict_device_time(scale_traffic(kk_result.traffic, factor), "v100") * 1e3,
        baseline_model_ms=predict_device_time(
            scale_traffic(bell_result.traffic, factor), "v100") * 1e3,
        kk_python_ms=kk_stats.mean * 1e3,
        baseline_python_ms=bell_stats.mean * 1e3,
    )


def fig7_task(
    name: str, config: BenchConfig, extrapolate_to_paper_size: bool = True
) -> SpeedupRow:
    """Per-matrix map stage: MIS-2 + basic coarsening, Algorithm 1 vs ViennaCL."""
    graph = cached_suite_graph(name, config.scale, config.seed, config.mtx_dir)
    factor = 1.0
    if extrapolate_to_paper_size:
        factor = paper_statistics(name).paper_num_vertices / max(1, graph.num_vertices)

    def kk_pipeline():
        mis = kk_mis2(graph, seed=config.seed)
        mis2_basic_aggregation(graph, mis=mis)
        return mis

    def viennacl_pipeline():
        mis = bell_mis(graph, k=2, seed=config.seed)
        mis2_basic_aggregation(graph, mis=mis)
        return mis

    kk_result, kk_stats = repeat_timed(
        kk_pipeline, trials=config.trials, warmup=config.warmup
    )
    vcl_result, vcl_stats = repeat_timed(
        viennacl_pipeline, trials=config.trials, warmup=config.warmup
    )
    return SpeedupRow(
        matrix=name,
        baseline="viennacl",
        kk_model_ms=predict_device_time(scale_traffic(kk_result.traffic, factor), "v100") * 1e3,
        baseline_model_ms=predict_device_time(
            scale_traffic(vcl_result.traffic, factor), "v100") * 1e3,
        kk_python_ms=kk_stats.mean * 1e3,
        baseline_python_ms=vcl_stats.mean * 1e3,
    )


def _render_fig6(rows: List[SpeedupRow]) -> str:
    return speedup_table(rows, "Fig. 6: Algorithm 1 vs CUSP (MIS-2)").render()


def _render_fig7(rows: List[SpeedupRow]) -> str:
    return speedup_table(rows, "Fig. 7: Algorithm 1 + coarsening vs ViennaCL").render()


FIG6_EXPERIMENT = register_experiment(
    Experiment(
        name="fig6",
        title="Fig. 6: Algorithm 1 vs CUSP (MIS-2)",
        plan=matrix_plan,
        task=fig6_task,
        render=_render_fig6,
        key_field="matrix",
        deterministic_fields=("kk_model_ms", "baseline_model_ms"),
        warm=warm_suite_graphs,
    )
)

FIG7_EXPERIMENT = register_experiment(
    Experiment(
        name="fig7",
        title="Fig. 7: Algorithm 1 + coarsening vs ViennaCL",
        plan=matrix_plan,
        task=fig7_task,
        render=_render_fig7,
        key_field="matrix",
        deterministic_fields=("kk_model_ms", "baseline_model_ms"),
        warm=warm_suite_graphs,
    )
)


def run_fig6(
    config: BenchConfig = BenchConfig(),
    extrapolate_to_paper_size: bool = True,
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
) -> List[SpeedupRow]:
    """Fig. 6: MIS-2 alone, Algorithm 1 vs CUSP (Bell's algorithm).

    With ``extrapolate_to_paper_size`` (default) both sides' traffic is scaled to the
    paper's problem size before the V100 model is applied, putting the comparison in
    the bandwidth-dominated regime of the paper's measurements.
    """
    task = None
    if not extrapolate_to_paper_size:
        task = functools.partial(fig6_task, extrapolate_to_paper_size=False)
    return FIG6_EXPERIMENT.run(config, backend=backend, jobs=jobs, task=task).rows


def run_fig7(
    config: BenchConfig = BenchConfig(),
    extrapolate_to_paper_size: bool = True,
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
) -> List[SpeedupRow]:
    """Fig. 7: MIS-2 + Algorithm 2 coarsening, Algorithm 1 vs ViennaCL (Bell + same coarsening)."""
    task = None
    if not extrapolate_to_paper_size:
        task = functools.partial(fig7_task, extrapolate_to_paper_size=False)
    return FIG7_EXPERIMENT.run(config, backend=backend, jobs=jobs, task=task).rows


def speedup_table(rows: List[SpeedupRow], figure: str) -> Table:
    """Format Fig. 6/7 speedups plus their geometric mean."""
    table = Table(
        ["matrix", "KK model (ms)", "baseline model (ms)", "model speedup",
         "KK python (ms)", "baseline python (ms)", "python speedup"],
        title=figure,
    )
    for row in rows:
        table.add_row(
            [
                row.matrix,
                round(row.kk_model_ms, 3), round(row.baseline_model_ms, 3),
                round(row.model_speedup, 2),
                round(row.kk_python_ms, 3), round(row.baseline_python_ms, 3),
                round(row.python_speedup, 2),
            ]
        )
    table.add_row(
        [
            "geometric mean", "-", "-",
            round(geometric_mean([r.model_speedup for r in rows]), 2),
            "-", "-",
            round(geometric_mean([r.python_speedup for r in rows]), 2),
        ]
    )
    return table

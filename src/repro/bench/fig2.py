"""Fig. 2: cumulative speedup of the four optimizations over the Bell baseline.

The paper reports, per matrix on a V100, the speedup of each rung of the optimization
ladder (random priorities, worklists, packed tuples, SIMD) over the Kokkos
implementation of Bell's algorithm, with geometric-mean speedups of 1.28x, 2.55x,
1.72x and 1.37x respectively (8.97x combined). Here every rung is executed with
:func:`repro.mis.variants.run_optimization_level`; speedups are reported both from the
V100 roofline model applied to the recorded memory traffic (the primary reproduction
of the figure) and from the Python wall-clock of the vectorised kernels.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..graph.suite import paper_statistics
from ..mis.variants import OPTIMIZATION_LEVELS, run_optimization_level
from ..parallel.costmodel import predict_device_time, scale_traffic
from ..util.tables import Table, geometric_mean
from ..util.timing import repeat_timed
from .config import BenchConfig, cached_suite_graph
from .experiment import Experiment, matrix_plan, register_experiment, warm_suite_graphs

__all__ = [
    "Fig2Row", "run_fig2", "fig2_table", "fig2_geometric_means", "PAPER_FIG2_MEANS",
    "FIG2_EXPERIMENT",
]

#: Geometric-mean cumulative speedups reported by the paper (V100).
PAPER_FIG2_MEANS: Dict[str, float] = {
    "random_priority": 1.28,
    "worklist": 1.28 * 2.55,
    "packed_status": 1.28 * 2.55 * 1.72,
    "simd": 8.97,
}


@dataclass(frozen=True)
class Fig2Row:
    """Per-matrix modelled/measured times for every optimization level."""

    matrix: str
    #: Level key -> predicted V100 milliseconds.
    predicted_ms: Dict[str, float]
    #: Level key -> measured Python milliseconds.
    python_ms: Dict[str, float]

    def speedup(self, level_key: str, use_model: bool = True) -> float:
        """Speedup of ``level_key`` over the baseline level."""
        source = self.predicted_ms if use_model else self.python_ms
        return source["baseline"] / source[level_key]


def fig2_task(
    name: str, config: BenchConfig, extrapolate_to_paper_size: bool = True
) -> Fig2Row:
    """Per-matrix map stage: the four-rung optimization ladder over the Bell baseline."""
    graph = cached_suite_graph(name, config.scale, config.seed, config.mtx_dir)
    factor = 1.0
    if extrapolate_to_paper_size:
        factor = paper_statistics(name).paper_num_vertices / max(1, graph.num_vertices)
    predicted: Dict[str, float] = {}
    python_ms: Dict[str, float] = {}
    for level in OPTIMIZATION_LEVELS:
        result, stats = repeat_timed(
            lambda lv=level: run_optimization_level(graph, lv, seed=config.seed),
            trials=config.trials,
            warmup=config.warmup,
        )
        traffic = scale_traffic(result.traffic, factor) if factor != 1.0 else result.traffic
        predicted[level.key] = predict_device_time(traffic, "v100") * 1e3
        python_ms[level.key] = stats.mean * 1e3
    return Fig2Row(matrix=name, predicted_ms=predicted, python_ms=python_ms)


def _render(rows: List[Fig2Row]) -> str:
    return (
        fig2_table(rows, use_model=True).render()
        + "\n\n"
        + fig2_table(rows, use_model=False).render()
    )


FIG2_EXPERIMENT = register_experiment(
    Experiment(
        name="fig2",
        title="Fig. 2: cumulative speedups of the optimization ladder over the Bell baseline",
        plan=matrix_plan,
        task=fig2_task,
        render=_render,
        key_field="matrix",
        deterministic_fields=("predicted_ms",),
        warm=warm_suite_graphs,
    )
)


def run_fig2(
    config: BenchConfig = BenchConfig(),
    extrapolate_to_paper_size: bool = True,
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
) -> List[Fig2Row]:
    """Run the optimization ladder on every suite matrix.

    With ``extrapolate_to_paper_size`` (default) the traffic of every level is scaled
    to the paper's problem size before the V100 model is applied, so the modelled
    speedups correspond to the bandwidth-dominated regime Fig. 2 was measured in.
    """
    task = None
    if not extrapolate_to_paper_size:
        task = functools.partial(fig2_task, extrapolate_to_paper_size=False)
    return FIG2_EXPERIMENT.run(config, backend=backend, jobs=jobs, task=task).rows


def fig2_geometric_means(rows: List[Fig2Row], use_model: bool = True) -> Dict[str, float]:
    """Geometric-mean cumulative speedup per optimization level (over the baseline)."""
    means: Dict[str, float] = {}
    for level in OPTIMIZATION_LEVELS[1:]:
        means[level.key] = geometric_mean([row.speedup(level.key, use_model) for row in rows])
    return means


def fig2_table(rows: List[Fig2Row], use_model: bool = True) -> Table:
    """Format the Fig. 2 data as a per-matrix speedup table plus geometric means."""
    source = "V100 model" if use_model else "Python wall-clock"
    table = Table(
        ["matrix"] + [level.label for level in OPTIMIZATION_LEVELS[1:]],
        title=f"Fig. 2: cumulative speedups over the Bell baseline ({source})",
    )
    for row in rows:
        table.add_row(
            [row.matrix]
            + [round(row.speedup(level.key, use_model), 2) for level in OPTIMIZATION_LEVELS[1:]]
        )
    means = fig2_geometric_means(rows, use_model)
    table.add_row(["geometric mean"] + [round(means[lv.key], 2) for lv in OPTIMIZATION_LEVELS[1:]])
    return table

"""Table II: suite statistics and mean MIS-2 times on the four architectures.

The hardware columns (V100, MI100, Skylake, ThunderX2) are reproduced through the
roofline cost model of :mod:`repro.parallel.costmodel` applied to the memory-traffic
counters recorded by Algorithm 1; the Python wall-clock time of the vectorised kernel
is reported as well for completeness, and the paper's published milliseconds are
attached to every row for direct comparison in EXPERIMENTS.md.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..graph.ops import degree_statistics
from ..graph.suite import paper_statistics
from ..mis.kk import kk_mis2
from ..parallel.costmodel import predict_device_time, scale_traffic
from ..parallel.machine import device_names
from ..util.tables import Table
from ..util.timing import repeat_timed
from .config import BenchConfig, cached_suite_graph
from .experiment import Experiment, matrix_plan, register_experiment, warm_suite_graphs

__all__ = ["Table2Row", "run_table2", "table2_table", "TABLE2_EXPERIMENT"]


@dataclass(frozen=True)
class Table2Row:
    """Statistics and times (milliseconds) for one matrix."""

    matrix: str
    num_vertices: int
    num_edge_slots: int
    avg_degree: float
    max_degree: int
    #: Predicted time per device key, milliseconds.
    predicted_ms: Dict[str, float]
    #: Measured Python wall-clock of the vectorised kernel, milliseconds.
    python_ms: float
    #: Published per-device times, milliseconds (paper Table II).
    paper_ms: Dict[str, float]


def table2_task(
    name: str, config: BenchConfig, extrapolate_to_paper_size: bool = True
) -> Table2Row:
    """Per-matrix map stage: suite statistics plus modelled/measured MIS-2 times."""
    graph = cached_suite_graph(name, config.scale, config.seed, config.mtx_dir)
    result, stats = repeat_timed(
        lambda: kk_mis2(graph, seed=config.seed),
        trials=config.trials,
        warmup=config.warmup,
    )
    degs = degree_statistics(graph)
    traffic = result.traffic
    if extrapolate_to_paper_size:
        record = paper_statistics(name)
        factor = record.paper_num_vertices / max(1, graph.num_vertices)
        traffic = scale_traffic(traffic, factor)
    predicted = {
        key: predict_device_time(traffic, key) * 1e3 for key in device_names()
    }
    return Table2Row(
        matrix=name,
        num_vertices=degs.num_vertices,
        num_edge_slots=degs.num_edge_slots,
        avg_degree=degs.average_degree,
        max_degree=degs.max_degree,
        predicted_ms=predicted,
        python_ms=stats.mean * 1e3,
        paper_ms=paper_statistics(name).paper_times_ms,
    )


def _render(rows: List[Table2Row]) -> str:
    return table2_table(rows).render()


TABLE2_EXPERIMENT = register_experiment(
    Experiment(
        name="table2",
        title="Table II: suite statistics and modelled MIS-2 times per architecture",
        plan=matrix_plan,
        task=table2_task,
        render=_render,
        key_field="matrix",
        deterministic_fields=("num_vertices", "num_edge_slots", "max_degree", "predicted_ms"),
        warm=warm_suite_graphs,
    )
)


def run_table2(
    config: BenchConfig = BenchConfig(),
    extrapolate_to_paper_size: bool = True,
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
) -> List[Table2Row]:
    """Run the Table II experiment and return one row per suite matrix.

    With ``extrapolate_to_paper_size`` (default) the recorded traffic is scaled from
    the stand-in's vertex count up to the paper's full problem size before the device
    model is applied, so the predicted milliseconds are directly comparable to the
    paper's Table II columns; the Python wall-clock column always refers to the
    stand-in actually executed.
    """
    task = None
    if not extrapolate_to_paper_size:
        task = functools.partial(table2_task, extrapolate_to_paper_size=False)
    return TABLE2_EXPERIMENT.run(config, backend=backend, jobs=jobs, task=task).rows


def table2_table(rows: List[Table2Row]) -> Table:
    """Format Table II rows as a paper-style text table."""
    table = Table(
        [
            "matrix", "|V|", "|E|", "avg deg", "max deg",
            "V100 (ms)", "MI100 (ms)", "Skylake (ms)", "TX2 (ms)", "Python (ms)",
        ],
        title="Table II: suite statistics and modelled MIS-2 times per architecture",
    )
    for row in rows:
        table.add_row(
            [
                row.matrix,
                row.num_vertices,
                row.num_edge_slots,
                round(row.avg_degree, 2),
                row.max_degree,
                round(row.predicted_ms["v100"], 3),
                round(row.predicted_ms["mi100"], 3),
                round(row.predicted_ms["skylake"], 3),
                round(row.predicted_ms["tx2"], 3),
                round(row.python_ms, 3),
            ]
        )
    return table

"""Fig. 3: bandwidth-efficiency profiles across the four architectures.

The paper defines bandwidth efficiency as "MIS-2 instances computed per second divided
by the device's memory bandwidth"; with perfect performance portability the value is
identical on every device. Fig. 3 plots, per matrix, each device's efficiency as a
fraction of the best efficiency among the four devices. The same quantity is computed
here from the roofline cost model (kernel-launch overheads are what breaks perfect
portability in the model, just as launch/latency overheads do on real hardware).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..mis.kk import kk_mis2
from ..graph.suite import paper_statistics
from ..parallel.costmodel import bandwidth_efficiency, scale_traffic
from ..parallel.machine import device_names
from ..util.tables import Table
from .config import BenchConfig, cached_suite_graph
from .experiment import Experiment, matrix_plan, register_experiment, warm_suite_graphs

__all__ = ["Fig3Row", "run_fig3", "fig3_table", "FIG3_EXPERIMENT"]


@dataclass(frozen=True)
class Fig3Row:
    """Bandwidth-efficiency profile of one matrix."""

    matrix: str
    #: Device key -> raw bandwidth efficiency (instances/s per GB/s).
    efficiency: Dict[str, float]

    def normalized(self) -> Dict[str, float]:
        """Each device's efficiency divided by the best device's efficiency."""
        best = max(self.efficiency.values())
        return {k: (v / best if best > 0 else 0.0) for k, v in self.efficiency.items()}

    def best_device(self) -> str:
        return max(self.efficiency, key=self.efficiency.get)


def fig3_task(
    name: str, config: BenchConfig, extrapolate_to_paper_size: bool = True
) -> Fig3Row:
    """Per-matrix map stage: bandwidth efficiency of MIS-2 on each device."""
    graph = cached_suite_graph(name, config.scale, config.seed, config.mtx_dir)
    result = kk_mis2(graph, seed=config.seed)
    traffic = result.traffic
    if extrapolate_to_paper_size:
        record = paper_statistics(name)
        traffic = scale_traffic(traffic, record.paper_num_vertices / max(1, graph.num_vertices))
    eff = {key: bandwidth_efficiency(traffic, key) for key in device_names()}
    return Fig3Row(matrix=name, efficiency=eff)


def _render(rows: List[Fig3Row]) -> str:
    return fig3_table(rows).render()


FIG3_EXPERIMENT = register_experiment(
    Experiment(
        name="fig3",
        title="Fig. 3: bandwidth-efficiency profiles of the four architectures",
        plan=matrix_plan,
        task=fig3_task,
        render=_render,
        key_field="matrix",
        deterministic_fields=("efficiency",),
        warm=warm_suite_graphs,
    )
)


def run_fig3(
    config: BenchConfig = BenchConfig(),
    extrapolate_to_paper_size: bool = True,
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
) -> List[Fig3Row]:
    """Compute the bandwidth-efficiency profile for every suite matrix.

    With ``extrapolate_to_paper_size`` (default) the traffic is scaled to the paper's
    problem sizes first, so the GPU profiles are bandwidth-dominated as in the paper
    rather than launch-latency-dominated (which is what happens at the small default
    reproduction scale).
    """
    task = None
    if not extrapolate_to_paper_size:
        task = functools.partial(fig3_task, extrapolate_to_paper_size=False)
    return FIG3_EXPERIMENT.run(config, backend=backend, jobs=jobs, task=task).rows


def fig3_table(rows: List[Fig3Row]) -> Table:
    """Format the Fig. 3 profiles (fraction of best efficiency per device)."""
    table = Table(
        ["matrix"] + [f"{key} (frac of best)" for key in device_names()] + ["best device"],
        title="Fig. 3: bandwidth-efficiency profiles of the four architectures",
    )
    for row in rows:
        norm = row.normalized()
        table.add_row(
            [row.matrix] + [round(norm[key], 3) for key in device_names()] + [row.best_device()]
        )
    return table

"""Fig. 3: bandwidth-efficiency profiles across the four architectures.

The paper defines bandwidth efficiency as "MIS-2 instances computed per second divided
by the device's memory bandwidth"; with perfect performance portability the value is
identical on every device. Fig. 3 plots, per matrix, each device's efficiency as a
fraction of the best efficiency among the four devices. The same quantity is computed
here from the roofline cost model (kernel-launch overheads are what breaks perfect
portability in the model, just as launch/latency overheads do on real hardware).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..mis.kk import kk_mis2
from ..graph.suite import paper_statistics
from ..parallel.costmodel import bandwidth_efficiency, scale_traffic
from ..parallel.machine import device_names
from ..util.tables import Table
from .config import BenchConfig, cached_suite_graph

__all__ = ["Fig3Row", "run_fig3", "fig3_table"]


@dataclass(frozen=True)
class Fig3Row:
    """Bandwidth-efficiency profile of one matrix."""

    matrix: str
    #: Device key -> raw bandwidth efficiency (instances/s per GB/s).
    efficiency: Dict[str, float]

    def normalized(self) -> Dict[str, float]:
        """Each device's efficiency divided by the best device's efficiency."""
        best = max(self.efficiency.values())
        return {k: (v / best if best > 0 else 0.0) for k, v in self.efficiency.items()}

    def best_device(self) -> str:
        return max(self.efficiency, key=self.efficiency.get)


def run_fig3(
    config: BenchConfig = BenchConfig(), extrapolate_to_paper_size: bool = True
) -> List[Fig3Row]:
    """Compute the bandwidth-efficiency profile for every suite matrix.

    With ``extrapolate_to_paper_size`` (default) the traffic is scaled to the paper's
    problem sizes first, so the GPU profiles are bandwidth-dominated as in the paper
    rather than launch-latency-dominated (which is what happens at the small default
    reproduction scale).
    """
    rows: List[Fig3Row] = []
    for name in config.matrix_names():
        graph = cached_suite_graph(name, config.scale, config.seed, config.mtx_dir)
        result = kk_mis2(graph, seed=config.seed)
        traffic = result.traffic
        if extrapolate_to_paper_size:
            record = paper_statistics(name)
            traffic = scale_traffic(traffic, record.paper_num_vertices / max(1, graph.num_vertices))
        eff = {key: bandwidth_efficiency(traffic, key) for key in device_names()}
        rows.append(Fig3Row(matrix=name, efficiency=eff))
    return rows


def fig3_table(rows: List[Fig3Row]) -> Table:
    """Format the Fig. 3 profiles (fraction of best efficiency per device)."""
    table = Table(
        ["matrix"] + [f"{key} (frac of best)" for key in device_names()] + ["best device"],
        title="Fig. 3: bandwidth-efficiency profiles of the four architectures",
    )
    for row in rows:
        norm = row.normalized()
        table.add_row(
            [row.matrix] + [round(norm[key], 3) for key in device_names()] + [row.best_device()]
        )
    return table

"""Declarative Experiment framework: plan / map / reduce for every paper experiment.

The paper's evaluation is twelve sweeps of the same shape — "for every matrix (or
grid, or aggregation scheme), run some kernels and record a row" — and its headline
claim is that one algorithm expressed against portable primitives runs on every
execution space. This module applies the same split to the benchmark layer itself:
each experiment is expressed **declaratively** as

* a *plan* stage: ``plan(config) -> units`` producing the picklable work units
  (matrix names, grid specs, scheme names);
* a *map* stage: a **module-level, picklable** ``task(unit, config) -> row``
  function executed through :meth:`ExecutionBackend.map_graphs`, so the chunked
  backend shards the sweep over a process pool and the threaded backend over a
  thread pool without the experiment knowing;
* a *reduce* stage: a ``render`` function formatting the collected rows as the
  paper-style table.

:class:`Experiment.run` returns a structured :class:`ExperimentResult` (JSON
round-trippable, persisted as ``benchmarks/results/BENCH_<exp>_<backend>.json``)
whose ``counts`` dictionary holds the experiment's *deterministic* measurables
(iteration counts, set sizes, modelled times). :func:`sweep` runs one experiment
across several backends, asserts those counts are identical everywhere (the
determinism guarantee of the backend-equivalence suite, enforced end-to-end on the
real sweep path) and reports the per-backend wall-clock speedup table — the
paper's Fig. 3 analogue for Python backends.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..parallel.backends import (
    ExecutionBackend,
    default_backend,
    resolve_backend,
    set_default_backend,
)
from ..util.tables import Table, format_seconds
from .config import BenchConfig

__all__ = [
    "Experiment",
    "ExperimentResult",
    "SweepMismatchError",
    "SweepResult",
    "default_results_dir",
    "experiment_names",
    "matrix_plan",
    "get_experiment",
    "register_experiment",
    "run_experiment",
    "sweep",
    "sweep_table",
]


def default_results_dir() -> Path:
    """Where ``--json`` results land (``benchmarks/results/`` unless overridden)."""
    return Path(os.environ.get("REPRO_BENCH_RESULTS", "benchmarks/results"))


def matrix_plan(config: BenchConfig) -> List[str]:
    """The standard plan stage shared by every suite-matrix sweep: one unit per
    matrix of the configuration, in Table II order."""
    return config.matrix_names()


def warm_suite_graphs(units: Sequence[str], config: BenchConfig) -> None:
    """Warm hook for graph-based suite sweeps: generate each stand-in graph once."""
    from .config import cached_suite_graph

    for name in units:
        cached_suite_graph(name, config.scale, config.seed, config.mtx_dir)


def warm_suite_matrices(units: Sequence[str], config: BenchConfig) -> None:
    """Warm hook for matrix-based suite sweeps: generate each stand-in matrix once."""
    from .config import cached_suite_matrix

    for name in units:
        cached_suite_matrix(name, config.scale, config.seed, config.mtx_dir)


def _jsonable(value: Any) -> Any:
    """Normalise a row/count value into strict-JSON-representable form.

    Non-finite floats map to ``None`` — ``json.dumps`` would otherwise emit
    the non-standard ``NaN``/``Infinity`` tokens, which most parsers outside
    Python reject, corrupting the ``BENCH_*`` records CI uploads.
    """
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # NumPy scalars
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _record_infix(
    parts: Optional[int], resident: bool, changed_deltas: bool, overlap: bool = True
) -> str:
    """The ``_p<k>[nr][fh][nv]`` filename infix distinguishing partitioned-run
    records (shared by per-backend results and sweep summaries — the CI
    compare gates rely on the two staying pairable)."""
    if not parts:
        return ""
    infix = f"_p{parts}"
    if not resident:
        infix += "nr"
    if not changed_deltas:
        infix += "fh"
    if not overlap:
        infix += "nv"
    return infix


@dataclass
class ExperimentResult:
    """Structured outcome of one :meth:`Experiment.run`.

    ``rows`` holds the per-unit row dataclasses in plan order (plain dicts after a
    JSON round-trip); ``counts`` holds the deterministic measurables that must be
    identical across backends and pool widths.
    """

    experiment: str
    backend: str
    jobs: Optional[int]
    scale: float
    seed: int
    trials: int
    units: int
    elapsed_seconds: float
    counts: Dict[str, Any]
    rows: List[Any] = field(default_factory=list)
    #: Intra-graph partition count the run used (None = unpartitioned).
    parts: Optional[int] = None
    #: Whether a partitioned run used the rank-resident execution path
    #: (True, the default) or the re-ship-everything baseline. Always True
    #: for unpartitioned runs.
    resident: bool = True
    #: Whether a partitioned run shipped changed-only halo deltas (True, the
    #: default) or the full-halo wire format. Always True for unpartitioned
    #: runs.
    changed_deltas: bool = True
    #: Whether a partitioned run used the overlapped boundary/interior
    #: superstep schedule (True, the default) or the barrier baseline.
    #: Always True for unpartitioned runs. Overlap changes only wall-clock —
    #: every deterministic count and byte field is identical either way.
    overlap: bool = True

    def to_dict(self) -> Dict[str, Any]:
        rows = [
            _jsonable(dataclasses.asdict(r)) if dataclasses.is_dataclass(r) else _jsonable(r)
            for r in self.rows
        ]
        return {
            "experiment": self.experiment,
            "backend": self.backend,
            "jobs": self.jobs,
            "scale": self.scale,
            "seed": self.seed,
            "trials": self.trials,
            "units": self.units,
            "parts": self.parts,
            "resident": self.resident,
            "changed_deltas": self.changed_deltas,
            "overlap": self.overlap,
            "elapsed_seconds": self.elapsed_seconds,
            "counts": _jsonable(self.counts),
            "rows": rows,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentResult":
        return cls(
            experiment=data["experiment"],
            backend=data["backend"],
            jobs=data["jobs"],
            scale=data["scale"],
            seed=data["seed"],
            trials=data["trials"],
            units=data["units"],
            elapsed_seconds=data["elapsed_seconds"],
            counts=dict(data["counts"]),
            rows=list(data["rows"]),
            parts=data.get("parts"),
            resident=data.get("resident", True),
            changed_deltas=data.get("changed_deltas", True),
            overlap=data.get("overlap", True),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))

    @property
    def filename(self) -> str:
        """The ``BENCH_*`` perf-trajectory filename this result persists under.

        Partitioned runs get a ``_p<k>`` infix (``_p<k>nr`` on the
        non-resident baseline path, ``_p<k>fh`` under the full-halo wire
        format, ``_p<k>nv`` under the no-overlap barrier schedule) so they
        never clobber the unpartitioned — or each other's — trajectory
        records.
        """
        infix = _record_infix(self.parts, self.resident, self.changed_deltas, self.overlap)
        return f"BENCH_{self.experiment}{infix}_{self.backend}.json"

    def save(self, directory: "Optional[Path | str]" = None) -> Path:
        """Write the JSON record under ``directory`` (default: ``benchmarks/results/``)."""
        directory = Path(directory) if directory is not None else default_results_dir()
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / self.filename
        path.write_text(self.to_json() + "\n")
        return path


@dataclass(frozen=True)
class _TaskInvocation:
    """Picklable closure binding an experiment task to its config and backend.

    This is what actually crosses the ``map_graphs`` seam: the task function (a
    module-level callable or a :func:`functools.partial` of one — never a
    lambda), the frozen :class:`BenchConfig`, and the backend *instance* (every
    shipped backend pickles, including configured clones like
    ``ChunkedBackend(block_elements=8)`` — carrying the instance rather than a
    registry name means a worker runs exactly the configuration the caller
    passed, even on spawn-started pools where the registry default would
    otherwise win). A process-pool worker starts with the process default
    (NumPy) backend, so the invocation installs the carried backend on first
    use; in the threaded and serial paths the default is already this very
    instance and the identity check makes it a no-op, keeping the
    process-global default race-free.
    """

    task: Callable[[Any, BenchConfig], Any]
    config: BenchConfig
    backend: ExecutionBackend

    def __call__(self, unit: Any) -> Any:
        if default_backend() is not self.backend:
            set_default_backend(self.backend)
        return self.task(unit, self.config)


@dataclass(frozen=True)
class Experiment:
    """One paper experiment, expressed as plan + picklable task + render stages."""

    #: Registry/CLI name (``table1`` … ``fig7``, ``smoke``).
    name: str
    #: One-line description shown by ``--list`` style output.
    title: str
    #: Plan stage: the picklable work units this experiment sweeps over.
    plan: Callable[[BenchConfig], Sequence[Any]]
    #: Map stage: module-level ``task(unit, config) -> row`` (picklable, no lambdas).
    task: Callable[[Any, BenchConfig], Any]
    #: Reduce stage: format collected rows as the paper-style table text.
    render: Callable[[List[Any]], str]
    #: Row attribute naming the unit (used to key ``counts``).
    key_field: str = "matrix"
    #: Row attributes that are deterministic (identical across backends/jobs).
    deterministic_fields: Tuple[str, ...] = ()
    #: Optional ``warm(units, config)`` hook that populates whatever per-process
    #: caches the task reads (e.g. :func:`warm_suite_graphs`). ``sweep`` calls it
    #: once, untimed, before the timed per-backend runs so one-time generation
    #: cost never lands in the baseline's timed region. ``None`` (experiments
    #: that generate graphs inside the task — table3, table5, smoke) means there
    #: is nothing to warm.
    warm: Optional[Callable[[Sequence[Any], BenchConfig], None]] = None
    #: Whether the task honours ``BenchConfig.parts`` (partition-parallel
    #: execution). Experiments that don't are rejected when ``parts`` is set —
    #: silently running unpartitioned while stamping ``parts=k`` on the record
    #: would corrupt the perf trajectory.
    parts_aware: bool = False

    def units(self, config: Optional[BenchConfig] = None) -> List[Any]:
        """The work units the plan stage produces for ``config``."""
        return list(self.plan(config if config is not None else BenchConfig()))

    def counts(self, rows: Sequence[Any]) -> Dict[str, Any]:
        """Extract the deterministic measurables from ``rows`` (for sweep checks)."""
        out: Dict[str, Any] = {}
        for row in rows:
            key = str(getattr(row, self.key_field))
            for fname in self.deterministic_fields:
                out[f"{key}/{fname}"] = _jsonable(getattr(row, fname))
        return out

    def run(
        self,
        config: Optional[BenchConfig] = None,
        backend: "Optional[str | ExecutionBackend]" = None,
        jobs: Optional[int] = None,
        units: Optional[Sequence[Any]] = None,
        task: Optional[Callable[[Any, BenchConfig], Any]] = None,
    ) -> ExperimentResult:
        """Execute the experiment through ``ExecutionBackend.map_graphs``.

        Parameters
        ----------
        config:
            Benchmark knobs (defaults to :class:`BenchConfig()`).
        backend:
            Execution backend name/instance. ``None`` falls back to
            ``config.backend``, then to the process default.
        jobs:
            ``map_graphs`` pool width override (ignored by serial backends).
        units / task:
            Optional overrides used by ``run_*`` wrappers that expose extra
            driver parameters (custom grids, tolerances, …). An override task
            must still be picklable for the process-pool path.
        """
        config = config if config is not None else BenchConfig()
        if config.parts is not None and not self.parts_aware:
            raise ValueError(
                f"experiment {self.name!r} does not support partition-parallel "
                f"execution (parts={config.parts}); parts-aware experiments: "
                f"{sorted(n for n, e in _EXPERIMENTS.items() if e.parts_aware)}"
            )
        resolved = resolve_backend(backend if backend is not None else config.backend)
        mapper = resolved.with_jobs(jobs)
        work = list(units) if units is not None else list(self.plan(config))
        invocation = _TaskInvocation(task if task is not None else self.task, config, resolved)
        start = time.perf_counter()
        with set_default_backend(resolved):
            rows = mapper.map_graphs(invocation, work)
        elapsed = time.perf_counter() - start
        return ExperimentResult(
            experiment=self.name,
            backend=resolved.name,
            jobs=jobs,
            scale=config.scale,
            seed=config.seed,
            trials=config.trials,
            units=len(work),
            elapsed_seconds=elapsed,
            counts=self.counts(rows),
            rows=list(rows),
            parts=config.parts,
            resident=config.resident if config.parts is not None else True,
            changed_deltas=config.changed_deltas if config.parts is not None else True,
            overlap=config.overlap if config.parts is not None else True,
        )

    def run_and_render(
        self,
        config: Optional[BenchConfig] = None,
        backend: "Optional[str | ExecutionBackend]" = None,
        jobs: Optional[int] = None,
    ) -> Tuple[ExperimentResult, str]:
        """Run the experiment and format its rows (the CLI's main path)."""
        result = self.run(config, backend=backend, jobs=jobs)
        return result, self.render(result.rows)


# ---------------------------------------------------------------------- registry
_EXPERIMENTS: Dict[str, Experiment] = {}


def register_experiment(experiment: Experiment, *, overwrite: bool = False) -> Experiment:
    """Register ``experiment`` under its name for CLI/sweep lookup."""
    if not isinstance(experiment, Experiment):
        raise TypeError("experiment must be an Experiment instance")
    if experiment.name in _EXPERIMENTS and not overwrite:
        raise ValueError(f"experiment {experiment.name!r} is already registered")
    _EXPERIMENTS[experiment.name] = experiment
    return experiment


def get_experiment(name: str) -> Experiment:
    """Resolve an experiment by registry name."""
    try:
        return _EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; registered: {sorted(_EXPERIMENTS)}"
        ) from None


def experiment_names() -> List[str]:
    """Names of every registered experiment, in registration order."""
    return list(_EXPERIMENTS)


def run_experiment(
    name: str,
    config: Optional[BenchConfig] = None,
    backend: "Optional[str | ExecutionBackend]" = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Run a registered experiment by name."""
    return get_experiment(name).run(config, backend=backend, jobs=jobs)


# ------------------------------------------------------------------------- sweep
class SweepMismatchError(RuntimeError):
    """Raised when two backends disagree on an experiment's deterministic counts."""


@dataclass
class SweepResult:
    """One experiment executed across several backends (Fig. 3 analogue)."""

    experiment: str
    results: List[ExperimentResult]

    @property
    def reference(self) -> ExperimentResult:
        """The first backend's result — the speedup baseline."""
        return self.results[0]

    def speedup(self, result: ExperimentResult) -> float:
        """Wall-clock speedup of ``result`` over the reference backend."""
        if result.elapsed_seconds <= 0:
            return float("nan")
        return self.reference.elapsed_seconds / result.elapsed_seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "backends": [r.backend for r in self.results],
            "parts": self.reference.parts,
            "resident": self.reference.resident,
            "changed_deltas": self.reference.changed_deltas,
            "overlap": self.reference.overlap,
            "elapsed_seconds": {r.backend: r.elapsed_seconds for r in self.results},
            "speedups": _jsonable({r.backend: self.speedup(r) for r in self.results}),
        }

    def save(self, directory: "Optional[Path | str]" = None) -> Path:
        """Persist the sweep summary as ``BENCH_sweep_<exp>[_p<k>[nr][fh][nv]].json``."""
        directory = Path(directory) if directory is not None else default_results_dir()
        directory.mkdir(parents=True, exist_ok=True)
        ref = self.reference
        infix = _record_infix(ref.parts, ref.resident, ref.changed_deltas, ref.overlap)
        path = directory / f"BENCH_sweep_{self.experiment}{infix}.json"
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path


def _check_counts(experiment: str, results: Sequence[ExperimentResult]) -> None:
    """Assert every backend produced identical deterministic counts."""
    reference = results[0]
    for other in results[1:]:
        if other.counts == reference.counts:
            continue
        keys = sorted(set(reference.counts) | set(other.counts))
        diffs = [
            f"  {key}: {reference.backend}={reference.counts.get(key)!r} "
            f"{other.backend}={other.counts.get(key)!r}"
            for key in keys
            if reference.counts.get(key) != other.counts.get(key)
        ]
        raise SweepMismatchError(
            f"experiment {experiment!r}: backend {other.backend!r} disagrees with "
            f"{reference.backend!r} on {len(diffs)} deterministic count(s):\n"
            + "\n".join(diffs[:20])
        )


def sweep(
    name: str,
    backends: Sequence[str],
    config: Optional[BenchConfig] = None,
    jobs: Optional[int] = None,
    check_counts: bool = True,
    warmup: bool = True,
) -> SweepResult:
    """Run one experiment across ``backends`` and verify cross-backend determinism.

    The first backend is the speedup baseline. With ``warmup`` (default) the
    experiment's ``warm`` hook runs first, untimed, to populate the per-process
    suite caches — otherwise the baseline backend would pay the one-time graph
    generation inside its timed region while later backends reuse the warm
    caches (shared address space for the threaded backend, fork-inherited for
    the chunked pool), systematically inflating every non-baseline speedup. With
    ``check_counts`` (default) a :class:`SweepMismatchError` is raised if any
    backend's deterministic counts (iteration counts, set sizes, modelled
    times) differ from the baseline's — the paper's portability claim is
    precisely that they never do.
    """
    if not backends:
        raise ValueError("sweep requires at least one backend")
    experiment = get_experiment(name)
    if warmup and experiment.warm is not None:
        # Populate the *parent* process's caches at generation cost only —
        # the threaded backend shares them and fork-started pool workers
        # inherit them, so no backend pays one-time generation while timed.
        resolved_config = config if config is not None else BenchConfig()
        experiment.warm(experiment.units(resolved_config), resolved_config)
    results = [experiment.run(config, backend=b, jobs=jobs) for b in backends]
    if check_counts:
        _check_counts(name, results)
    return SweepResult(experiment=name, results=results)


def sweep_table(result: SweepResult) -> Table:
    """Format a sweep as the paper-style per-backend wall-clock/speedup table."""
    experiment = get_experiment(result.experiment)
    partitioned = (
        f"; {result.reference.parts} parts/graph" if result.reference.parts else ""
    )
    if result.reference.parts and not result.reference.resident:
        partitioned += " (non-resident)"
    if result.reference.parts and not result.reference.changed_deltas:
        partitioned += " (full-halo)"
    if result.reference.parts and not result.reference.overlap:
        partitioned += " (no-overlap)"
    table = Table(
        ["backend", "jobs", "units", "wall-clock", "speedup", "counts"],
        title=(
            f"Sweep: {experiment.name} across execution backends "
            f"({result.reference.units} units{partitioned}; "
            f"speedup vs {result.reference.backend}; Fig. 3 analogue)"
        ),
    )
    for res in result.results:
        table.add_row(
            [
                res.backend,
                "auto" if res.jobs is None else res.jobs,
                res.units,
                format_seconds(res.elapsed_seconds),
                round(result.speedup(res), 2),
                "identical" if res.counts == result.reference.counts else "MISMATCH",
            ]
        )
    return table

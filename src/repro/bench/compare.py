"""Bench regression gate: diff two ``BENCH_*.json`` experiment records.

``python -m repro.bench compare baseline.json candidate.json`` is the guard CI
(and a human chasing a perf trajectory) runs over the persisted
:class:`~repro.bench.experiment.ExperimentResult` records:

* **deterministic-count drift is a failure** (exit code 1) — the counts are
  the paper's portability guarantee, identical across backends, pool widths
  and partition counts, so any difference means an algorithmic change;
* **shipped-bytes counts are gated directionally across execution
  configurations** — keys ending in ``_bytes`` measure communication volume,
  not algorithmic output, so when the records differ in resident mode, delta
  wire format (changed-only vs full-halo), superstep schedule or partition
  count a *smaller*
  candidate value is reported as an improvement (this is how the resident
  path's win over the non-resident baseline and the changed-delta protocol's
  win over full-halo shipping are gated in CI) while a *larger* one still
  fails like any other drift. Between records of the *same* configuration
  the counts must be bit-identical — a smaller value there is
  under-accounting and fails. A count key missing from one record entirely
  is reported as "missing from baseline/candidate", never as a value
  difference against ``None``;
* **wall-clock regression is a warning** — ``elapsed_seconds`` of a small CI
  run is noisy, so a candidate slower than ``1 + tolerance`` times the
  baseline (default 25%) is reported loudly but does not fail the gate
  (``--strict-elapsed`` promotes it to a failure for curated trajectories).

Records whose run context differs (``backend``, ``parts``, ``resident`` mode,
delta wire format or superstep schedule) are still comparable — the counts
must match regardless — but the mismatch is called out explicitly in the
rendered output so a wrong-pair comparison never gates silently. The
overlap-vs-barrier pair is the extreme case: the schedules are byte-identical
by construction, so that comparison gates *zero* count drift while the
wall-clock line shows the overlap win.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from .experiment import ExperimentResult

__all__ = ["ComparisonReport", "compare_results", "compare_files"]

#: Default allowed wall-clock regression before a warning (25%).
DEFAULT_ELAPSED_TOLERANCE = 0.25


@dataclass
class ComparisonReport:
    """Outcome of diffing a candidate experiment record against a baseline."""

    baseline: ExperimentResult
    candidate: ExperimentResult
    #: Human-readable description of every deterministic-count difference.
    count_drift: List[str] = field(default_factory=list)
    #: ``_bytes`` counts where the candidate ships *less* than the baseline
    #: (reported, never a failure — shrinking communication is the goal).
    bytes_improved: List[str] = field(default_factory=list)
    #: Run-context fields (backend, parts, resident, delta format) that
    #: differ between the records. Informational: counts must match
    #: regardless, but the mismatch is rendered so a wrong-pair comparison
    #: never gates silently.
    context_mismatch: List[str] = field(default_factory=list)
    #: ``candidate.elapsed_seconds / baseline.elapsed_seconds`` (None when the
    #: baseline recorded a non-positive duration).
    elapsed_ratio: Optional[float] = None
    #: Allowed slowdown fraction before the regression warning fires.
    elapsed_tolerance: float = DEFAULT_ELAPSED_TOLERANCE

    @property
    def counts_identical(self) -> bool:
        return not self.count_drift

    @property
    def elapsed_regressed(self) -> bool:
        return (
            self.elapsed_ratio is not None
            and self.elapsed_ratio > 1.0 + self.elapsed_tolerance
        )

    def render(self) -> str:
        """Format the report as the CLI's output text."""

        def label(result: ExperimentResult) -> str:
            parts = f", {result.parts} parts" if result.parts else ""
            if result.parts and not result.resident:
                parts += ", non-resident"
            if result.parts and not result.changed_deltas:
                parts += ", full-halo"
            if result.parts and not result.overlap:
                parts += ", no-overlap"
            return f"{result.experiment} ({result.backend}{parts})"

        lines = [f"bench compare: {label(self.baseline)} vs {label(self.candidate)}"]
        for entry in self.context_mismatch:
            lines.append(f"note: {entry}")
        if self.counts_identical:
            lines.append(
                f"deterministic counts: identical ({len(self.baseline.counts)} keys)"
            )
        else:
            lines.append(
                f"deterministic counts: DRIFT ({len(self.count_drift)} difference(s))"
            )
            lines.extend(f"  {entry}" for entry in self.count_drift[:20])
            if len(self.count_drift) > 20:
                lines.append(f"  ... and {len(self.count_drift) - 20} more")
        if self.bytes_improved:
            lines.append(
                f"shipped bytes: improved on {len(self.bytes_improved)} count(s)"
            )
            lines.extend(f"  {entry}" for entry in self.bytes_improved[:20])
            if len(self.bytes_improved) > 20:
                lines.append(f"  ... and {len(self.bytes_improved) - 20} more")
        base_s = self.baseline.elapsed_seconds
        cand_s = self.candidate.elapsed_seconds
        if self.elapsed_ratio is None:
            lines.append(f"wall-clock: {base_s:.3f}s -> {cand_s:.3f}s (ratio n/a)")
        else:
            verdict = (
                f"WARNING: >{self.elapsed_tolerance:.0%} regression"
                if self.elapsed_regressed
                else "ok"
            )
            lines.append(
                f"wall-clock: {base_s:.3f}s -> {cand_s:.3f}s "
                f"({self.elapsed_ratio:.2f}x; tolerance {1 + self.elapsed_tolerance:.2f}x; "
                f"{verdict})"
            )
        return "\n".join(lines)


def _is_bytes_key(key: str) -> bool:
    """Whether a counts key measures shipped bytes (gated directionally)."""
    return key.rsplit("/", 1)[-1].endswith("_bytes")


def compare_results(
    baseline: ExperimentResult,
    candidate: ExperimentResult,
    elapsed_tolerance: float = DEFAULT_ELAPSED_TOLERANCE,
) -> ComparisonReport:
    """Diff ``candidate`` against ``baseline`` and return the structured report."""
    drift: List[str] = []
    improved: List[str] = []
    context: List[str] = []
    if baseline.experiment != candidate.experiment:
        drift.append(
            f"experiment: {baseline.experiment!r} != {candidate.experiment!r}"
        )
    # Differing run context is legitimate (that is what cross-backend and
    # resident-vs-baseline gates compare) but must be visible, not silent.
    if baseline.backend != candidate.backend:
        context.append(f"backends differ: {baseline.backend!r} vs {candidate.backend!r}")
    if baseline.parts != candidate.parts:
        context.append(f"partition counts differ: {baseline.parts!r} vs {candidate.parts!r}")
    if baseline.resident != candidate.resident:
        context.append(
            f"execution paths differ: "
            f"{'resident' if baseline.resident else 'non-resident'} vs "
            f"{'resident' if candidate.resident else 'non-resident'}"
        )
    if baseline.changed_deltas != candidate.changed_deltas:
        context.append(
            f"delta formats differ: "
            f"{'changed-only' if baseline.changed_deltas else 'full-halo'} vs "
            f"{'changed-only' if candidate.changed_deltas else 'full-halo'}"
        )
    if baseline.overlap != candidate.overlap:
        context.append(
            f"superstep schedules differ: "
            f"{'overlapped' if baseline.overlap else 'barrier'} vs "
            f"{'overlapped' if candidate.overlap else 'barrier'} "
            f"(byte counts must still match — the schedules ship identical bytes)"
        )
    # The directional bytes exemption applies only across *different*
    # execution configurations (resident vs non-resident, changed-only vs
    # full-halo deltas, different part counts), where shipping less is the
    # improvement being gated. Two records of the *same* configuration must
    # agree on every byte count — there a smaller value is under-accounting,
    # i.e. ordinary drift.
    modes_differ = (
        baseline.resident != candidate.resident
        or baseline.parts != candidate.parts
        or baseline.changed_deltas != candidate.changed_deltas
        or baseline.overlap != candidate.overlap
    )
    for key in sorted(set(baseline.counts) | set(candidate.counts)):
        a, b = baseline.counts.get(key), candidate.counts.get(key)
        # A key absent from one record is structural drift (the experiments
        # measured different things), not a value difference; rendering it as
        # "5 != None" made it indistinguishable from a recorded null — and it
        # must be checked before the equality short-circuit, or a missing key
        # would slip past a recorded null on the other side.
        if key not in baseline.counts:
            drift.append(f"counts[{key}]: missing from baseline (candidate has {b!r})")
            continue
        if key not in candidate.counts:
            drift.append(f"counts[{key}]: missing from candidate (baseline has {a!r})")
            continue
        if a == b:
            continue
        if (
            modes_differ
            and _is_bytes_key(key)
            and isinstance(a, (int, float))
            and isinstance(b, (int, float))
            and b < a
        ):
            # Shipping less than the baseline is the point of the resident
            # path — an improvement, not drift. (More is still a failure.)
            improved.append(f"counts[{key}]: {a!r} -> {b!r}")
            continue
        drift.append(f"counts[{key}]: {a!r} != {b!r}")
    ratio = (
        candidate.elapsed_seconds / baseline.elapsed_seconds
        if baseline.elapsed_seconds and baseline.elapsed_seconds > 0
        else None
    )
    return ComparisonReport(
        baseline=baseline,
        candidate=candidate,
        count_drift=drift,
        bytes_improved=improved,
        context_mismatch=context,
        elapsed_ratio=ratio,
        elapsed_tolerance=elapsed_tolerance,
    )


def _load_record(path: "Path | str") -> ExperimentResult:
    """Load one record, translating the failure modes a CI artifact actually
    hits (missing file, truncated JSON, non-record JSON) into a clean error."""
    try:
        return ExperimentResult.from_json(Path(path).read_text())
    except OSError as exc:
        raise SystemExit(f"bench compare: cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"bench compare: {path} is not valid JSON: {exc}")
    except (KeyError, TypeError) as exc:
        raise SystemExit(
            f"bench compare: {path} is not an ExperimentResult record "
            f"(missing field {exc})"
        )


def compare_files(
    baseline_path: "Path | str",
    candidate_path: "Path | str",
    elapsed_tolerance: float = DEFAULT_ELAPSED_TOLERANCE,
    strict_elapsed: bool = False,
) -> int:
    """CLI entry: load two ``BENCH_*.json`` records, print the diff, return the
    exit code (0 ok / warn, 1 on count drift — or on elapsed regression when
    ``strict_elapsed``). An unreadable or malformed record exits with the
    loader's message (exit code 1 via ``SystemExit``) instead of a traceback."""
    baseline = _load_record(baseline_path)
    candidate = _load_record(candidate_path)
    report = compare_results(baseline, candidate, elapsed_tolerance=elapsed_tolerance)
    print(report.render())
    if not report.counts_identical:
        return 1
    if strict_elapsed and report.elapsed_regressed:
        return 1
    return 0

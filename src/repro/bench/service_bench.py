"""Service throughput experiment: the always-on GraphService under load.

Two phases per scenario, split so the record stays CI-gateable:

* a **scripted phase** (single client): initial MIS-2 / coloring /
  aggregation queries, then a fixed edge-toggle mutation script with a
  query after every mutation. Everything this phase produces — result
  sizes, epochs, how many queries repaired vs. recomputed — is
  deterministic across backends and runs, so it lands in
  ``deterministic_fields`` and the CI compare gate.
* a **throughput phase** (several client threads hammering ``submit``):
  measures queries/second and per-query latency percentiles of the
  dispatch + cache path. Wall-clock numbers are machine-varying by nature
  and stay out of the deterministic record; CI gates them separately with
  a generous not-worse ratio.

Like every experiment, the scenario task runs against the ambient default
backend that :class:`~repro.bench.experiment._TaskInvocation` installs, so
``sweep service`` compares the service end-to-end across backends and
asserts the deterministic counts never move.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Tuple

from ..util.tables import Table
from .config import BenchConfig
from .experiment import Experiment, register_experiment

__all__ = [
    "ServiceRow",
    "service_task",
    "service_table",
    "run_service",
    "SERVICE_EXPERIMENT",
]

#: Scenario units: (label, grid side, mutation rounds, client threads,
#: queries per client). Grid graphs keep the scripted phase's repair
#: frontiers local, so the mutation script exercises the repair path rather
#: than the crossover fallback.
SERVICE_UNITS: Tuple[Tuple[str, int, int, int, int], ...] = (
    ("grid12", 12, 6, 4, 25),
    ("grid20", 20, 4, 4, 25),
)


@dataclass(frozen=True)
class ServiceRow:
    """One service scenario: scripted determinism record + throughput numbers."""

    scenario: str
    vertices: int
    edges_final: int
    backend: str
    parts: int = 1
    # ------------------------------------------------ deterministic (gated)
    mis2_size_final: int = 0
    num_colors_final: int = 0
    num_aggregates: int = 0
    mutations: int = 0
    structural_mutations: int = 0
    #: Scripted-phase queries answered by incremental repair.
    repairs: int = 0
    #: Scripted-phase repairs abandoned for full recompute.
    repair_fallbacks: int = 0
    #: Scripted-phase from-scratch kernel runs.
    full_recomputes: int = 0
    # ------------------------------------------- machine-varying (not gated)
    #: Scripted-phase wall-clock spent in post-mutation queries (seconds).
    repair_seconds: float = 0.0
    #: Throughput-phase queries issued across all client threads.
    throughput_queries: int = 0
    #: Throughput-phase queries per second (dispatch + cache path).
    qps: float = 0.0
    #: Per-query latency percentiles over the throughput phase (microseconds).
    latency_p50_us: float = 0.0
    latency_p99_us: float = 0.0


def _plan(config: BenchConfig) -> List[Tuple[str, int, int, int, int]]:
    return list(SERVICE_UNITS)


def _grid_edges(side: int) -> List[Tuple[int, int]]:
    edges = []
    for r in range(side):
        for c in range(side):
            v = side * r + c
            if c < side - 1:
                edges.append((v, v + 1))
            if r < side - 1:
                edges.append((v, v + side))
    return edges


def service_task(unit: Tuple[str, int, int, int, int], config: BenchConfig) -> ServiceRow:
    """Run one scenario against a GraphService on the ambient backend."""
    import threading

    import numpy as np

    from ..graph.build import from_edges
    from ..service import GraphService

    label, side, rounds, clients, per_client = unit
    n = side * side
    graph = from_edges(n, _grid_edges(side))

    with GraphService(parts=config.parts, repair_crossover=0.5) as svc:
        svc.add_graph(label, graph)

        # ---------------------------------------------------- scripted phase
        svc.mis2(label, seed=config.seed)
        svc.color(label)
        agg = svc.aggregate(label, seed=config.seed)
        repair_start = time.perf_counter()
        repair_elapsed = 0.0
        for r in range(rounds):
            # Toggle a diagonal chord per round: local frontier, repairable.
            a = (7 * r) % (n - side - 1)
            chord = (a, a + side + 1)
            if svc.add_edges(label, [chord]) == 0:
                svc.remove_edges(label, [chord])
            t0 = time.perf_counter()
            svc.mis2(label, seed=config.seed)
            svc.color(label)
            repair_elapsed += time.perf_counter() - t0
        del repair_start
        mask = svc.mis2(label, seed=config.seed)
        colors = svc.color(label)
        scripted = svc.stats_snapshot()

        # -------------------------------------------------- throughput phase
        latencies: List[List[float]] = [[] for _ in range(clients)]
        barrier = threading.Barrier(clients + 1)

        def client(idx: int) -> None:
            barrier.wait()
            for q in range(per_client):
                t0 = time.perf_counter()
                if q % 3 == 2:
                    svc.submit(label, "color").result()
                else:
                    svc.submit(label, "mis2", seed=config.seed).result()
                latencies[idx].append(time.perf_counter() - t0)

        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        wall_start = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
        flat = np.array([l for per in latencies for l in per], dtype=np.float64)
        total = int(flat.size)

        return ServiceRow(
            scenario=label,
            vertices=svc.graph(label).num_vertices,
            edges_final=svc.graph(label).num_edges,
            backend=svc._backend.name,
            parts=config.parts if config.parts is not None else 1,
            mis2_size_final=int(np.count_nonzero(mask)),
            num_colors_final=int(colors.max()) + 1 if colors.size else 0,
            num_aggregates=int(agg.num_aggregates),
            mutations=scripted["mutations"],
            structural_mutations=scripted["structural_mutations"],
            repairs=scripted["repairs"],
            repair_fallbacks=scripted["repair_fallbacks"],
            full_recomputes=scripted["full_recomputes"],
            repair_seconds=repair_elapsed,
            throughput_queries=total,
            qps=total / wall if wall > 0 else 0.0,
            latency_p50_us=float(np.percentile(flat, 50)) * 1e6 if total else 0.0,
            latency_p99_us=float(np.percentile(flat, 99)) * 1e6 if total else 0.0,
        )


def service_table(rows: List[ServiceRow]) -> Table:
    """Format the service rows as the throughput + repair summary table."""
    table = Table(
        ["scenario", "|V|", "|E|", "parts", "|MIS-2|", "colors", "aggregates",
         "mutations", "repairs", "fallbacks", "recomputes", "repair ms",
         "queries", "qps", "p50 us", "p99 us", "backend"],
        title="GraphService: scripted repair determinism + dispatch throughput",
    )
    for row in rows:
        table.add_row([
            row.scenario, row.vertices, row.edges_final, row.parts,
            row.mis2_size_final, row.num_colors_final, row.num_aggregates,
            row.mutations, row.repairs, row.repair_fallbacks,
            row.full_recomputes, round(row.repair_seconds * 1e3, 2),
            row.throughput_queries, round(row.qps, 1),
            round(row.latency_p50_us, 1), round(row.latency_p99_us, 1),
            row.backend,
        ])
    return table


def _render(rows: List[ServiceRow]) -> str:
    return service_table(rows).render()


SERVICE_EXPERIMENT = register_experiment(
    Experiment(
        name="service",
        title="GraphService: batched-query throughput and incremental-repair determinism",
        plan=_plan,
        task=service_task,
        render=_render,
        key_field="scenario",
        deterministic_fields=(
            "vertices", "edges_final", "parts", "mis2_size_final",
            "num_colors_final", "num_aggregates", "mutations",
            "structural_mutations", "repairs", "repair_fallbacks",
            "full_recomputes",
        ),
        parts_aware=True,
    )
)


def run_service(
    config: BenchConfig = BenchConfig(),
    backend=None,
    jobs=None,
) -> List[ServiceRow]:
    """Run the service experiment and return one row per scenario."""
    return SERVICE_EXPERIMENT.run(config, backend=backend, jobs=jobs).rows

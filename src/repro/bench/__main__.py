"""Command-line entry point for the experiment drivers.

Regenerate any of the paper's tables/figures without pytest::

    python -m repro.bench table1 --scale 0.01
    python -m repro.bench fig2 --matrices ecology2 thermal2
    python -m repro.bench all --scale 0.005

Each experiment prints the same paper-style table the benchmark harness writes to
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from . import (
    BenchConfig,
    fig2_table,
    fig3_table,
    run_fig2,
    run_fig3,
    run_fig6,
    run_fig7,
    run_scaling,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    scaling_table,
    speedup_table,
    table1_table,
    table2_table,
    table3_table,
    table4_table,
    table5_table,
    table6_table,
)

__all__ = ["main", "EXPERIMENTS"]


def _run_table1(config: BenchConfig) -> str:
    return table1_table(run_table1(config)).render()


def _run_table2(config: BenchConfig) -> str:
    return table2_table(run_table2(config)).render()


def _run_table3(config: BenchConfig) -> str:
    return table3_table(run_table3(config)).render()


def _run_table4(config: BenchConfig) -> str:
    return table4_table(run_table4(config)).render()


def _run_table5(config: BenchConfig) -> str:
    return table5_table(run_table5(config)).render()


def _run_table6(config: BenchConfig) -> str:
    return table6_table(run_table6(config)).render()


def _run_fig2(config: BenchConfig) -> str:
    rows = run_fig2(config)
    return fig2_table(rows, use_model=True).render() + "\n\n" + fig2_table(rows, use_model=False).render()


def _run_fig3(config: BenchConfig) -> str:
    return fig3_table(run_fig3(config)).render()


def _run_fig4(config: BenchConfig) -> str:
    return scaling_table(run_scaling("skylake", config)).render()


def _run_fig5(config: BenchConfig) -> str:
    return scaling_table(run_scaling("tx2", config)).render()


def _run_fig6(config: BenchConfig) -> str:
    return speedup_table(run_fig6(config), "Fig. 6: Algorithm 1 vs CUSP (MIS-2)").render()


def _run_fig7(config: BenchConfig) -> str:
    return speedup_table(run_fig7(config), "Fig. 7: Algorithm 1 + coarsening vs ViennaCL").render()


#: Experiment name -> driver returning the rendered table.
EXPERIMENTS: Dict[str, Callable[[BenchConfig], str]] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "table4": _run_table4,
    "table5": _run_table5,
    "table6": _run_table6,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, run the selected experiment(s), print the tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate ('all' runs every experiment)",
    )
    parser.add_argument("--scale", type=float, default=BenchConfig().scale,
                        help="fraction of the paper's problem sizes for the stand-ins")
    parser.add_argument("--trials", type=int, default=1, help="timed trials per measurement")
    parser.add_argument("--seed", type=int, default=0, help="deterministic seed")
    parser.add_argument("--mtx-dir", default=None,
                        help="directory with real SuiteSparse .mtx files (optional)")
    parser.add_argument("--matrices", nargs="*", default=None,
                        help="subset of suite matrices to run")
    args = parser.parse_args(argv)

    config = BenchConfig(
        scale=args.scale,
        trials=args.trials,
        seed=args.seed,
        mtx_dir=args.mtx_dir,
        matrices=tuple(args.matrices) if args.matrices else None,
    )
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(EXPERIMENTS[name](config))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI test
    sys.exit(main())

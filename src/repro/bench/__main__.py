"""Command-line entry point for the experiment drivers.

Regenerate any of the paper's tables/figures without pytest::

    python -m repro.bench table1 --scale 0.01
    python -m repro.bench fig2 --matrices ecology2 thermal2
    python -m repro.bench all --scale 0.005
    python -m repro.bench smoke                        # fast CI sanity check
    python -m repro.bench table1 --backend chunked --jobs 4
    python -m repro.bench table2 --json                # persist the JSON record

Every experiment is a registered :class:`repro.bench.experiment.Experiment`
(plan / map / reduce); the sweep itself executes through
``ExecutionBackend.map_graphs``, so ``--backend chunked`` shards the per-matrix
work over a process pool and ``--backend threaded`` over a thread pool.

Flags
-----
``--backend``
    Execution backend every measurement runs on (default: the process default,
    the NumPy reference). The chosen backend is printed with the results and
    recorded on each kernel's traffic counter.
``--jobs``
    Worker-pool width for the sharded backends' ``map_graphs`` (chunked
    processes / threaded threads). Serial backends ignore it. Caveat: with a
    pooled backend the per-matrix *Python wall-clock* columns are measured
    while sibling matrices run concurrently, so pool contention inflates them;
    the modelled (traffic-derived) columns and all deterministic counts are
    unaffected, and the sweep driver's per-backend wall-clock measures the
    whole sweep, which is exactly what sharding accelerates.
``--json``
    Additionally persist each run as a structured
    ``benchmarks/results/BENCH_<experiment>_<backend>.json`` record
    (:class:`~repro.bench.experiment.ExperimentResult`), the perf-trajectory
    feed.

Cross-backend sweep (the paper's Fig. 3 analogue for Python backends)::

    python -m repro.bench sweep table1 --backends numpy,chunked,threaded
    python -m repro.bench sweep smoke --backends numpy,threaded --json

``sweep`` runs one experiment once per backend, *asserts the deterministic
measured counts (iterations, set sizes, modelled times) are bit-identical
across backends*, and prints the per-backend wall-clock/speedup table.

Partition-parallel mode (intra-graph sharding)::

    python -m repro.bench partitioned smoke --parts 4
    python -m repro.bench sweep smoke --parts 4 --backends numpy,chunked,threaded

``partitioned <exp> --parts k`` (and ``--parts`` on any run or sweep) splits
every graph of a parts-aware experiment into ``k`` parts, runs the MIS /
coloring / aggregation kernels through the partition-parallel drivers, and
*verifies bit-identicality against the unpartitioned reference*; boundary and
ghost-exchange stats land in the rows and deterministic counts.
``--no-resident`` selects the re-ship-everything baseline (``_p<k>nr``
records), ``--full-halo`` the full-halo delta wire format (``_p<k>fh``
records) and ``--no-overlap`` the barrier superstep schedule (``_p<k>nv``
records) — all bit-identical, kept runnable so ``compare`` can gate the
resident and changed-delta shipped-bytes wins and the overlap wall-clock
win (overlap leaves every deterministic count and byte field unchanged by
construction). ``--backend distributed``
runs the partitioned drivers over localhost rank processes through the
socket transport (``--jobs`` sets the rank count); results stay
bit-identical and the logical byte counts unchanged, while the cluster
additionally meters actual on-the-wire bytes
(:meth:`repro.parallel.DistributedBackend.measured_stats`).

Regression gate over persisted records::

    python -m repro.bench compare BENCH_smoke_numpy.json BENCH_smoke_threaded.json

``compare`` fails (exit 1) on any deterministic-count drift between the two
records and warns when the candidate's wall-clock regressed by more than
``--tolerance`` (default 25%).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Dict, List, Optional

from ..parallel.backends import available_backends, default_backend

from . import (  # noqa: F401 - importing the modules registers every experiment
    BenchConfig,
    default_results_dir,
    experiment_names,
    get_experiment,
    sweep,
    sweep_table,
)
from .experiment import Experiment

__all__ = ["main", "EXPERIMENTS"]

#: Experiment name -> registered Experiment (populated by the bench module imports).
EXPERIMENTS: Dict[str, Experiment] = {name: get_experiment(name) for name in experiment_names()}


def _parse_backends(spec: str) -> List[str]:
    backends = [b.strip() for b in spec.split(",") if b.strip()]
    if not backends:
        raise argparse.ArgumentTypeError("--backends requires at least one backend name")
    unknown = [b for b in backends if b not in available_backends()]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown backend(s) {unknown}; registered: {available_backends()}"
        )
    if len(set(backends)) != len(backends):
        # Duplicates would collapse in the sweep summary and overwrite each
        # other's BENCH_*.json records.
        raise argparse.ArgumentTypeError(f"duplicate backend names in {backends}")
    return backends


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, run the selected experiment(s) or sweep, print the tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "sweep", "partitioned", "compare"],
        help="which table/figure to regenerate ('all' runs every experiment; "
             "'sweep' compares one experiment across backends; 'partitioned' "
             "runs one experiment with intra-graph sharding; 'compare' diffs "
             "two BENCH_*.json records)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="with 'sweep'/'partitioned': the experiment to run; "
             "with 'compare': the baseline BENCH_*.json path",
    )
    parser.add_argument(
        "candidate",
        nargs="?",
        default=None,
        help="with 'compare': the candidate BENCH_*.json path",
    )
    parser.add_argument("--scale", type=float, default=BenchConfig().scale,
                        help="fraction of the paper's problem sizes for the stand-ins")
    parser.add_argument("--trials", type=int, default=1, help="timed trials per measurement")
    parser.add_argument("--seed", type=int, default=0, help="deterministic seed")
    parser.add_argument("--mtx-dir", default=None,
                        help="directory with real SuiteSparse .mtx files (optional)")
    parser.add_argument("--matrices", nargs="*", default=None,
                        help="subset of suite matrices to run")
    parser.add_argument("--backend", choices=available_backends(), default=None,
                        help="execution backend every measurement runs on "
                             "(default: the process default, the NumPy reference)")
    parser.add_argument("--backends", type=_parse_backends,
                        default=None,
                        help="comma-separated backend list for 'sweep' "
                             "(default: numpy,chunked,threaded)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="map_graphs worker-pool width for the sharded backends "
                             "(chunked processes / threaded threads)")
    parser.add_argument("--parts", type=int, default=None,
                        help="intra-graph partition count for parts-aware experiments "
                             "(partition-parallel runs are verified bit-identical to "
                             "the unpartitioned reference; 'partitioned' defaults to 4)")
    parser.add_argument("--no-resident", action="store_true",
                        help="with --parts: run the non-resident baseline that "
                             "re-ships each part every superstep instead of the "
                             "rank-resident path (bit-identical results; records "
                             "persist with a _p<k>nr infix so the shipped-bytes "
                             "win is comparable)")
    parser.add_argument("--full-halo", action="store_true",
                        help="with --parts: ship the full-halo wire format "
                             "(whole halos every ghost-reading phase, worklists "
                             "re-sent per phase) instead of changed-only deltas "
                             "(bit-identical results; records persist with a "
                             "_p<k>fh infix so the changed-delta win is "
                             "comparable)")
    parser.add_argument("--no-overlap", action="store_true",
                        help="with --parts: run the barrier superstep schedule "
                             "(every phase a full sync point) instead of the "
                             "overlapped boundary/interior sub-phases "
                             "(bit-identical results, supersteps and shipped "
                             "bytes; records persist with a _p<k>nv infix so "
                             "the wall-clock overlap win is comparable)")
    parser.add_argument("--json", action="store_true",
                        help="persist each run as benchmarks/results/BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="with 'compare': allowed elapsed_seconds regression "
                             "fraction before the warning fires (default 0.25)")
    parser.add_argument("--strict-elapsed", action="store_true",
                        help="with 'compare': fail (exit 1) on elapsed regression "
                             "instead of warning")
    args = parser.parse_args(argv)

    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.parts is not None and args.parts < 1:
        parser.error("--parts must be >= 1")
    if args.no_resident and args.parts is None and args.experiment != "partitioned":
        parser.error("--no-resident is only meaningful with --parts / 'partitioned'")
    if args.full_halo and args.parts is None and args.experiment != "partitioned":
        parser.error("--full-halo is only meaningful with --parts / 'partitioned'")
    if args.no_overlap and args.parts is None and args.experiment != "partitioned":
        parser.error("--no-overlap is only meaningful with --parts / 'partitioned'")
    if args.candidate is not None and args.experiment != "compare":
        parser.error("a third positional argument is only valid with 'compare'")

    def _require_parts_aware(name: str) -> None:
        """--parts only makes sense for experiments whose task honours it —
        anything else would run unpartitioned while stamping parts=k."""
        if args.parts is not None or args.experiment == "partitioned":
            if not EXPERIMENTS[name].parts_aware:
                aware = sorted(n for n, e in EXPERIMENTS.items() if e.parts_aware)
                parser.error(
                    f"experiment {name!r} does not support --parts "
                    f"(parts-aware experiments: {aware})"
                )

    if args.experiment == "compare":
        if args.target is None or args.candidate is None:
            parser.error(
                "compare requires two BENCH_*.json paths, e.g. "
                "'compare benchmarks/results/BENCH_smoke_numpy.json "
                "benchmarks/results/BENCH_smoke_threaded.json'"
            )
        if args.tolerance < 0:
            parser.error("--tolerance must be >= 0")
        from .compare import compare_files

        return compare_files(
            args.target,
            args.candidate,
            elapsed_tolerance=args.tolerance,
            strict_elapsed=args.strict_elapsed,
        )

    config = BenchConfig(
        scale=args.scale,
        trials=args.trials,
        seed=args.seed,
        mtx_dir=args.mtx_dir,
        matrices=tuple(args.matrices) if args.matrices else None,
        backend=args.backend,
        parts=args.parts,
        resident=not args.no_resident,
        changed_deltas=not args.full_halo,
        overlap=not args.no_overlap,
    )

    if args.experiment == "sweep":
        if args.target is None:
            parser.error("sweep requires an experiment name, e.g. 'sweep table1'")
        if args.target not in EXPERIMENTS:
            parser.error(f"unknown experiment {args.target!r} for sweep")
        if args.backend is not None:
            parser.error("--backend is not valid with 'sweep'; use --backends")
        _require_parts_aware(args.target)
        backends = args.backends or ["numpy", "chunked", "threaded"]
        result = sweep(args.target, backends, config, jobs=args.jobs)
        print(sweep_table(result).render())
        if args.json:
            for res in result.results:
                print(f"wrote {res.save()}")
            print(f"wrote {result.save()}")
        return 0

    if args.experiment == "partitioned":
        if args.target is None:
            parser.error(
                "partitioned requires an experiment name, e.g. 'partitioned smoke'"
            )
        if args.target not in EXPERIMENTS:
            parser.error(f"unknown experiment {args.target!r} for partitioned")
        _require_parts_aware(args.target)
        if config.parts is None:
            config = dataclasses.replace(config, parts=4)
        names = [args.target]
    else:
        if args.target is not None:
            parser.error("a second experiment name is only valid with 'sweep'/'partitioned'")
        # 'all' regenerates the paper's tables/figures; the smoke check is CI-only.
        names = (
            [n for n in sorted(EXPERIMENTS) if n != "smoke"]
            if args.experiment == "all"
            else [args.experiment]
        )
        for name in names:
            _require_parts_aware(name)
    if args.backends is not None:
        parser.error("--backends is only valid with 'sweep'; use --backend")

    backend_name = config.backend or default_backend().name
    print(f"backend: {backend_name}")
    if config.parts is not None:
        mode = "rank-resident" if config.resident else "non-resident baseline"
        if not config.changed_deltas:
            mode += ", full-halo deltas"
        if not config.overlap:
            mode += ", barrier supersteps"
        print(
            f"parts: {config.parts} (partition-parallel, {mode}, "
            f"verified vs reference)"
        )
    print()
    for name in names:
        result, text = EXPERIMENTS[name].run_and_render(config, jobs=args.jobs)
        print(text)
        if args.json:
            print(f"wrote {result.save()}")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI test
    sys.exit(main())

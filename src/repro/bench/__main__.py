"""Command-line entry point for the experiment drivers.

Regenerate any of the paper's tables/figures without pytest::

    python -m repro.bench table1 --scale 0.01
    python -m repro.bench fig2 --matrices ecology2 thermal2
    python -m repro.bench all --scale 0.005
    python -m repro.bench smoke                  # fast CI sanity check
    python -m repro.bench table1 --backend chunked

Each experiment prints the same paper-style table the benchmark harness writes to
``benchmarks/results/``. ``--backend`` selects the execution backend every
measurement runs on; the chosen backend is printed with the results and recorded
on each kernel's traffic counter.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from ..parallel.backends import available_backends, default_backend, set_default_backend

from . import (
    BenchConfig,
    fig2_table,
    fig3_table,
    run_fig2,
    run_fig3,
    run_fig6,
    run_fig7,
    run_scaling,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    scaling_table,
    speedup_table,
    table1_table,
    table2_table,
    table3_table,
    table4_table,
    table5_table,
    table6_table,
)

__all__ = ["main", "EXPERIMENTS"]


def _run_table1(config: BenchConfig) -> str:
    return table1_table(run_table1(config)).render()


def _run_table2(config: BenchConfig) -> str:
    return table2_table(run_table2(config)).render()


def _run_table3(config: BenchConfig) -> str:
    return table3_table(run_table3(config)).render()


def _run_table4(config: BenchConfig) -> str:
    return table4_table(run_table4(config)).render()


def _run_table5(config: BenchConfig) -> str:
    return table5_table(run_table5(config)).render()


def _run_table6(config: BenchConfig) -> str:
    return table6_table(run_table6(config)).render()


def _run_fig2(config: BenchConfig) -> str:
    rows = run_fig2(config)
    return fig2_table(rows, use_model=True).render() + "\n\n" + fig2_table(rows, use_model=False).render()


def _run_fig3(config: BenchConfig) -> str:
    return fig3_table(run_fig3(config)).render()


def _run_fig4(config: BenchConfig) -> str:
    return scaling_table(run_scaling("skylake", config)).render()


def _run_fig5(config: BenchConfig) -> str:
    return scaling_table(run_scaling("tx2", config)).render()


def _run_fig6(config: BenchConfig) -> str:
    return speedup_table(run_fig6(config), "Fig. 6: Algorithm 1 vs CUSP (MIS-2)").render()


def _run_fig7(config: BenchConfig) -> str:
    return speedup_table(run_fig7(config), "Fig. 7: Algorithm 1 + coarsening vs ViennaCL").render()


def _run_smoke(config: BenchConfig) -> str:
    """Fast end-to-end sanity check for CI: exercise every kernel layer once.

    Runs MIS-2, coloring, aggregation and the device cost model on a small
    stencil graph and verifies the results, in a few seconds. A non-zero exit
    (an exception here) fails the CI job.
    """
    import numpy as np

    from ..coarsen.mis2_agg import mis2_aggregation
    from ..coloring.greedy import greedy_color
    from ..coloring.verify import is_valid_coloring
    from ..graph.generators import laplace3d
    from ..mis.kk import kk_mis2
    from ..mis.verify import verify_mis
    from ..parallel.costmodel import predict_device_time

    graph = laplace3d(10, 10, 10)
    mis = kk_mis2(graph, seed=config.seed)
    if not verify_mis(graph, mis.in_set, k=2):
        raise RuntimeError("smoke check failed: kk_mis2 produced an invalid MIS-2")
    coloring = greedy_color(graph)
    if not is_valid_coloring(graph, coloring.colors, distance=1):
        raise RuntimeError("smoke check failed: greedy_color produced an invalid coloring")
    agg = mis2_aggregation(graph, mis=mis, seed=config.seed)
    if not agg.is_complete():
        raise RuntimeError("smoke check failed: mis2_aggregation left vertices unaggregated")
    predicted = predict_device_time(mis.traffic, "v100")
    if not np.isfinite(predicted) or predicted <= 0:
        raise RuntimeError("smoke check failed: cost model produced a non-positive time")
    return "\n".join(
        [
            "smoke check: OK",
            f"  backend             : {mis.config.backend}",
            f"  graph               : laplace3d(10,10,10), {graph.num_vertices} vertices",
            f"  MIS-2 size          : {mis.in_set.size} ({mis.iterations} iterations)",
            f"  coloring            : {coloring.num_colors} colors ({coloring.rounds} rounds)",
            f"  aggregates          : {agg.num_aggregates}",
            f"  predicted V100 time : {predicted * 1e6:.1f} us",
        ]
    )


#: Experiment name -> driver returning the rendered table.
EXPERIMENTS: Dict[str, Callable[[BenchConfig], str]] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "table4": _run_table4,
    "table5": _run_table5,
    "table6": _run_table6,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "smoke": _run_smoke,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, run the selected experiment(s), print the tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate ('all' runs every experiment)",
    )
    parser.add_argument("--scale", type=float, default=BenchConfig().scale,
                        help="fraction of the paper's problem sizes for the stand-ins")
    parser.add_argument("--trials", type=int, default=1, help="timed trials per measurement")
    parser.add_argument("--seed", type=int, default=0, help="deterministic seed")
    parser.add_argument("--mtx-dir", default=None,
                        help="directory with real SuiteSparse .mtx files (optional)")
    parser.add_argument("--matrices", nargs="*", default=None,
                        help="subset of suite matrices to run")
    parser.add_argument("--backend", choices=available_backends(), default=None,
                        help="execution backend every measurement runs on "
                             "(default: the process default, the NumPy reference)")
    args = parser.parse_args(argv)

    config = BenchConfig(
        scale=args.scale,
        trials=args.trials,
        seed=args.seed,
        mtx_dir=args.mtx_dir,
        matrices=tuple(args.matrices) if args.matrices else None,
        backend=args.backend,
    )
    # 'all' regenerates the paper's tables/figures; the smoke check is CI-only.
    names = (
        [n for n in sorted(EXPERIMENTS) if n != "smoke"]
        if args.experiment == "all"
        else [args.experiment]
    )
    with set_default_backend(config.backend or default_backend()):
        print(f"backend: {default_backend().name}")
        print()
        for name in names:
            print(EXPERIMENTS[name](config))
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI test
    sys.exit(main())

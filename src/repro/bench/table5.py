"""Table V: SA-AMG (MueLu) setup/solve comparison across aggregation schemes.

The paper sets up a smoothed-aggregation V-cycle preconditioner for CG on a
Laplace3D problem (100^3 in the paper, a smaller grid by default here), swapping the
aggregation algorithm between five schemes, and reports CG iterations, aggregation
time, total setup time, solve time and whether the scheme is deterministic.

Schemes reproduced (paper name -> this repo):

* ``Serial Agg``   -> :func:`repro.coarsen.serial_aggregation` (sequential host loop).
* ``Serial D2C``   -> :func:`repro.coarsen.d2c_aggregation` with the *sequential*
  distance-2 coloring (host coloring + parallel aggregation).
* ``NB D2C``       -> :func:`repro.coarsen.d2c_aggregation` with the parallel
  speculative distance-2 coloring.
* ``MIS2 Basic``   -> Algorithm 2.
* ``MIS2 Agg``     -> Algorithm 3 (the paper's contribution).

Shape to reproduce: MIS2 Agg converges in the fewest (or tied-fewest) iterations,
substantially fewer than MIS2 Basic; its aggregation time is far below the serial
scheme's; and it is deterministic.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..coarsen import (
    d2c_aggregation,
    mis2_aggregation,
    mis2_basic_aggregation,
    serial_aggregation,
)
from ..coloring import distance2_color, sequential_distance2_color
from ..graph.csr import CSRGraph
from ..graph.generators import laplace3d_matrix
from ..solvers.multigrid import build_hierarchy
from ..util.tables import Table
from .config import BenchConfig
from .experiment import Experiment, register_experiment

__all__ = [
    "Table5Row", "run_table5", "table5_table", "PAPER_TABLE5", "AGGREGATION_SCHEMES",
    "TABLE5_EXPERIMENT",
]

#: Default Laplace3D grid for the reproduction (the paper uses 100^3).
DEFAULT_TABLE5_GRID: Tuple[int, int, int] = (30, 30, 30)

#: Paper reference rows: name -> (iterations, agg seconds, setup seconds, solve seconds, deterministic).
PAPER_TABLE5: Dict[str, Tuple[float, float, float, float, bool]] = {
    "Serial Agg": (25, 0.673, 2.80, 0.390, True),
    "Serial D2C": (23, 0.125, 0.601, 0.383, False),
    "NB D2C": (31.3, 0.274, 0.734, 0.447, False),
    "MIS2 Basic": (49, 0.0226, 0.471, 0.562, True),
    "MIS2 Agg": (22, 0.0352, 0.538, 0.370, True),
}


def _serial_d2c(graph: CSRGraph):
    return d2c_aggregation(graph, coloring=sequential_distance2_color(graph))


def _nb_d2c(graph: CSRGraph):
    return d2c_aggregation(graph, coloring=distance2_color(graph))


#: The five aggregation schemes, in the paper's row order:
#: name -> (aggregation function, deterministic-in-the-paper flag).
AGGREGATION_SCHEMES: Dict[str, Tuple[Callable, bool]] = {
    "Serial Agg": (serial_aggregation, True),
    "Serial D2C": (_serial_d2c, False),
    "NB D2C": (_nb_d2c, False),
    "MIS2 Basic": (mis2_basic_aggregation, True),
    "MIS2 Agg": (mis2_aggregation, True),
}


@dataclass(frozen=True)
class Table5Row:
    """Measured multigrid metrics for one aggregation scheme."""

    scheme: str
    iterations: int
    aggregation_seconds: float
    setup_seconds: float
    solve_seconds: float
    deterministic: bool
    converged: bool
    levels: Tuple[int, ...]
    paper_iterations: float
    paper_agg_seconds: float
    paper_setup_seconds: float
    paper_solve_seconds: float


def _plan(config: BenchConfig) -> List[str]:
    return list(AGGREGATION_SCHEMES)


def table5_task(
    scheme: str,
    config: BenchConfig,
    grid: Tuple[int, int, int] = DEFAULT_TABLE5_GRID,
    tol: float = 1e-12,
) -> Table5Row:
    """Per-scheme map stage: SA-AMG setup/solve with one aggregation scheme.

    The scheme is carried across the ``map_graphs`` seam by *name* and resolved
    against :data:`AGGREGATION_SCHEMES` here, so the task stays picklable even
    though the schemes themselves are functions.
    """
    fn, _paper_det = AGGREGATION_SCHEMES[scheme]
    A = laplace3d_matrix(*grid)
    b = np.ones(A.shape[0])
    hierarchy = build_hierarchy(A, aggregation_fn=fn, aggregation_name=scheme)
    result = hierarchy.solve(b, tol=tol)
    paper = PAPER_TABLE5[scheme]
    return Table5Row(
        scheme=scheme,
        iterations=result.iterations,
        aggregation_seconds=hierarchy.aggregation_seconds,
        setup_seconds=hierarchy.setup_seconds,
        solve_seconds=result.solve_seconds or 0.0,
        deterministic=True,  # every scheme in this reproduction is deterministic
        converged=result.converged,
        levels=tuple(hierarchy.level_sizes()),
        paper_iterations=paper[0],
        paper_agg_seconds=paper[1],
        paper_setup_seconds=paper[2],
        paper_solve_seconds=paper[3],
    )


def _render(rows: List[Table5Row]) -> str:
    return table5_table(rows).render()


TABLE5_EXPERIMENT = register_experiment(
    Experiment(
        name="table5",
        title="Table V: SA-AMG preconditioned CG with different aggregation schemes",
        plan=_plan,
        task=table5_task,
        render=_render,
        key_field="scheme",
        deterministic_fields=("iterations", "converged", "levels"),
    )
)


def run_table5(
    config: BenchConfig = BenchConfig(),
    grid: Tuple[int, int, int] = DEFAULT_TABLE5_GRID,
    tol: float = 1e-12,
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
) -> List[Table5Row]:
    """Run the Table V experiment on a Laplace3D grid (30^3 by default)."""
    task = None
    if (tuple(grid), tol) != (DEFAULT_TABLE5_GRID, 1e-12):
        task = functools.partial(table5_task, grid=tuple(grid), tol=tol)
    return TABLE5_EXPERIMENT.run(config, backend=backend, jobs=jobs, task=task).rows


def table5_table(rows: List[Table5Row]) -> Table:
    """Format Table V rows as a paper-style text table."""
    table = Table(
        ["scheme", "iters", "agg (s)", "setup (s)", "solve (s)", "det.",
         "paper iters", "paper agg (s)", "paper setup (s)", "paper solve (s)"],
        title="Table V: SA-AMG preconditioned CG with different aggregation schemes",
    )
    for row in rows:
        table.add_row(
            [
                row.scheme, row.iterations,
                round(row.aggregation_seconds, 4), round(row.setup_seconds, 4),
                round(row.solve_seconds, 4), row.deterministic,
                row.paper_iterations, row.paper_agg_seconds,
                row.paper_setup_seconds, row.paper_solve_seconds,
            ]
        )
    return table

"""Benchmark / experiment drivers.

One module per table or figure of the paper's evaluation section (Section VI); each
exposes a ``run_*`` function returning structured rows and a ``*_table`` formatter
that prints the same rows the paper reports (plus the published reference numbers).
The ``benchmarks/`` directory at the repository root wraps these drivers with
pytest-benchmark targets, and EXPERIMENTS.md records paper-vs-measured for every
experiment.
"""

from __future__ import annotations

from .config import BenchConfig, cached_suite_graph, cached_suite_matrix
from .table1 import Table1Row, run_table1, table1_table
from .table2 import Table2Row, run_table2, table2_table
from .table3 import Table3Row, run_table3, table3_table, PAPER_TABLE3
from .table4 import Table4Row, run_table4, table4_table
from .table5 import Table5Row, run_table5, table5_table, PAPER_TABLE5, AGGREGATION_SCHEMES
from .table6 import Table6Row, run_table6, table6_table, PAPER_TABLE6, TABLE6_MATRICES
from .fig2 import Fig2Row, run_fig2, fig2_table, fig2_geometric_means, PAPER_FIG2_MEANS
from .fig3 import Fig3Row, run_fig3, fig3_table
from .fig45 import ScalingRow, run_scaling, scaling_table, DEFAULT_THREAD_COUNTS
from .fig67 import SpeedupRow, run_fig6, run_fig7, speedup_table

__all__ = [
    "BenchConfig",
    "cached_suite_graph",
    "cached_suite_matrix",
    "Table1Row", "run_table1", "table1_table",
    "Table2Row", "run_table2", "table2_table",
    "Table3Row", "run_table3", "table3_table", "PAPER_TABLE3",
    "Table4Row", "run_table4", "table4_table",
    "Table5Row", "run_table5", "table5_table", "PAPER_TABLE5", "AGGREGATION_SCHEMES",
    "Table6Row", "run_table6", "table6_table", "PAPER_TABLE6", "TABLE6_MATRICES",
    "Fig2Row", "run_fig2", "fig2_table", "fig2_geometric_means", "PAPER_FIG2_MEANS",
    "Fig3Row", "run_fig3", "fig3_table",
    "ScalingRow", "run_scaling", "scaling_table", "DEFAULT_THREAD_COUNTS",
    "SpeedupRow", "run_fig6", "run_fig7", "speedup_table",
]

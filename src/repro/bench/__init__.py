"""Benchmark / experiment drivers.

One module per table or figure of the paper's evaluation section (Section VI); each
expresses its sweep declaratively through the :mod:`~repro.bench.experiment`
framework — a *plan* stage producing picklable work units, a module-level *task*
function executed through :meth:`ExecutionBackend.map_graphs` (so the chunked and
threaded backends shard the sweep over worker pools), and a *render* stage printing
the same rows the paper reports (plus the published reference numbers). Each module
still exposes the classic ``run_*`` function returning structured rows and the
``*_table`` formatter; ``Experiment.run`` additionally returns a JSON-persistable
:class:`~repro.bench.experiment.ExperimentResult`, and
:func:`~repro.bench.experiment.sweep` compares one experiment's wall-clock across
backends. The ``benchmarks/`` directory at the repository root wraps these drivers
with pytest-benchmark targets, and EXPERIMENTS.md records paper-vs-measured for
every experiment.
"""

from __future__ import annotations

from .config import (
    BenchConfig,
    cached_suite_graph,
    cached_suite_matrix,
    clear_suite_cache,
    suite_cache_stats,
)
from .experiment import (
    Experiment,
    ExperimentResult,
    SweepMismatchError,
    SweepResult,
    default_results_dir,
    experiment_names,
    get_experiment,
    register_experiment,
    run_experiment,
    sweep,
    sweep_table,
)
from .compare import ComparisonReport, compare_files, compare_results
from .table1 import Table1Row, run_table1, table1_table
from .table2 import Table2Row, run_table2, table2_table
from .table3 import Table3Row, run_table3, table3_table, PAPER_TABLE3
from .table4 import Table4Row, run_table4, table4_table
from .table5 import Table5Row, run_table5, table5_table, PAPER_TABLE5, AGGREGATION_SCHEMES
from .table6 import Table6Row, run_table6, table6_table, PAPER_TABLE6, TABLE6_MATRICES
from .fig2 import Fig2Row, run_fig2, fig2_table, fig2_geometric_means, PAPER_FIG2_MEANS
from .fig3 import Fig3Row, run_fig3, fig3_table
from .fig45 import ScalingRow, run_scaling, scaling_table, DEFAULT_THREAD_COUNTS
from .fig67 import SpeedupRow, run_fig6, run_fig7, speedup_table
from .smoke import SmokeRow, run_smoke, smoke_table
from .service_bench import ServiceRow, run_service, service_table

__all__ = [
    "BenchConfig",
    "cached_suite_graph",
    "cached_suite_matrix",
    "clear_suite_cache",
    "suite_cache_stats",
    "Experiment",
    "ExperimentResult",
    "SweepMismatchError",
    "SweepResult",
    "default_results_dir",
    "experiment_names",
    "get_experiment",
    "register_experiment",
    "run_experiment",
    "sweep",
    "sweep_table",
    "ComparisonReport", "compare_files", "compare_results",
    "Table1Row", "run_table1", "table1_table",
    "Table2Row", "run_table2", "table2_table",
    "Table3Row", "run_table3", "table3_table", "PAPER_TABLE3",
    "Table4Row", "run_table4", "table4_table",
    "Table5Row", "run_table5", "table5_table", "PAPER_TABLE5", "AGGREGATION_SCHEMES",
    "Table6Row", "run_table6", "table6_table", "PAPER_TABLE6", "TABLE6_MATRICES",
    "Fig2Row", "run_fig2", "fig2_table", "fig2_geometric_means", "PAPER_FIG2_MEANS",
    "Fig3Row", "run_fig3", "fig3_table",
    "ScalingRow", "run_scaling", "scaling_table", "DEFAULT_THREAD_COUNTS",
    "SpeedupRow", "run_fig6", "run_fig7", "speedup_table",
    "SmokeRow", "run_smoke", "smoke_table",
    "ServiceRow", "run_service", "service_table",
]

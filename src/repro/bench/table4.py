"""Table IV: quality (set size) of the MIS-2 produced by Kokkos Kernels, CUSP and
ViennaCL.

CUSP and ViennaCL both implement Bell's MIS-2; in this reproduction the "CUSP" and
"ViennaCL" columns therefore run :func:`repro.mis.bell.bell_mis` with two different
fixed-priority seeds (the two libraries draw different random priorities, which is the
only source of difference between them in practice). The claim to reproduce is that
all three produce sets of very similar size, i.e. the speed of Algorithm 1 does not
cost quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..graph.suite import paper_statistics
from ..mis.bell import bell_mis
from ..mis.kk import kk_mis2
from ..util.tables import Table
from .config import BenchConfig, cached_suite_graph
from .experiment import Experiment, matrix_plan, register_experiment, warm_suite_graphs

__all__ = ["Table4Row", "run_table4", "table4_table", "TABLE4_EXPERIMENT"]


@dataclass(frozen=True)
class Table4Row:
    """MIS-2 sizes for one matrix (measured and published)."""

    matrix: str
    kk: int
    cusp: int
    viennacl: int
    num_vertices: int
    paper_kk: int
    paper_cusp: int
    paper_viennacl: int

    @property
    def max_relative_spread(self) -> float:
        """Largest relative difference between the three measured sizes."""
        values = [self.kk, self.cusp, self.viennacl]
        low, high = min(values), max(values)
        return (high - low) / max(1, low)


def table4_task(name: str, config: BenchConfig) -> Table4Row:
    """Per-matrix map stage: MIS-2 sizes for the KK, CUSP and ViennaCL schemes."""
    graph = cached_suite_graph(name, config.scale, config.seed, config.mtx_dir)
    kk = kk_mis2(graph, seed=config.seed)
    cusp = bell_mis(graph, k=2, seed=config.seed)
    viennacl = bell_mis(graph, k=2, seed=config.seed + 1)
    paper = paper_statistics(name).paper_mis2_sizes
    return Table4Row(
        matrix=name,
        kk=kk.size,
        cusp=cusp.size,
        viennacl=viennacl.size,
        num_vertices=graph.num_vertices,
        paper_kk=paper.get("kk", -1),
        paper_cusp=paper.get("cusp", -1),
        paper_viennacl=paper.get("viennacl", -1),
    )


def _render(rows: List[Table4Row]) -> str:
    return table4_table(rows).render()


TABLE4_EXPERIMENT = register_experiment(
    Experiment(
        name="table4",
        title="Table IV: MIS-2 sizes for Kokkos Kernels, CUSP and ViennaCL",
        plan=matrix_plan,
        task=table4_task,
        render=_render,
        key_field="matrix",
        deterministic_fields=("kk", "cusp", "viennacl", "num_vertices"),
        warm=warm_suite_graphs,
    )
)


def run_table4(
    config: BenchConfig = BenchConfig(),
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
) -> List[Table4Row]:
    """Run the Table IV experiment and return one row per suite matrix."""
    return TABLE4_EXPERIMENT.run(config, backend=backend, jobs=jobs).rows


def table4_table(rows: List[Table4Row]) -> Table:
    """Format Table IV rows as a paper-style text table."""
    table = Table(
        ["matrix", "KK", "CUSP", "ViennaCL", "spread %", "paper KK", "paper CUSP", "paper ViennaCL"],
        title="Table IV: MIS-2 sizes for Kokkos Kernels, CUSP and ViennaCL (higher is better)",
    )
    for row in rows:
        table.add_row(
            [
                row.matrix, row.kk, row.cusp, row.viennacl,
                round(100.0 * row.max_relative_spread, 2),
                row.paper_kk, row.paper_cusp, row.paper_viennacl,
            ]
        )
    return table

"""Table I: MIS-2 iteration counts for the three priority schemes.

The paper's Table I compares "Fixed" (Bell-style priorities drawn once), "Xor Hash"
(per-iteration xorshift) and "Xor* Hash" (per-iteration xorshift*, the scheme used by
Algorithm 1) on the 17-matrix suite. The headline observations to reproduce are:

* xorshift* needs the fewest iterations on every matrix;
* plain xorshift is usually *worse* than fixed priorities (the hash is correlated
  between iterations);
* fixed priorities sit in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..graph.suite import paper_statistics
from ..hashing.priorities import PriorityScheme
from ..mis.kk import kk_mis2
from ..util.tables import Table
from .config import BenchConfig, cached_suite_graph
from .experiment import Experiment, matrix_plan, register_experiment, warm_suite_graphs

__all__ = ["Table1Row", "run_table1", "table1_table", "TABLE1_EXPERIMENT"]


@dataclass(frozen=True)
class Table1Row:
    """Measured and published iteration counts for one matrix."""

    matrix: str
    fixed: int
    xor: int
    xorstar: int
    paper_fixed: int
    paper_xor: int
    paper_xorstar: int


def table1_task(name: str, config: BenchConfig) -> Table1Row:
    """Per-matrix map stage: MIS-2 iteration counts for the three priority schemes."""
    graph = cached_suite_graph(name, config.scale, config.seed, config.mtx_dir)
    iters: Dict[str, int] = {}
    for scheme in (PriorityScheme.FIXED, PriorityScheme.XOR, PriorityScheme.XORSTAR):
        result = kk_mis2(graph, priority_scheme=scheme, seed=config.seed)
        iters[scheme.value] = result.iterations
    paper = paper_statistics(name).paper_iterations
    return Table1Row(
        matrix=name,
        fixed=iters["fixed"],
        xor=iters["xor"],
        xorstar=iters["xorstar"],
        paper_fixed=paper.get("fixed", -1),
        paper_xor=paper.get("xor", -1),
        paper_xorstar=paper.get("xorstar", -1),
    )


def _render(rows: List[Table1Row]) -> str:
    return table1_table(rows).render()


TABLE1_EXPERIMENT = register_experiment(
    Experiment(
        name="table1",
        title="Table I: MIS-2 iteration counts for three random priority methods",
        plan=matrix_plan,
        task=table1_task,
        render=_render,
        key_field="matrix",
        deterministic_fields=("fixed", "xor", "xorstar"),
        warm=warm_suite_graphs,
    )
)


def run_table1(
    config: BenchConfig = BenchConfig(),
    backend: Optional[str] = None,
    jobs: Optional[int] = None,
) -> List[Table1Row]:
    """Run the Table I experiment and return one row per suite matrix."""
    return TABLE1_EXPERIMENT.run(config, backend=backend, jobs=jobs).rows


def table1_table(rows: List[Table1Row]) -> Table:
    """Format Table I rows as a paper-style text table."""
    table = Table(
        ["matrix", "Fixed", "Xor", "Xor*", "paper Fixed", "paper Xor", "paper Xor*"],
        title="Table I: MIS-2 iteration counts for three random priority methods",
    )
    for row in rows:
        table.add_row(
            [row.matrix, row.fixed, row.xor, row.xorstar,
             row.paper_fixed, row.paper_xor, row.paper_xorstar]
        )
    return table

"""Smoke experiment: a fast end-to-end sanity check of every kernel layer.

Used by CI (``python -m repro.bench smoke`` and the cross-backend
``sweep smoke``): each work unit builds a small structured graph, runs MIS-2,
greedy coloring, MIS-2 aggregation and the device cost model, *verifies* every
result, and records the deterministic measurables. An invalid result raises,
failing the CI job; the registered deterministic fields make the smoke
experiment a meaningful (and cheap) cross-backend determinism probe for the
sweep driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..util.tables import Table
from .config import BenchConfig
from .experiment import Experiment, register_experiment

__all__ = ["SmokeRow", "smoke_task", "smoke_table", "run_smoke", "SMOKE_EXPERIMENT"]

#: Work units: (generator kind, nx, ny, nz) for two small structured graphs.
SMOKE_UNITS: Tuple[Tuple[str, int, int, int], ...] = (
    ("laplace3d", 10, 10, 10),
    ("elasticity3d", 6, 6, 6),
)


@dataclass(frozen=True)
class SmokeRow:
    """Verified kernel-stack results for one smoke graph."""

    graph: str
    num_vertices: int
    mis2_size: int
    iterations: int
    num_colors: int
    rounds: int
    num_aggregates: int
    predicted_v100_us: float
    backend: str


def _plan(config: BenchConfig) -> List[Tuple[str, int, int, int]]:
    return list(SMOKE_UNITS)


def smoke_task(unit: Tuple[str, int, int, int], config: BenchConfig) -> SmokeRow:
    """Run and verify MIS-2 + coloring + aggregation + cost model on one graph."""
    import numpy as np

    from ..coarsen.mis2_agg import mis2_aggregation
    from ..coloring.greedy import greedy_color
    from ..coloring.verify import is_valid_coloring
    from ..graph.generators import elasticity3d, laplace3d
    from ..mis.kk import kk_mis2
    from ..mis.verify import verify_mis
    from ..parallel.costmodel import predict_device_time

    kind, nx, ny, nz = unit
    generator = laplace3d if kind == "laplace3d" else elasticity3d
    graph = generator(nx, ny, nz)
    label = f"{kind}({nx},{ny},{nz})"

    mis = kk_mis2(graph, seed=config.seed)
    if not verify_mis(graph, mis.in_set, k=2):
        raise RuntimeError(f"smoke check failed: kk_mis2 produced an invalid MIS-2 on {label}")
    coloring = greedy_color(graph)
    if not is_valid_coloring(graph, coloring.colors, distance=1):
        raise RuntimeError(
            f"smoke check failed: greedy_color produced an invalid coloring on {label}"
        )
    agg = mis2_aggregation(graph, mis=mis, seed=config.seed)
    if not agg.is_complete():
        raise RuntimeError(
            f"smoke check failed: mis2_aggregation left vertices unaggregated on {label}"
        )
    predicted = predict_device_time(mis.traffic, "v100")
    if not np.isfinite(predicted) or predicted <= 0:
        raise RuntimeError(
            f"smoke check failed: cost model produced a non-positive time on {label}"
        )
    return SmokeRow(
        graph=label,
        num_vertices=graph.num_vertices,
        mis2_size=int(mis.in_set.size),
        iterations=mis.iterations,
        num_colors=coloring.num_colors,
        rounds=coloring.rounds,
        num_aggregates=agg.num_aggregates,
        predicted_v100_us=predicted * 1e6,
        backend=mis.config.backend,
    )


def smoke_table(rows: List[SmokeRow]) -> Table:
    """Format the smoke rows as the CI sanity-check table."""
    table = Table(
        ["graph", "|V|", "|MIS-2|", "iters", "colors", "rounds", "aggregates",
         "V100 (us)", "backend"],
        title="smoke check: OK (all kernel layers verified)",
    )
    for row in rows:
        table.add_row(
            [row.graph, row.num_vertices, row.mis2_size, row.iterations,
             row.num_colors, row.rounds, row.num_aggregates,
             round(row.predicted_v100_us, 1), row.backend]
        )
    return table


def _render(rows: List[SmokeRow]) -> str:
    return smoke_table(rows).render()


SMOKE_EXPERIMENT = register_experiment(
    Experiment(
        name="smoke",
        title="Smoke: fast end-to-end sanity check of every kernel layer (CI)",
        plan=_plan,
        task=smoke_task,
        render=_render,
        key_field="graph",
        deterministic_fields=(
            "num_vertices", "mis2_size", "iterations", "num_colors", "rounds",
            "num_aggregates",
        ),
    )
)


def run_smoke(
    config: BenchConfig = BenchConfig(),
    backend=None,
    jobs=None,
) -> List[SmokeRow]:
    """Run the smoke experiment and return one verified row per smoke graph."""
    return SMOKE_EXPERIMENT.run(config, backend=backend, jobs=jobs).rows

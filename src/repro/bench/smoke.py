"""Smoke experiment: a fast end-to-end sanity check of every kernel layer.

Used by CI (``python -m repro.bench smoke`` and the cross-backend
``sweep smoke``): each work unit builds a small structured graph, runs MIS-2,
greedy coloring, MIS-2 aggregation and the device cost model, *verifies* every
result, and records the deterministic measurables. An invalid result raises,
failing the CI job; the registered deterministic fields make the smoke
experiment a meaningful (and cheap) cross-backend determinism probe for the
sweep driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..util.tables import Table
from .config import BenchConfig
from .experiment import Experiment, register_experiment

__all__ = ["SmokeRow", "smoke_task", "smoke_table", "run_smoke", "SMOKE_EXPERIMENT"]

#: Work units: (generator kind, nx, ny, nz) for two small structured graphs.
SMOKE_UNITS: Tuple[Tuple[str, int, int, int], ...] = (
    ("laplace3d", 10, 10, 10),
    ("elasticity3d", 6, 6, 6),
)


@dataclass(frozen=True)
class SmokeRow:
    """Verified kernel-stack results for one smoke graph."""

    graph: str
    num_vertices: int
    mis2_size: int
    iterations: int
    num_colors: int
    rounds: int
    num_aggregates: int
    predicted_v100_us: float
    backend: str
    #: Intra-graph partition count (1 = unpartitioned run).
    parts: int = 1
    #: Vertices adjacent to another part in the partition layout.
    boundary_vertices: int = 0
    #: Ghost-exchange supersteps executed by the partitioned MIS + coloring runs.
    ghost_supersteps: int = 0
    #: Logical bytes shipped once at session open by the partitioned MIS +
    #: coloring runs (per-part CSR + index maps + initial state); 0 on the
    #: non-resident baseline, where everything re-ships every superstep.
    resident_bytes: int = 0
    #: Logical bytes shipped across all supersteps, both directions (changed
    #: halo deltas out + touched-entry results back on the resident path;
    #: whole parts + deltas + returning state on the non-resident baseline).
    superstep_bytes: int = 0
    #: Largest single-superstep shipment across the partitioned runs — the
    #: O(changed halo)-after-superstep-1 acceptance gate for the resident
    #: path.
    max_superstep_bytes: int = 0
    #: ``resident_bytes + superstep_bytes`` — everything the run shipped. This
    #: (with ``max_superstep_bytes``) is the gated deterministic count: the
    #: resident path must ship strictly less in total than the non-resident
    #: baseline, while the one-time/per-superstep breakdown above stays a
    #: row-level detail (a one-time cost is not comparable *per key* across
    #: execution paths).
    total_shipped_bytes: int = 0
    #: Coordinator wall-clock the partitioned MIS + coloring runs spent
    #: computing between session calls. Like the two meters below this is
    #: ``perf_counter``-based and machine-varying — the timing triple is
    #: deliberately NOT a deterministic field; it exists so the overlap win
    #: is measurable, not asserted.
    compute_seconds: float = 0.0
    #: Wall-clock spent preparing/shipping phase deltas across those runs.
    exchange_seconds: float = 0.0
    #: Wall-clock the coordinator spent blocked on phase results — the
    #: number the overlapped schedule exists to shrink.
    idle_seconds: float = 0.0


def _plan(config: BenchConfig) -> List[Tuple[str, int, int, int]]:
    return list(SMOKE_UNITS)


def smoke_task(unit: Tuple[str, int, int, int], config: BenchConfig) -> SmokeRow:
    """Run and verify MIS-2 + coloring + aggregation + cost model on one graph."""
    import numpy as np

    from ..coarsen.mis2_agg import mis2_aggregation
    from ..coloring.greedy import greedy_color
    from ..coloring.verify import is_valid_coloring
    from ..graph.generators import elasticity3d, laplace3d
    from ..mis.kk import kk_mis2
    from ..mis.verify import verify_mis
    from ..parallel.costmodel import predict_device_time

    kind, nx, ny, nz = unit
    generator = laplace3d if kind == "laplace3d" else elasticity3d
    graph = generator(nx, ny, nz)
    label = f"{kind}({nx},{ny},{nz})"

    mis = kk_mis2(graph, seed=config.seed)
    if not verify_mis(graph, mis.in_set, k=2):
        raise RuntimeError(f"smoke check failed: kk_mis2 produced an invalid MIS-2 on {label}")
    coloring = greedy_color(graph)
    if not is_valid_coloring(graph, coloring.colors, distance=1):
        raise RuntimeError(
            f"smoke check failed: greedy_color produced an invalid coloring on {label}"
        )
    agg = mis2_aggregation(graph, mis=mis, seed=config.seed)
    if not agg.is_complete():
        raise RuntimeError(
            f"smoke check failed: mis2_aggregation left vertices unaggregated on {label}"
        )
    predicted = predict_device_time(mis.traffic, "v100")
    if not np.isfinite(predicted) or predicted <= 0:
        raise RuntimeError(
            f"smoke check failed: cost model produced a non-positive time on {label}"
        )
    boundary_vertices = 0
    ghost_supersteps = 0
    resident_bytes = 0
    superstep_bytes = 0
    max_superstep_bytes = 0
    compute_seconds = 0.0
    exchange_seconds = 0.0
    idle_seconds = 0.0
    if config.parts is not None:
        # Partition-parallel runs must be bit-identical to the unpartitioned
        # results computed above — the intra-graph sharding contract. One
        # layout serves all three kernels (multilevel partitioning is itself
        # MIS-2 coarsening, so rebuilding it per kernel would triple the cost).
        from ..parallel.partitioned import build_partition_layout

        layout = build_partition_layout(graph, config.parts)
        pmis = kk_mis2(
            graph,
            seed=config.seed,
            partitions=layout,
            resident=config.resident,
            changed_deltas=config.changed_deltas,
            overlap=config.overlap,
        )
        if not (np.array_equal(pmis.in_set, mis.in_set) and pmis.iterations == mis.iterations):
            raise RuntimeError(
                f"smoke check failed: partitioned MIS-2 diverged from the reference on {label}"
            )
        pcoloring = greedy_color(
            graph,
            partitions=layout,
            resident=config.resident,
            changed_deltas=config.changed_deltas,
            overlap=config.overlap,
        )
        if not (
            np.array_equal(pcoloring.colors, coloring.colors)
            and pcoloring.rounds == coloring.rounds
        ):
            raise RuntimeError(
                f"smoke check failed: partitioned coloring diverged from the reference on {label}"
            )
        # pmis is already verified identical to mis, so reuse it for phase 1
        # (as the unpartitioned path reuses mis) — only the phase-2 sub-MIS
        # still runs partitioned.
        pagg = mis2_aggregation(
            graph,
            mis=pmis,
            seed=config.seed,
            partitions=layout,
            resident=config.resident,
            changed_deltas=config.changed_deltas,
            overlap=config.overlap,
        )
        if not (
            np.array_equal(pagg.labels, agg.labels)
            and pagg.num_aggregates == agg.num_aggregates
        ):
            raise RuntimeError(
                f"smoke check failed: partitioned aggregation diverged from the reference on {label}"
            )
        boundary_vertices = pmis.partition_stats.boundary_vertices
        pstats = (pmis.partition_stats, pcoloring.partition_stats)
        ghost_supersteps = sum(s.supersteps for s in pstats)
        resident_bytes = sum(s.resident_bytes for s in pstats)
        superstep_bytes = sum(s.superstep_bytes for s in pstats)
        max_superstep_bytes = max(s.max_superstep_bytes for s in pstats)
        compute_seconds = sum(s.compute_seconds for s in pstats)
        exchange_seconds = sum(s.exchange_seconds for s in pstats)
        idle_seconds = sum(s.idle_seconds for s in pstats)
    return SmokeRow(
        graph=label,
        num_vertices=graph.num_vertices,
        mis2_size=int(mis.in_set.size),
        iterations=mis.iterations,
        num_colors=coloring.num_colors,
        rounds=coloring.rounds,
        num_aggregates=agg.num_aggregates,
        predicted_v100_us=predicted * 1e6,
        backend=mis.config.backend,
        parts=config.parts if config.parts is not None else 1,
        boundary_vertices=boundary_vertices,
        ghost_supersteps=ghost_supersteps,
        resident_bytes=resident_bytes,
        superstep_bytes=superstep_bytes,
        max_superstep_bytes=max_superstep_bytes,
        total_shipped_bytes=resident_bytes + superstep_bytes,
        compute_seconds=compute_seconds,
        exchange_seconds=exchange_seconds,
        idle_seconds=idle_seconds,
    )


def smoke_table(rows: List[SmokeRow]) -> Table:
    """Format the smoke rows as the CI sanity-check table."""
    partitioned = any(row.parts > 1 for row in rows)
    columns = ["graph", "|V|", "|MIS-2|", "iters", "colors", "rounds", "aggregates",
               "V100 (us)", "backend"]
    if partitioned:
        columns += ["parts", "boundary", "exchanges", "resident B", "step B",
                    "max step B", "compute ms", "exchange ms", "idle ms"]
    title = "smoke check: OK (all kernel layers verified"
    title += "; partitioned runs bit-identical)" if partitioned else ")"
    table = Table(columns, title=title)
    for row in rows:
        cells = [row.graph, row.num_vertices, row.mis2_size, row.iterations,
                 row.num_colors, row.rounds, row.num_aggregates,
                 round(row.predicted_v100_us, 1), row.backend]
        if partitioned:
            cells += [row.parts, row.boundary_vertices, row.ghost_supersteps,
                      row.resident_bytes, row.superstep_bytes, row.max_superstep_bytes,
                      round(row.compute_seconds * 1e3, 2),
                      round(row.exchange_seconds * 1e3, 2),
                      round(row.idle_seconds * 1e3, 2)]
        table.add_row(cells)
    return table


def _render(rows: List[SmokeRow]) -> str:
    return smoke_table(rows).render()


SMOKE_EXPERIMENT = register_experiment(
    Experiment(
        name="smoke",
        title="Smoke: fast end-to-end sanity check of every kernel layer (CI)",
        plan=_plan,
        task=smoke_task,
        render=_render,
        key_field="graph",
        deterministic_fields=(
            "num_vertices", "mis2_size", "iterations", "num_colors", "rounds",
            "num_aggregates", "parts", "boundary_vertices", "ghost_supersteps",
            "total_shipped_bytes", "max_superstep_bytes",
        ),
        parts_aware=True,
    )
)


def run_smoke(
    config: BenchConfig = BenchConfig(),
    backend=None,
    jobs=None,
) -> List[SmokeRow]:
    """Run the smoke experiment and return one verified row per smoke graph."""
    return SMOKE_EXPERIMENT.run(config, backend=backend, jobs=jobs).rows

"""The cumulative optimization ladder of Fig. 2.

The paper isolates its 8.97x (geometric-mean) speedup over the Kokkos implementation
of Bell's algorithm into four optimizations, applied cumulatively:

====================  ==========================================================
Level                  Configuration
====================  ==========================================================
``baseline``           Bell's MIS-k (k=2): fixed priorities, no worklists,
                       uncompressed tuples, flat (non-SIMD) neighbour loops.
``random_priority``    Algorithm 1's structure with per-iteration xorshift*
                       priorities; still no worklists, uncompressed tuples.
``worklist``           adds worklist compaction (Section V-B).
``packed_status``      adds compressed single-word status tuples (Section V-C).
``simd``               adds SIMD/team-parallel neighbour loops (Section V-D;
                       modelled through the GPU cost model, enabled only when the
                       average degree is at least 16).
====================  ==========================================================

:func:`run_optimization_level` executes one level and returns its
:class:`~repro.mis.result.MISResult`; the Fig. 2 bench driver times each level and
predicts device times from the recorded traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..graph.csr import CSRGraph
from ..hashing.priorities import PriorityScheme
from .bell import bell_mis
from .kk import kk_mis2
from .result import MISResult
from .unpacked import mis2_unpacked

__all__ = ["OptimizationLevel", "OPTIMIZATION_LEVELS", "run_optimization_level"]


@dataclass(frozen=True)
class OptimizationLevel:
    """One rung of the Fig. 2 cumulative-optimization ladder."""

    #: Machine-friendly identifier.
    key: str
    #: Label as used in the paper's Fig. 2 legend.
    label: str
    #: Which of the four optimizations are active at this level.
    random_priority: bool
    worklists: bool
    packed: bool
    simd: bool


#: The five implementations compared in Fig. 2, in cumulative order.
OPTIMIZATION_LEVELS: List[OptimizationLevel] = [
    OptimizationLevel("baseline", "Baseline (Bell)", False, False, False, False),
    OptimizationLevel("random_priority", "+ Random Priority", True, False, False, False),
    OptimizationLevel("worklist", "+ Worklist", True, True, False, False),
    OptimizationLevel("packed_status", "+ Packed Status", True, True, True, False),
    OptimizationLevel("simd", "+ SIMD", True, True, True, True),
]


def run_optimization_level(graph: CSRGraph, level: OptimizationLevel | str, seed: int = 0) -> MISResult:
    """Run the MIS-2 configuration corresponding to ``level`` on ``graph``."""
    if isinstance(level, str):
        matches = [lv for lv in OPTIMIZATION_LEVELS if lv.key == level]
        if not matches:
            raise ValueError(
                f"unknown optimization level {level!r}; known: "
                f"{[lv.key for lv in OPTIMIZATION_LEVELS]}"
            )
        level = matches[0]
    if not level.random_priority:
        return bell_mis(graph, k=2, priority_scheme=PriorityScheme.FIXED, seed=seed)
    if not level.packed:
        return mis2_unpacked(
            graph,
            priority_scheme=PriorityScheme.XORSTAR,
            use_worklists=level.worklists,
            seed=seed,
        )
    return kk_mis2(
        graph,
        priority_scheme=PriorityScheme.XORSTAR,
        use_worklists=level.worklists,
        simd=(None if level.simd else False),
        seed=seed,
    )

"""Verification of distance-k independent sets.

The paper's claims rest on three properties of the output: distance-k independence,
maximality, and determinism. Determinism is checked by the test-suite (identical
results across runs and execution spaces); this module provides the independence and
maximality checks for arbitrary ``k`` using sparse boolean reachability, plus a slow
BFS-based violation enumerator used by the property-based tests on small graphs.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..graph.build import to_scipy
from ..graph.csr import CSRGraph
from ..graph.distance import bfs_distances

__all__ = [
    "is_independent_set",
    "is_maximal",
    "verify_mis",
    "independence_violations",
]


def _as_vertex_array(vertices: Union[np.ndarray, Iterable[int]], n: int) -> np.ndarray:
    verts = np.unique(np.asarray(list(vertices) if not isinstance(vertices, np.ndarray)
                                 else vertices, dtype=np.int64))
    if verts.size and (verts.min() < 0 or verts.max() >= n):
        raise ValueError("vertex id outside the graph")
    return verts


def _reach_within_k(graph: CSRGraph, indicator: np.ndarray, k: int) -> np.ndarray:
    """Boolean vector: true for vertices within distance ``k`` of any indicated vertex."""
    A = to_scipy(graph, dtype=np.int8)
    reach = indicator.astype(bool)
    current = indicator.astype(np.int8)
    for _ in range(k):
        current = A @ current
        reach = reach | (np.asarray(current).ravel() > 0)
        current = reach.astype(np.int8)
    return reach


def is_independent_set(
    graph: CSRGraph, vertices: Union[np.ndarray, Iterable[int]], k: int = 2
) -> bool:
    """True when no two distinct members of ``vertices`` are within distance ``k``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    verts = _as_vertex_array(vertices, graph.num_vertices)
    if verts.size <= 1:
        return True
    A = to_scipy(graph, dtype=np.int8) + sp.identity(graph.num_vertices, dtype=np.int8, format="csr")
    # Rows of (A+I)^k restricted to the set: nonzero (i, j), i != j, is a violation.
    block = sp.csr_matrix(A[verts])
    for _ in range(k - 1):
        block = block @ A
        block.data[:] = 1
    sub = sp.csr_matrix(block[:, verts])
    sub.setdiag(0)
    sub.eliminate_zeros()
    return sub.nnz == 0


def is_maximal(
    graph: CSRGraph, vertices: Union[np.ndarray, Iterable[int]], k: int = 2
) -> bool:
    """True when every vertex of the graph is within distance ``k`` of some member."""
    if k < 1:
        raise ValueError("k must be >= 1")
    n = graph.num_vertices
    if n == 0:
        return True
    verts = _as_vertex_array(vertices, n)
    indicator = np.zeros(n, dtype=np.int8)
    indicator[verts] = 1
    reach = _reach_within_k(graph, indicator, k)
    return bool(np.all(reach))


def verify_mis(
    graph: CSRGraph, vertices: Union[np.ndarray, Iterable[int]], k: int = 2
) -> bool:
    """True when ``vertices`` is a *maximal* distance-``k`` independent set of ``graph``."""
    return is_independent_set(graph, vertices, k=k) and is_maximal(graph, vertices, k=k)


def independence_violations(
    graph: CSRGraph, vertices: Union[np.ndarray, Iterable[int]], k: int = 2
) -> List[Tuple[int, int]]:
    """All pairs of set members within distance ``k`` (BFS-based; small graphs only)."""
    verts = _as_vertex_array(vertices, graph.num_vertices)
    vset = set(int(v) for v in verts)
    violations: List[Tuple[int, int]] = []
    for v in verts:
        dist = bfs_distances(graph, int(v), max_distance=k)
        for u in np.nonzero((dist > 0) & (dist <= k))[0]:
            if int(u) in vset and int(v) < int(u):
                violations.append((int(v), int(u)))
    return violations

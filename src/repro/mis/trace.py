"""Iteration tracer reproducing the paper's Fig. 1 worked example.

:func:`trace_mis2` runs the loop-based reference implementation of Algorithm 1 and
records a snapshot after each of the three phases (Refresh Row, Refresh Column,
Decide Set) of every iteration, exposing the same information the figure shows for
each node: its status (IN / OUT / undecided), its current tuple ``T`` and the
neighbourhood minimum ``M``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from ..graph.csr import CSRGraph
from ..hashing.packing import TuplePacking
from ..hashing.priorities import PriorityScheme
from .reference import mis2_reference
from .result import MISResult

__all__ = ["IterationSnapshot", "trace_mis2"]


@dataclass
class IterationSnapshot:
    """State of Algorithm 1 after one phase of one iteration."""

    #: Main-loop iteration index (0-based).
    iteration: int
    #: ``"refresh_row"``, ``"refresh_column"`` or ``"decide"``.
    phase: str
    #: Packed ``T`` tuples (copy).
    T: np.ndarray
    #: Packed ``M`` tuples (copy).
    M: np.ndarray
    #: Per-vertex status derived from ``T``: ``"in"``, ``"out"`` or ``"undecided"``.
    statuses: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """Human-readable one-line-per-vertex description (used by the worked example)."""
        lines = [f"iteration {self.iteration}, after {self.phase}:"]
        for v, status in enumerate(self.statuses):
            lines.append(f"  vertex {v}: {status:10s} T={int(self.T[v])} M={int(self.M[v])}")
        return "\n".join(lines)


def trace_mis2(
    graph: CSRGraph,
    priority_scheme: Union[str, PriorityScheme] = PriorityScheme.XORSTAR,
    word_bits: int = 64,
    seed: int = 0,
) -> tuple[MISResult, List[IterationSnapshot]]:
    """Run Algorithm 1 on ``graph`` and return the result plus per-phase snapshots."""
    packer = TuplePacking(max(graph.num_vertices, 1), word_bits=word_bits)
    snapshots: List[IterationSnapshot] = []

    def record(phase: str, iteration: int, T: np.ndarray, M: np.ndarray) -> None:
        statuses = []
        for v in range(graph.num_vertices):
            if T[v] == packer.in_value:
                statuses.append("in")
            elif T[v] == packer.out_value:
                statuses.append("out")
            else:
                statuses.append("undecided")
        snapshots.append(IterationSnapshot(iteration, phase, T.copy(), M.copy(), statuses))

    result = mis2_reference(
        graph,
        priority_scheme=priority_scheme,
        word_bits=word_bits,
        seed=seed,
        phase_callback=record,
    )
    return result, snapshots

"""The Lemma IV.2 reduction: an MIS-1 of the boolean square ``G^2`` is an MIS-2 of ``G``.

The paper uses this reduction purely for the theoretical analysis (it transfers Luby's
O(log V) iteration bound to Algorithm 1); earlier work (Tuminaro & Tong's ML package)
used it *computationally* by running SpGEMM + a parallel MIS-1. Both uses are covered
here: :func:`mis2_via_square` is the SpGEMM-based computational path (a useful
independent baseline), and :func:`mis1_on_square_equals_mis2` is the property the
test-suite asserts.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.ops import square
from ..hashing.priorities import PriorityScheme
from .luby import luby_mis1
from .result import MISConfig, MISResult
from .verify import verify_mis

__all__ = ["mis2_via_square", "mis1_on_square_equals_mis2"]


def mis2_via_square(
    graph: CSRGraph,
    priority_scheme: Union[str, PriorityScheme] = PriorityScheme.XORSTAR,
    seed: int = 0,
) -> MISResult:
    """Compute an MIS-2 of ``graph`` by running Luby's MIS-1 on the boolean square.

    This is the ML / Tuminaro-Tong approach: form ``G^2`` with a (boolean) sparse
    matrix-matrix multiply, then run a distance-1 MIS on it. It is asymptotically more
    expensive than Algorithm 1 (the SpGEMM materialises the distance-2 neighbourhoods)
    but provides an algorithmically independent result used for cross-validation.
    """
    sq = square(graph)
    result = luby_mis1(sq, priority_scheme=priority_scheme, seed=seed)
    config = MISConfig(
        algorithm="mis1-on-square",
        k=2,
        priority_scheme=PriorityScheme.coerce(priority_scheme).value,
        use_worklists=True,
        packed_tuples=False,
        simd=False,
        seed=seed,
    )
    return MISResult(
        in_set=result.in_set,
        in_mask=result.in_mask,
        iterations=result.iterations,
        worklist_sizes=result.worklist_sizes,
        traffic=result.traffic,
        config=config,
    )


def mis1_on_square_equals_mis2(graph: CSRGraph, seed: int = 0) -> bool:
    """Check Lemma IV.2 on ``graph``: the MIS-1 of ``G^2`` verifies as an MIS-2 of ``G``."""
    result = mis2_via_square(graph, seed=seed)
    return verify_mis(graph, result.in_set, k=2)

"""Algorithm 1: the Kokkos Kernels distance-2 maximal independent set.

This is the paper's primary contribution. Each main-loop iteration has four phases,
all data-parallel over vertex worklists:

1. **Refresh Row** — every undecided vertex (``worklist1``) gets a fresh packed status
   tuple ``T[v] = (h(iter, v) << b) | (v + 1)`` where ``h`` is the xorshift* hash of
   the iteration number and the vertex id (Section V-A) and ``b`` is the id-field
   width of the compressed tuple (Section V-C).
2. **Refresh Column** — every vertex still adjacent to no IN vertex (``worklist2``)
   computes ``M[v]``, the minimum tuple over its closed neighbourhood; a minimum of
   ``IN`` is converted to ``OUT`` so that, in the next phase, neighbours of ``v``
   learn they are within distance 2 of an IN vertex.
3. **Decide Set** — an undecided vertex becomes ``OUT`` if any closed neighbour has
   ``M == OUT`` and ``IN`` if every closed neighbour's minimum equals its own tuple
   (which means its tuple is the unique minimum of its distance-2 neighbourhood).
4. **Worklist compaction** — ``worklist1`` keeps the still-undecided vertices,
   ``worklist2`` keeps the vertices whose ``M`` is not yet permanently ``OUT``
   (Section V-B); on the GPU this is a parallel prefix-sum compaction.

The implementation is fully vectorised over the worklists (the Python analogue of the
paper's flat+SIMD parallelism), deterministic — it is a pure function of
``(graph, config)`` — and instrumented with a :class:`~repro.parallel.costmodel.TrafficCounter`
so the benchmark harness can predict device times with the roofline model.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from ..graph.csr import CSRGraph
from ..hashing.packing import TuplePacking
from ..hashing.priorities import PriorityScheme, fixed_priorities
from ..hashing.xorshift import hash_iter_vertex
from ..parallel.backends import ExecutionBackend, resolve_backend
from ..parallel.costmodel import TrafficCounter
from .result import MISConfig, MISResult

__all__ = ["kk_mis2"]

#: Default SIMD enablement threshold: the paper enables team/SIMD-level parallelism
#: for the neighbour loops only when the average degree is at least 16 (Section V-D).
SIMD_DEGREE_THRESHOLD = 16.0

_INDEX_BYTES = 4
_ROWMAP_BYTES = 8


def _priorities_for(
    scheme: PriorityScheme,
    iteration: int,
    vertices: np.ndarray,
    num_vertices: int,
    seed: int,
) -> np.ndarray:
    """Pseudo-random priorities for the given vertices at the given iteration."""
    if scheme is PriorityScheme.FIXED:
        return fixed_priorities(num_vertices, seed=seed)[vertices]
    return hash_iter_vertex(iteration, vertices, star=(scheme is PriorityScheme.XORSTAR))


def _max_iterations(num_vertices: int) -> int:
    """Safety cap on main-loop iterations (expected O(log V), Section IV)."""
    return 20 * max(4, int(math.log2(num_vertices + 2))) + 64


def kk_mis2(
    graph: CSRGraph,
    priority_scheme: Union[str, PriorityScheme] = PriorityScheme.XORSTAR,
    use_worklists: bool = True,
    simd: Optional[bool] = None,
    word_bits: int = 64,
    seed: int = 0,
    backend: "Optional[str | ExecutionBackend]" = None,
    partitions=None,
    resident: bool = True,
    changed_deltas: bool = True,
    overlap: bool = True,
) -> MISResult:
    """Compute a distance-2 maximal independent set with Algorithm 1.

    Parameters
    ----------
    graph:
        Undirected input graph. Vertices are implicitly adjacent to themselves
        (the paper's matrices carry the diagonal), so no explicit self-loops are
        required.
    priority_scheme:
        ``"xorstar"`` (default, the paper's choice), ``"xor"`` or ``"fixed"``.
        Table I compares the three.
    use_worklists:
        Enable worklist compaction (Section V-B). Disabling it processes every vertex
        in every iteration, exactly like Bell's algorithm, and is only useful for the
        Fig. 2 ablation.
    simd:
        Whether the inner neighbour loops are modelled as SIMD/team-parallel
        (Section V-D). ``None`` (default) applies the paper's heuristic: enabled only
        when the average degree is at least 16. This only affects the traffic
        annotations consumed by the GPU cost model — the vectorised NumPy execution is
        identical either way.
    word_bits:
        Width of the packed status tuples (32 to match the paper exactly, 64 default).
    seed:
        Seed of the fixed-priority scheme (ignored by the hash schemes).
    backend:
        Execution backend (name or instance) running the data-parallel primitives;
        ``None`` uses :func:`repro.parallel.default_backend`. All backends produce
        bit-identical results.
    partitions:
        When not ``None``, shard the run *within* the graph: a part count, a
        per-vertex label array, or a
        :class:`~repro.parallel.partitioned.PartitionLayout`. The
        partition-parallel driver is bit-identical to the unpartitioned kernel
        for any value (and any backend); ``result.partition_stats`` records the
        layout, ghost-exchange and shipped-bytes counts.
    resident:
        Only meaningful with ``partitions``: ``True`` (default) runs the
        rank-resident execution path (each part's CSR ships to its pinned
        worker once, supersteps exchange only halo deltas); ``False`` runs
        the non-resident baseline that re-ships every part each superstep.
        Results are bit-identical either way.
    changed_deltas:
        Only meaningful with ``partitions``: ``True`` (default) ships each
        part only the halo values changed since its last refresh and sends
        each iteration's worklist indices once (stashed worker-side for the
        later phases); ``False`` keeps the full-halo wire format that ships
        whole halos and re-sends worklists every phase. Results are
        bit-identical either way — only the shipped-bytes accounting differs.
    overlap:
        Only meaningful with ``partitions`` and ``resident=True``: ``True``
        (default) runs the overlapped schedule that splits each superstep
        into boundary and interior sub-phases so the next phase's deltas
        ship while workers compute; ``False`` keeps the barrier schedule.
        Results, supersteps and shipped-byte counts are identical either
        way — only wall-clock differs.

    Returns
    -------
    :class:`~repro.mis.result.MISResult`
        The MIS-2, iteration count, worklist history and traffic counters.
    """
    if partitions is not None:
        from ..parallel.partitioned import partitioned_kk_mis2

        return partitioned_kk_mis2(
            graph,
            partitions,
            priority_scheme=priority_scheme,
            use_worklists=use_worklists,
            simd=simd,
            word_bits=word_bits,
            seed=seed,
            backend=backend,
            resident=resident,
            changed_deltas=changed_deltas,
            overlap=overlap,
        )
    scheme = PriorityScheme.coerce(priority_scheme)
    B = resolve_backend(backend)
    n = graph.num_vertices
    if simd is None:
        simd = graph.average_degree() >= SIMD_DEGREE_THRESHOLD
    config = MISConfig(
        algorithm="kk",
        k=2,
        priority_scheme=scheme.value,
        use_worklists=bool(use_worklists),
        packed_tuples=True,
        simd=bool(simd),
        word_bits=word_bits,
        seed=seed,
        backend=B.name,
    )
    traffic = TrafficCounter(backend=B.name)
    if n == 0:
        return MISResult(
            in_set=np.zeros(0, dtype=np.int64),
            in_mask=np.zeros(0, dtype=bool),
            iterations=0,
            traffic=traffic,
            config=config,
        )

    rowmap = graph.rowmap
    entries = graph.entries
    packer = TuplePacking(n, word_bits=word_bits)
    IN = packer.in_value
    OUT = packer.out_value
    word_bytes = packer.dtype.itemsize

    all_vertices = np.arange(n, dtype=np.int64)
    # T holds the packed status tuple of every vertex; every vertex starts undecided
    # (the concrete value is overwritten by the first Refresh Row).
    T = packer.pack(np.zeros(n, dtype=packer.dtype), all_vertices)
    # M holds the minimum tuple seen in each closed neighbourhood; OUT is "sticky".
    M = np.full(n, OUT, dtype=packer.dtype)

    worklist1 = all_vertices.copy()
    worklist2 = all_vertices.copy()
    worklist_sizes = []
    iteration = 0
    max_iter = _max_iterations(n)

    while worklist1.size > 0:
        if iteration >= max_iter:
            raise RuntimeError(
                f"MIS-2 did not converge within {max_iter} iterations; "
                "this indicates a bug in the priority scheme or the graph structure"
            )
        worklist_sizes.append((int(worklist1.size), int(worklist2.size)))
        w1 = worklist1 if use_worklists else all_vertices
        w2 = worklist2 if use_worklists else all_vertices
        undecided_mask1 = packer.is_undecided(T[w1]) if not use_worklists else None

        # ---------------------------------------------------------------- Refresh Row
        prios = _priorities_for(scheme, iteration, w1, n, seed)
        refreshed = packer.pack(prios.astype(packer.dtype), w1)
        if use_worklists:
            T[w1] = refreshed
        else:
            # Without worklists, decided vertices keep their IN/OUT markers.
            T[w1] = np.where(undecided_mask1, refreshed, T[w1])
        traffic.add(
            "refresh_row",
            bytes_read=_INDEX_BYTES * w1.size,
            bytes_written=word_bytes * w1.size,
        )

        # ------------------------------------------------------------- Refresh Column
        slots2, seg2 = B.expand_rows(rowmap, w2)
        neighbor_T = T[entries[slots2]]
        min_nbr = B.segmented_min(neighbor_T, seg2, identity=OUT)
        Mv = np.minimum(min_nbr, T[w2])  # closed neighbourhood: include the vertex itself
        # A minimum of IN means "adjacent to an IN vertex": convert to OUT so the
        # information propagates one more hop in the Decide phase (lines 19-21).
        Mv = np.where(Mv == IN, OUT, Mv)
        # Once a vertex has an IN neighbour its minimum is IN (and converted to OUT)
        # in every subsequent recomputation, so a plain assignment keeps OUT values
        # stable with or without worklists.
        M[w2] = Mv
        traffic.add(
            "refresh_column",
            bytes_read=(
                _INDEX_BYTES * w2.size
                + _ROWMAP_BYTES * w2.size
                + _INDEX_BYTES * slots2.size
                + word_bytes * (slots2.size + w2.size)
            ),
            bytes_written=word_bytes * w2.size,
            gather_bytes=word_bytes * slots2.size,
            coalesced=simd,
        )

        # ------------------------------------------------------------------- Decide
        slots1, seg1 = B.expand_rows(rowmap, w1)
        neighbor_M = M[entries[slots1]]
        Tw1 = T[w1]
        any_out = B.segmented_any_equal(neighbor_M, OUT, seg1) | (M[w1] == OUT)
        all_match = B.segmented_all_equal(neighbor_M, Tw1, seg1) & (M[w1] == Tw1)
        undecided = packer.is_undecided(Tw1)
        to_out = any_out & undecided
        to_in = all_match & undecided & ~to_out
        newT = Tw1.copy()
        newT[to_out] = OUT
        newT[to_in] = IN
        T[w1] = newT
        traffic.add(
            "decide",
            bytes_read=(
                _INDEX_BYTES * w1.size
                + _ROWMAP_BYTES * w1.size
                + _INDEX_BYTES * slots1.size
                + word_bytes * (slots1.size + 2 * w1.size)
            ),
            bytes_written=word_bytes * w1.size,
            gather_bytes=word_bytes * slots1.size,
            coalesced=simd,
        )

        # ------------------------------------------------------------- Compaction
        if use_worklists:
            keep1 = packer.is_undecided(T[worklist1])
            keep2 = M[worklist2] != OUT
            new_w1 = B.stream_compact(worklist1, keep1)
            new_w2 = B.stream_compact(worklist2, keep2)
            traffic.add(
                "compact_worklists",
                bytes_read=word_bytes * (worklist1.size + worklist2.size)
                + _INDEX_BYTES * (worklist1.size + worklist2.size),
                bytes_written=_INDEX_BYTES * (new_w1.size + new_w2.size),
            )
            worklist1, worklist2 = new_w1, new_w2
        else:
            worklist1 = all_vertices[packer.is_undecided(T)]
            worklist2 = all_vertices
        iteration += 1

    in_mask = packer.is_in(T)
    in_set = np.nonzero(in_mask)[0].astype(np.int64)
    return MISResult(
        in_set=in_set,
        in_mask=in_mask,
        iterations=iteration,
        worklist_sizes=worklist_sizes,
        traffic=traffic,
        config=config,
    )

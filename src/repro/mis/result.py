"""Result and configuration containers shared by all MIS algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..parallel.costmodel import TrafficCounter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (partitioned imports us)
    from ..parallel.partitioned import PartitionStats

__all__ = ["MISResult", "MISConfig"]


@dataclass(frozen=True)
class MISConfig:
    """Configuration an MIS run was executed with (recorded on the result)."""

    #: Algorithm family: ``"kk"`` (Algorithm 1), ``"bell"``, ``"luby"``, ``"reference"``.
    algorithm: str
    #: Independence distance (2 for MIS-2, 1 for MIS-1, general k for Bell).
    k: int
    #: Priority scheme name (``fixed`` / ``xor`` / ``xorstar``).
    priority_scheme: str
    #: Whether worklist compaction was used (Section V-B).
    use_worklists: bool
    #: Whether compressed single-word status tuples were used (Section V-C).
    packed_tuples: bool
    #: Whether SIMD/team-level inner loops were (modelled as) used (Section V-D).
    simd: bool
    #: Packed-word width in bits (32 or 64).
    word_bits: int = 64
    #: Seed for the fixed-priority scheme.
    seed: int = 0
    #: Name of the execution backend that ran the kernels (``numpy`` reference,
    #: ``chunked``, ``numba`` …).
    backend: str = "numpy"
    #: Number of intra-graph partitions the run was sharded into (1 = the
    #: unpartitioned kernel; >1 means the partition-parallel driver ran it).
    partitions: int = 1


@dataclass
class MISResult:
    """Output of an MIS computation.

    Attributes
    ----------
    in_set:
        Sorted vertex ids of the independent set.
    in_mask:
        Boolean mask of length ``num_vertices``; ``in_mask[v]`` is True when ``v`` is
        in the set.
    iterations:
        Number of main-loop iterations executed (the quantity reported in the paper's
        Tables I and III).
    worklist_sizes:
        Per-iteration ``(len(worklist1), len(worklist2))`` pairs (for the worklist
        ablation; algorithms without worklists record the full vertex count).
    traffic:
        Memory-traffic counter used by the device cost model.
    config:
        The :class:`MISConfig` the run used.
    """

    in_set: np.ndarray
    in_mask: np.ndarray
    iterations: int
    worklist_sizes: List[Tuple[int, int]] = field(default_factory=list)
    traffic: TrafficCounter = field(default_factory=TrafficCounter)
    config: Optional[MISConfig] = None
    #: Optional wall-clock seconds of the run (filled by the benchmark harness).
    elapsed_seconds: Optional[float] = None
    #: Partitioning measurables when the partition-parallel driver ran
    #: (:class:`~repro.parallel.partitioned.PartitionStats`); None otherwise.
    partition_stats: "Optional[PartitionStats]" = None

    @property
    def size(self) -> int:
        """Number of vertices in the independent set (paper's Table IV metric)."""
        return int(self.in_set.size)

    @property
    def num_vertices(self) -> int:
        return int(self.in_mask.size)

    def __post_init__(self) -> None:
        self.in_set = np.asarray(self.in_set, dtype=np.int64)
        self.in_mask = np.asarray(self.in_mask, dtype=bool)
        if self.in_set.size != int(np.count_nonzero(self.in_mask)):
            raise ValueError("in_set and in_mask disagree on the set size")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        algo = self.config.algorithm if self.config else "?"
        return (
            f"MISResult(algorithm={algo!r}, size={self.size}, "
            f"iterations={self.iterations}, vertices={self.num_vertices})"
        )

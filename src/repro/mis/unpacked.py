"""Algorithm 1 with *uncompressed* status tuples.

This variant exists for the Fig. 2 optimization ladder: it follows the exact phase
structure of Algorithm 1 (per-iteration refreshed priorities, optional worklists,
single Refresh-Column propagation + neighbour-``M`` Decide) but stores the status
tuple as three separate arrays ``(status, priority, id)`` like Bell's algorithm, i.e.
*without* the Section V-C compressed packing. Comparing this variant against
:func:`repro.mis.kk.kk_mis2` isolates the benefit of packed tuples, and comparing it
against :func:`repro.mis.bell.bell_mis` isolates the benefit of refreshed priorities
and worklists.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from ..graph.csr import CSRGraph
from ..hashing.priorities import PriorityScheme, fixed_priorities
from ..hashing.xorshift import hash_iter_vertex
from ..parallel.costmodel import TrafficCounter
from ..parallel.primitives import expand_rows, segmented_lexmin, segmented_sum
from .bell import STATUS_IN, STATUS_OUT, STATUS_UNDECIDED
from .result import MISConfig, MISResult

__all__ = ["mis2_unpacked"]

_INDEX_BYTES = 4
_ROWMAP_BYTES = 8
_TUPLE_WORDS = 3


def mis2_unpacked(
    graph: CSRGraph,
    priority_scheme: Union[str, PriorityScheme] = PriorityScheme.XORSTAR,
    use_worklists: bool = False,
    word_bits: int = 64,
    seed: int = 0,
) -> MISResult:
    """Distance-2 MIS with Algorithm 1's structure but 3-element (unpacked) tuples.

    See :func:`repro.mis.kk.kk_mis2` for the parameter semantics; the only difference
    is the tuple representation (and therefore the memory traffic and the Python
    gather cost).
    """
    scheme = PriorityScheme.coerce(priority_scheme)
    n = graph.num_vertices
    config = MISConfig(
        algorithm="kk-unpacked",
        k=2,
        priority_scheme=scheme.value,
        use_worklists=bool(use_worklists),
        packed_tuples=False,
        simd=False,
        word_bits=word_bits,
        seed=seed,
    )
    traffic = TrafficCounter()
    if n == 0:
        return MISResult(
            in_set=np.zeros(0, dtype=np.int64),
            in_mask=np.zeros(0, dtype=bool),
            iterations=0,
            traffic=traffic,
            config=config,
        )

    rowmap = graph.rowmap
    entries = graph.entries
    word_bytes = 4 if word_bits == 32 else 8
    tuple_bytes = _TUPLE_WORDS * word_bytes
    all_vertices = np.arange(n, dtype=np.int64)

    t_status = np.full(n, STATUS_UNDECIDED, dtype=np.uint8)
    t_prio = np.zeros(n, dtype=np.uint64)
    t_id = all_vertices.copy()
    m_status = np.full(n, STATUS_OUT, dtype=np.uint8)
    m_prio = np.zeros(n, dtype=np.uint64)
    m_id = all_vertices.copy()

    worklist1 = all_vertices.copy()
    worklist2 = all_vertices.copy()
    worklist_sizes = []
    iteration = 0
    max_iter = 20 * max(4, int(math.log2(n + 2))) + 64
    prio_identity = np.uint64(np.iinfo(np.uint64).max)
    id_identity = np.int64(np.iinfo(np.int64).max)

    while worklist1.size > 0:
        if iteration >= max_iter:
            raise RuntimeError(f"unpacked MIS-2 did not converge within {max_iter} iterations")
        worklist_sizes.append((int(worklist1.size), int(worklist2.size)))
        w1 = worklist1 if use_worklists else all_vertices
        w2 = worklist2 if use_worklists else all_vertices

        # Refresh Row ------------------------------------------------------------
        if scheme is PriorityScheme.FIXED:
            fresh = fixed_priorities(n, seed=seed)[w1]
        else:
            fresh = hash_iter_vertex(iteration, w1, star=(scheme is PriorityScheme.XORSTAR))
        undecided_w1 = t_status[w1] == STATUS_UNDECIDED
        t_prio[w1] = np.where(undecided_w1, fresh, t_prio[w1])
        traffic.add(
            "refresh_row",
            bytes_read=_INDEX_BYTES * w1.size,
            bytes_written=tuple_bytes * w1.size,
        )

        # Refresh Column ---------------------------------------------------------
        slots2, seg2 = expand_rows(rowmap, w2)
        nbr = entries[slots2].astype(np.int64)
        red_s, red_p, red_i = segmented_lexmin(
            [t_status[nbr], t_prio[nbr], t_id[nbr]],
            seg2,
            [STATUS_OUT, prio_identity, id_identity],
        )
        own_s, own_p, own_i = t_status[w2], t_prio[w2], t_id[w2]
        better_own = (own_s < red_s) | (
            (own_s == red_s) & ((own_p < red_p) | ((own_p == red_p) & (own_i < red_i)))
        )
        new_s = np.where(better_own, own_s, red_s)
        new_p = np.where(better_own, own_p, red_p)
        new_i = np.where(better_own, own_i, red_i)
        # Minimum of IN means "adjacent to an IN vertex": convert to OUT.
        saw_in = new_s == STATUS_IN
        new_s = np.where(saw_in, STATUS_OUT, new_s)
        # Once a vertex has an IN neighbour its minimum recomputes to IN (converted to
        # OUT) in every later iteration, so plain assignment keeps OUT values stable
        # with or without worklists.
        m_status[w2], m_prio[w2], m_id[w2] = new_s, new_p, new_i
        traffic.add(
            "refresh_column",
            bytes_read=(
                _INDEX_BYTES * w2.size
                + _ROWMAP_BYTES * w2.size
                + _INDEX_BYTES * slots2.size
                + tuple_bytes * (slots2.size + w2.size)
            ),
            bytes_written=tuple_bytes * w2.size,
            gather_bytes=tuple_bytes * slots2.size,
            coalesced=False,
        )

        # Decide -----------------------------------------------------------------
        slots1, seg1 = expand_rows(rowmap, w1)
        nbr1 = entries[slots1].astype(np.int64)
        nbr_m_status = m_status[nbr1]
        nbr_m_prio = m_prio[nbr1]
        nbr_m_id = m_id[nbr1]
        lens1 = np.diff(seg1)
        own_status = t_status[w1]
        own_prio = t_prio[w1]
        own_id = t_id[w1]
        # exists neighbour with M == OUT (closed neighbourhood includes the vertex).
        any_out = (segmented_sum((nbr_m_status == STATUS_OUT).astype(np.int64), seg1) > 0) | (
            m_status[w1] == STATUS_OUT
        )
        # forall neighbours: M == own tuple.
        matches = (
            (nbr_m_status == np.repeat(own_status, lens1))
            & (nbr_m_prio == np.repeat(own_prio, lens1))
            & (nbr_m_id == np.repeat(own_id, lens1))
        ).astype(np.int64)
        all_match = (segmented_sum(matches, seg1) == lens1) & (
            (m_status[w1] == own_status) & (m_prio[w1] == own_prio) & (m_id[w1] == own_id)
        )
        undecided = own_status == STATUS_UNDECIDED
        to_out = any_out & undecided
        to_in = all_match & undecided & ~to_out
        upd_status = own_status.copy()
        upd_status[to_out] = STATUS_OUT
        upd_status[to_in] = STATUS_IN
        t_status[w1] = upd_status
        traffic.add(
            "decide",
            bytes_read=(
                _INDEX_BYTES * w1.size
                + _ROWMAP_BYTES * w1.size
                + _INDEX_BYTES * slots1.size
                + tuple_bytes * (slots1.size + 2 * w1.size)
            ),
            bytes_written=tuple_bytes * w1.size,
            gather_bytes=tuple_bytes * slots1.size,
            coalesced=False,
        )

        # Compaction -------------------------------------------------------------
        if use_worklists:
            keep1 = t_status[worklist1] == STATUS_UNDECIDED
            keep2 = m_status[worklist2] != STATUS_OUT
            new_w1 = worklist1[keep1]
            new_w2 = worklist2[keep2]
            traffic.add(
                "compact_worklists",
                bytes_read=(tuple_bytes + _INDEX_BYTES) * (worklist1.size + worklist2.size),
                bytes_written=_INDEX_BYTES * (new_w1.size + new_w2.size),
            )
            worklist1, worklist2 = new_w1, new_w2
        else:
            worklist1 = all_vertices[t_status == STATUS_UNDECIDED]
            worklist2 = all_vertices
        iteration += 1

    in_mask = t_status == STATUS_IN
    return MISResult(
        in_set=np.nonzero(in_mask)[0].astype(np.int64),
        in_mask=in_mask,
        iterations=iteration,
        worklist_sizes=worklist_sizes,
        traffic=traffic,
        config=config,
    )

"""Maximal independent set algorithms.

This package contains the paper's primary contribution — the deterministic, parallel
distance-2 maximal independent set algorithm (Algorithm 1, :func:`kk_mis2`) — together
with the baselines it is evaluated against and the verification machinery:

* :func:`kk_mis2` — Algorithm 1 with the four optimizations of Section V
  (per-iteration xorshift* priorities, worklists, compressed status tuples,
  SIMD/team-parallel inner loops) individually toggleable.
* :func:`bell_mis` — the Bell/Dalton/Olson MIS-k algorithm used by CUSP and ViennaCL
  (fixed priorities, no worklists, uncompressed tuples); the paper's baseline.
* :func:`luby_mis1` — Luby's Monte Carlo Algorithm A for MIS-1, the distance-1
  analogue of Algorithm 1 used in the theoretical analysis (Section IV).
* :func:`mis2_reference` — a pure-Python loop implementation of Algorithm 1 with
  identical semantics to :func:`kk_mis2`, used to validate the vectorised kernels.
* :func:`verify_mis` / :func:`is_independent_set` / :func:`is_maximal` — distance-k
  verification used throughout the tests.
* :func:`mis2_via_square` — the Lemma IV.2 reduction (MIS-1 of ``G^2`` is an MIS-2
  of ``G``).
* :data:`OPTIMIZATION_LEVELS` / :func:`run_optimization_level` — the cumulative
  optimization ladder used to regenerate Fig. 2.
"""

from __future__ import annotations

from .result import MISResult, MISConfig
from .kk import kk_mis2
from .bell import bell_mis
from .luby import luby_mis1
from .reference import mis2_reference
from .verify import (
    is_independent_set,
    is_maximal,
    verify_mis,
    independence_violations,
)
from .reduction import mis2_via_square, mis1_on_square_equals_mis2
from .variants import (
    OptimizationLevel,
    OPTIMIZATION_LEVELS,
    run_optimization_level,
)
from .trace import trace_mis2, IterationSnapshot

__all__ = [
    "MISResult",
    "MISConfig",
    "kk_mis2",
    "bell_mis",
    "luby_mis1",
    "mis2_reference",
    "is_independent_set",
    "is_maximal",
    "verify_mis",
    "independence_violations",
    "mis2_via_square",
    "mis1_on_square_equals_mis2",
    "OptimizationLevel",
    "OPTIMIZATION_LEVELS",
    "run_optimization_level",
    "trace_mis2",
    "IterationSnapshot",
]

"""The Bell/Dalton/Olson MIS-k algorithm — the baseline the paper compares against.

Bell, Dalton and Olson (SISC 2012) compute a distance-k maximal independent set
directly (without forming ``G^k``): every vertex carries an uncompressed 3-element
status tuple ``(status, priority, id)`` with ``IN < UNDECIDED < OUT`` ordering;
each round propagates the minimum tuple ``k`` hops through the graph and then decides
vertices whose own tuple is the radius-``k`` minimum (-> IN) or whose radius-``k``
minimum is an IN vertex (-> OUT). The random priorities are chosen **once** and reused
every round, every vertex is processed in every round (no worklists), and the tuple is
stored as three separate words — exactly the combination the paper's Fig. 2 uses as
its baseline, and what the CUSP and ViennaCL libraries implement.

This implementation is vectorised the same way as :func:`repro.mis.kk.kk_mis2` so that
wall-clock comparisons between the two measure the algorithmic differences (priorities,
worklists, packing) rather than implementation quality.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from ..graph.csr import CSRGraph
from ..hashing.priorities import PriorityScheme, fixed_priorities
from ..hashing.xorshift import hash_iter_vertex
from ..parallel.backends import ExecutionBackend, resolve_backend
from ..parallel.costmodel import TrafficCounter
from .result import MISConfig, MISResult

__all__ = ["bell_mis", "STATUS_IN", "STATUS_UNDECIDED", "STATUS_OUT"]

#: Status encoding of the uncompressed tuples; the ordering IN < UNDECIDED < OUT is
#: what makes the lexicographic minimum propagate IN vertices and suppress OUT ones.
STATUS_IN = np.uint8(0)
STATUS_UNDECIDED = np.uint8(1)
STATUS_OUT = np.uint8(2)

_INDEX_BYTES = 4
_ROWMAP_BYTES = 8
#: An uncompressed tuple occupies three words (status, priority, id); the paper's
#: Section V-C counts this as the 3x storage/traffic the packed representation removes.
_TUPLE_WORDS = 3


def _max_rounds(num_vertices: int) -> int:
    return 20 * max(4, int(math.log2(num_vertices + 2))) + 64


def bell_mis(
    graph: CSRGraph,
    k: int = 2,
    priority_scheme: Union[str, PriorityScheme] = PriorityScheme.FIXED,
    word_bits: int = 64,
    seed: int = 0,
    backend: "Optional[str | ExecutionBackend]" = None,
) -> MISResult:
    """Compute a distance-``k`` maximal independent set with Bell's algorithm.

    Parameters
    ----------
    graph:
        Undirected input graph (vertices are implicitly adjacent to themselves).
    k:
        Independence distance (the paper and the libraries use ``k = 2``).
    priority_scheme:
        ``"fixed"`` (default — Bell's choice and what CUSP/ViennaCL do) or one of the
        per-round hash schemes for experimentation.
    word_bits:
        Word width used only for traffic accounting (the priorities are 64-bit).
    seed:
        Seed of the fixed-priority scheme.
    backend:
        Execution backend (name or instance); ``None`` uses the default.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    scheme = PriorityScheme.coerce(priority_scheme)
    B = resolve_backend(backend)
    n = graph.num_vertices
    config = MISConfig(
        algorithm="bell",
        k=k,
        priority_scheme=scheme.value,
        use_worklists=False,
        packed_tuples=False,
        simd=False,
        word_bits=word_bits,
        seed=seed,
        backend=B.name,
    )
    traffic = TrafficCounter(backend=B.name)
    if n == 0:
        return MISResult(
            in_set=np.zeros(0, dtype=np.int64),
            in_mask=np.zeros(0, dtype=bool),
            iterations=0,
            traffic=traffic,
            config=config,
        )

    rowmap = graph.rowmap
    entries = graph.entries
    word_bytes = 4 if word_bits == 32 else 8
    tuple_bytes = _TUPLE_WORDS * word_bytes

    all_vertices = np.arange(n, dtype=np.int64)
    vertex_ids = all_vertices.astype(np.int64)
    status = np.full(n, STATUS_UNDECIDED, dtype=np.uint8)
    priority = fixed_priorities(n, seed=seed)

    # Pre-expand the full-vertex CSR structure once: Bell processes every vertex in
    # every round, so the expansion never changes.
    slots, seg = B.expand_rows(rowmap, all_vertices)
    neighbor_ids = entries[slots].astype(np.int64)

    worklist_sizes = []
    rounds = 0
    max_rounds = _max_rounds(n)
    id_identity = np.int64(np.iinfo(np.int64).max)
    prio_identity = np.uint64(np.iinfo(np.uint64).max)

    while np.any(status == STATUS_UNDECIDED):
        if rounds >= max_rounds:
            raise RuntimeError(f"Bell MIS-{k} did not converge within {max_rounds} rounds")
        worklist_sizes.append((n, n))

        if scheme is not PriorityScheme.FIXED:
            fresh = hash_iter_vertex(
                rounds, all_vertices, star=(scheme is PriorityScheme.XORSTAR)
            )
            priority = np.where(status == STATUS_UNDECIDED, fresh, priority)
            traffic.add(
                "bell_refresh_priorities",
                bytes_read=_INDEX_BYTES * n,
                bytes_written=word_bytes * n,
            )

        # k propagation steps: after step j every vertex knows the lexicographic
        # minimum tuple within its closed radius-j neighbourhood.
        min_status, min_prio, min_id = status, priority, vertex_ids
        for _ in range(k):
            s_vals = min_status[neighbor_ids]
            p_vals = min_prio[neighbor_ids]
            i_vals = min_id[neighbor_ids]
            red_s, red_p, red_i = B.segmented_lexmin(
                [s_vals, p_vals, i_vals],
                seg,
                [STATUS_OUT, prio_identity, id_identity],
            )
            # Closed neighbourhood: fold in the vertex's own current minimum tuple.
            better_own = (min_status < red_s) | (
                (min_status == red_s)
                & ((min_prio < red_p) | ((min_prio == red_p) & (min_id < red_i)))
            )
            new_s = np.where(better_own, min_status, red_s)
            new_p = np.where(better_own, min_prio, red_p)
            new_i = np.where(better_own, min_id, red_i)
            min_status, min_prio, min_id = new_s, new_p, new_i
            traffic.add(
                "bell_propagate",
                bytes_read=(
                    _ROWMAP_BYTES * n
                    + _INDEX_BYTES * slots.size
                    + tuple_bytes * (slots.size + n)
                ),
                bytes_written=tuple_bytes * n,
                gather_bytes=tuple_bytes * slots.size,
                coalesced=False,
            )

        # Decision: undecided vertices whose own tuple is the radius-k minimum join
        # the set; undecided vertices whose radius-k minimum is an IN vertex leave.
        undecided = status == STATUS_UNDECIDED
        own_is_min = (
            (min_status == STATUS_UNDECIDED)
            & (min_prio == priority)
            & (min_id == vertex_ids)
        )
        saw_in = min_status == STATUS_IN
        status = np.where(undecided & own_is_min, STATUS_IN, status)
        status = np.where(undecided & ~own_is_min & saw_in, STATUS_OUT, status)
        traffic.add(
            "bell_decide",
            bytes_read=tuple_bytes * 2 * n,
            bytes_written=tuple_bytes * n,
        )
        rounds += 1

    in_mask = status == STATUS_IN
    in_set = np.nonzero(in_mask)[0].astype(np.int64)
    return MISResult(
        in_set=in_set,
        in_mask=in_mask,
        iterations=rounds,
        worklist_sizes=worklist_sizes,
        traffic=traffic,
        config=config,
    )

"""Pure-Python reference implementation of Algorithm 1.

This mirrors :func:`repro.mis.kk.kk_mis2` line by line — same packed tuples, same
hash, same phase ordering — but executes each "parallel-for" as an explicit Python
loop over the worklists. It exists for two reasons:

* **Validation** — the determinism tests assert that the vectorised kernel and this
  loop implementation produce bit-identical results on every graph, which pins down
  the bulk-synchronous semantics of the NumPy formulation.
* **Tracing** — the loop form makes it easy to record the per-phase snapshots used to
  regenerate the paper's Fig. 1 worked example (see :mod:`repro.mis.trace`).

It is intentionally slow; do not use it on large graphs.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Union

import numpy as np

from ..graph.csr import CSRGraph
from ..hashing.packing import TuplePacking
from ..hashing.priorities import PriorityScheme, fixed_priorities
from ..hashing.xorshift import hash_iter_vertex
from .result import MISConfig, MISResult

__all__ = ["mis2_reference"]


def mis2_reference(
    graph: CSRGraph,
    priority_scheme: Union[str, PriorityScheme] = PriorityScheme.XORSTAR,
    word_bits: int = 64,
    seed: int = 0,
    phase_callback: Optional[Callable[[str, int, np.ndarray, np.ndarray], None]] = None,
) -> MISResult:
    """Loop-based reference MIS-2 with semantics identical to :func:`kk_mis2`.

    Parameters
    ----------
    graph, priority_scheme, word_bits, seed:
        As in :func:`repro.mis.kk.kk_mis2`.
    phase_callback:
        Optional ``callback(phase_name, iteration, T_copy, M_copy)`` invoked after
        each of the three phases; used by the Fig. 1 tracer.
    """
    scheme = PriorityScheme.coerce(priority_scheme)
    n = graph.num_vertices
    config = MISConfig(
        algorithm="reference",
        k=2,
        priority_scheme=scheme.value,
        use_worklists=True,
        packed_tuples=True,
        simd=False,
        word_bits=word_bits,
        seed=seed,
    )
    if n == 0:
        return MISResult(
            in_set=np.zeros(0, dtype=np.int64),
            in_mask=np.zeros(0, dtype=bool),
            iterations=0,
            config=config,
        )

    packer = TuplePacking(n, word_bits=word_bits)
    IN = packer.in_value
    OUT = packer.out_value
    rowmap, entries = graph.rowmap, graph.entries

    T = packer.pack(np.zeros(n, dtype=packer.dtype), np.arange(n, dtype=np.int64))
    M = np.full(n, OUT, dtype=packer.dtype)
    worklist1 = list(range(n))
    worklist2 = list(range(n))
    fixed = fixed_priorities(n, seed=seed) if scheme is PriorityScheme.FIXED else None

    iteration = 0
    max_iter = 20 * max(4, int(math.log2(n + 2))) + 64
    worklist_sizes: List[tuple] = []

    while worklist1:
        if iteration >= max_iter:
            raise RuntimeError("reference MIS-2 did not converge")
        worklist_sizes.append((len(worklist1), len(worklist2)))

        # Refresh Row -------------------------------------------------------------
        for v in worklist1:
            if scheme is PriorityScheme.FIXED:
                prio = fixed[v]
            else:
                prio = hash_iter_vertex(
                    iteration, np.asarray([v], dtype=np.int64),
                    star=(scheme is PriorityScheme.XORSTAR),
                )[0]
            T[v] = packer.pack(np.asarray([prio], dtype=packer.dtype),
                               np.asarray([v], dtype=np.int64))[0]
        if phase_callback is not None:
            phase_callback("refresh_row", iteration, T.copy(), M.copy())

        # Refresh Column ----------------------------------------------------------
        new_M = {}
        for v in worklist2:
            best = T[v]
            for w in entries[rowmap[v]: rowmap[v + 1]]:
                if T[w] < best:
                    best = T[w]
            if best == IN:
                best = OUT
            new_M[v] = best
        for v, val in new_M.items():
            M[v] = val
        if phase_callback is not None:
            phase_callback("refresh_column", iteration, T.copy(), M.copy())

        # Decide ------------------------------------------------------------------
        new_T = {}
        for v in worklist1:
            nbrs = list(entries[rowmap[v]: rowmap[v + 1]]) + [v]
            if any(M[w] == OUT for w in nbrs):
                new_T[v] = OUT
            elif all(M[w] == T[v] for w in nbrs):
                new_T[v] = IN
        for v, val in new_T.items():
            T[v] = val
        if phase_callback is not None:
            phase_callback("decide", iteration, T.copy(), M.copy())

        # Compaction --------------------------------------------------------------
        worklist1 = [v for v in worklist1 if packer.is_undecided(T[v])]
        worklist2 = [v for v in worklist2 if M[v] != OUT]
        iteration += 1

    in_mask = np.asarray(packer.is_in(T), dtype=bool)
    return MISResult(
        in_set=np.nonzero(in_mask)[0].astype(np.int64),
        in_mask=in_mask,
        iterations=iteration,
        worklist_sizes=worklist_sizes,
        config=config,
    )

"""Luby's Monte Carlo Algorithm A for distance-1 maximal independent sets.

Luby's algorithm is the distance-1 analogue of the paper's Algorithm 1 (Section IV
uses this relationship to bound the expected iteration count): in every round each
undecided vertex draws a fresh random priority, a vertex whose priority is the unique
minimum of its closed undecided neighbourhood joins the set, and neighbours of newly
selected vertices are removed. With the deterministic xorshift* hash as the priority
source the algorithm is deterministic, and running it on the boolean square ``G^2``
yields an MIS-2 of ``G`` (Lemma IV.2), which the test-suite uses as an independent
cross-check of Algorithm 1.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from ..graph.csr import CSRGraph
from ..hashing.priorities import PriorityScheme, fixed_priorities
from ..hashing.xorshift import hash_iter_vertex
from ..parallel.backends import ExecutionBackend, resolve_backend
from ..parallel.costmodel import TrafficCounter
from .result import MISConfig, MISResult

__all__ = ["luby_mis1"]

_UNDECIDED = np.uint8(1)
_IN = np.uint8(0)
_OUT = np.uint8(2)


def luby_mis1(
    graph: CSRGraph,
    priority_scheme: Union[str, PriorityScheme] = PriorityScheme.XORSTAR,
    seed: int = 0,
    backend: "Optional[str | ExecutionBackend]" = None,
    partitions=None,
    resident: bool = True,
    changed_deltas: bool = True,
    overlap: bool = True,
) -> MISResult:
    """Compute a distance-1 maximal independent set with Luby's Algorithm A.

    Parameters
    ----------
    graph:
        Undirected input graph.
    priority_scheme:
        ``"xorstar"`` (default) or ``"xor"`` draw fresh priorities each round (Luby's
        scheme); ``"fixed"`` keeps one random permutation, which turns the method into
        the greedy ECL-MIS-style algorithm.
    seed:
        Seed for the fixed-priority scheme.
    backend:
        Execution backend (name or instance); ``None`` uses the default.
    partitions:
        When not ``None``, shard the run within the graph (part count, label
        array or layout); the partition-parallel driver is bit-identical to
        the unpartitioned kernel.
    resident:
        Only meaningful with ``partitions``: rank-resident execution
        (default) vs the re-ship-everything baseline; results are
        bit-identical either way.
    changed_deltas:
        Only meaningful with ``partitions``: changed-only halo deltas with
        once-per-round worklist shipment (default) vs the full-halo wire
        format; results are bit-identical either way.
    overlap:
        Only meaningful with ``partitions`` and ``resident=True``: the
        overlapped boundary/interior schedule (default) vs the barrier
        schedule; results and shipped-byte counts are identical either way.
    """
    if partitions is not None:
        from ..parallel.partitioned import partitioned_luby_mis1

        return partitioned_luby_mis1(
            graph,
            partitions,
            priority_scheme=priority_scheme,
            seed=seed,
            backend=backend,
            resident=resident,
            changed_deltas=changed_deltas,
            overlap=overlap,
        )
    scheme = PriorityScheme.coerce(priority_scheme)
    B = resolve_backend(backend)
    n = graph.num_vertices
    config = MISConfig(
        algorithm="luby",
        k=1,
        priority_scheme=scheme.value,
        use_worklists=True,
        packed_tuples=False,
        simd=False,
        seed=seed,
        backend=B.name,
    )
    traffic = TrafficCounter(backend=B.name)
    if n == 0:
        return MISResult(
            in_set=np.zeros(0, dtype=np.int64),
            in_mask=np.zeros(0, dtype=bool),
            iterations=0,
            traffic=traffic,
            config=config,
        )

    rowmap, entries = graph.rowmap, graph.entries
    all_vertices = np.arange(n, dtype=np.int64)
    status = np.full(n, _UNDECIDED, dtype=np.uint8)
    priority = np.zeros(n, dtype=np.uint64)
    rounds = 0
    max_rounds = 20 * max(4, int(math.log2(n + 2))) + 64
    prio_max = np.uint64(np.iinfo(np.uint64).max)
    id_max = np.int64(np.iinfo(np.int64).max)

    while np.any(status == _UNDECIDED):
        if rounds >= max_rounds:
            raise RuntimeError(f"Luby MIS-1 did not converge within {max_rounds} rounds")
        undecided = status == _UNDECIDED
        cand = B.stream_compact(all_vertices, undecided)
        if scheme is PriorityScheme.FIXED:
            priority[cand] = fixed_priorities(n, seed=seed)[cand]
        else:
            priority[cand] = hash_iter_vertex(
                rounds, cand, star=(scheme is PriorityScheme.XORSTAR)
            )

        # A candidate joins the set when its (priority, id) is the unique minimum of
        # the undecided part of its closed neighbourhood.
        slots, seg = B.expand_rows(rowmap, cand)
        nbr = entries[slots].astype(np.int64)
        nbr_undecided = status[nbr] == _UNDECIDED
        nbr_prio = np.where(nbr_undecided, priority[nbr], prio_max)
        nbr_id = np.where(nbr_undecided, nbr, id_max)
        min_p, min_i = B.segmented_lexmin([nbr_prio, nbr_id], seg, [prio_max, id_max])
        own_better = (priority[cand] < min_p) | (
            (priority[cand] == min_p) & (cand < min_i)
        )
        winners = cand[own_better]
        status[winners] = _IN
        traffic.add(
            "luby_select",
            bytes_read=8 * cand.size + 4 * slots.size + 8 * slots.size,
            bytes_written=cand.size,
        )

        # Remove the neighbours of the new IN vertices.
        if winners.size:
            wslots, wseg = B.expand_rows(rowmap, winners)
            losers = entries[wslots].astype(np.int64)
            still_undecided = status[losers] == _UNDECIDED
            status[losers[still_undecided]] = _OUT
            traffic.add(
                "luby_remove",
                bytes_read=4 * wslots.size + winners.size,
                bytes_written=int(np.count_nonzero(still_undecided)),
            )
        rounds += 1

    in_mask = status == _IN
    return MISResult(
        in_set=np.nonzero(in_mask)[0].astype(np.int64),
        in_mask=in_mask,
        iterations=rounds,
        traffic=traffic,
        config=config,
    )

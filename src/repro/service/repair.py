"""Localized repair kernels for the GraphService's dynamic graphs.

The repair invariant comes from pyamg's *serial* maximal-independent-set
kernel (SNIPPETS Snippet 3): with a fixed total priority order over the
vertices, a vertex's greedy status is a pure function of the statuses of its
smaller-key neighbourhood — so after a mutation, only vertices whose
neighbourhood changed, plus the larger-key closure of any status that flips,
can differ from the previous answer. Processing the dirty frontier in
ascending key order therefore converges to *exactly* the from-scratch
fixpoint: repair is bit-identical to full recompute, which the Hypothesis
suite pins for every mutation sequence across every backend x partition
count.

Two query kinds are repairable:

**MIS-2 under the fixed priority scheme.** ``kk_mis2(priority_scheme="fixed")``
computes the unique greedy fixpoint of the total order ``key(v) =
(fixed_priority(v) << b) | (v + 1)`` (the paper's packed tuple): ``v`` is IN
iff no vertex within distance 2 with a smaller key is IN. The per-iteration
hash schemes (``xorstar``/``xor``) entangle every vertex's fate with the
global iteration count and are *not* locally repairable — the service's
repairable MIS queries use the fixed scheme for exactly this reason.

**Order-greedy coloring.** ``color(v)`` = smallest color unused by ``v``'s
smaller-key neighbours — the sequential greedy coloring along the same key
order. (The paper's speculative coloring kernel resolves conflicts round by
round and is not the fixpoint of any per-vertex local rule, so it cannot be
repaired locally; the service's repairable coloring pins the order-greedy
semantics instead.)

Both repairs share one engine: a min-heap worklist drained in ascending key
order. When a popped vertex's recomputed value differs from its current one,
every *larger*-key dependent re-enters the worklist; dependencies only point
from larger to smaller keys, so each settled vertex is final and the drain
terminates. ``budget`` bounds the worklist drain — a repair that touches more
vertices than the caller's crossover threshold returns ``None`` so the
service falls back to full recompute instead of crawling through a
near-global repair one vertex at a time.

The key order is only stable while the vertex universe is: the packed-tuple
id width ``b = ceil(log2(|V| + 2))`` truncates priorities differently when
the vertex count crosses a power of two, and removing vertices renumbers the
survivors. Those *structural* mutations invalidate every cached result —
the service detects them and recomputes from scratch.
"""

from __future__ import annotations

import heapq
from typing import Optional, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..hashing.packing import TuplePacking
from ..hashing.priorities import fixed_priorities

__all__ = [
    "mis_keys",
    "serial_mis2_mask",
    "repair_mis2",
    "ordered_color",
    "repair_ordered_color",
]


def mis_keys(num_vertices: int, seed: int = 0, word_bits: int = 64) -> np.ndarray:
    """The fixed-scheme packed priority keys ``kk_mis2`` orders vertices by.

    Bit-compatible with the kernel: ``(truncated fixed_priority << b) | (v+1)``
    via :class:`~repro.hashing.packing.TuplePacking` — the key array *is* the
    initial ``T`` of a fixed-scheme run, so the greedy fixpoint the repair
    engine maintains is the kernel's own total order.
    """
    if num_vertices == 0:
        return np.zeros(0, dtype=np.uint64 if word_bits == 64 else np.uint32)
    packer = TuplePacking(num_vertices, word_bits=word_bits)
    prios = fixed_priorities(num_vertices, seed=seed).astype(packer.dtype)
    return packer.pack(prios, np.arange(num_vertices, dtype=np.int64))


def serial_mis2_mask(graph: CSRGraph, keys: np.ndarray) -> np.ndarray:
    """From-scratch greedy distance-2 MIS along ascending ``keys``.

    The serial reference for the repair engine (pyamg's locality rule in its
    plainest form): walk vertices in key order, take every vertex not yet
    within distance 2 of a taken one. Bit-identical to
    ``kk_mis2(priority_scheme="fixed")`` — the parallel kernel computes the
    same unique fixpoint — which the service's tests assert directly.
    """
    n = graph.num_vertices
    in_mask = np.zeros(n, dtype=bool)
    if n == 0:
        return in_mask
    rowmap, entries = graph.rowmap, graph.entries
    blocked = np.zeros(n, dtype=bool)
    for v in np.argsort(keys, kind="stable"):
        if blocked[v]:
            continue
        in_mask[v] = True
        blocked[v] = True
        nbrs = entries[rowmap[v]: rowmap[v + 1]]
        blocked[nbrs] = True
        for u in nbrs:
            blocked[entries[rowmap[u]: rowmap[u + 1]]] = True
    return in_mask


def _neighbors(rowmap: np.ndarray, entries: np.ndarray, v: int) -> np.ndarray:
    return entries[rowmap[v]: rowmap[v + 1]]


def _has_smaller_in_d2(
    rowmap: np.ndarray,
    entries: np.ndarray,
    keys: np.ndarray,
    in_mask: np.ndarray,
    v: int,
) -> bool:
    """Any IN vertex (other than ``v``) within distance 2 with a smaller key?"""
    kv = keys[v]
    nbrs = _neighbors(rowmap, entries, v)
    if nbrs.size == 0:
        return False
    if bool(np.any(in_mask[nbrs] & (keys[nbrs] < kv))):
        return True
    for u in nbrs:
        two = _neighbors(rowmap, entries, u)
        hit = in_mask[two] & (keys[two] < kv) & (two != v)
        if bool(np.any(hit)):
            return True
    return False


def _d2_larger(
    rowmap: np.ndarray, entries: np.ndarray, keys: np.ndarray, v: int
) -> np.ndarray:
    """Distance-<=2 neighbours of ``v`` with a larger key (the dependents)."""
    nbrs = _neighbors(rowmap, entries, v)
    if nbrs.size == 0:
        return nbrs
    hops = [nbrs] + [_neighbors(rowmap, entries, u) for u in nbrs]
    d2 = np.unique(np.concatenate(hops))
    return d2[(keys[d2] > keys[v]) & (d2 != v)]


def repair_mis2(
    graph: CSRGraph,
    keys: np.ndarray,
    prev_mask: np.ndarray,
    dirty: np.ndarray,
    budget: Optional[int] = None,
) -> Optional[Tuple[np.ndarray, int]]:
    """Repair a greedy MIS-2 mask after a mutation; ``None`` past ``budget``.

    ``prev_mask`` is the pre-mutation fixpoint *re-indexed to the new graph*
    (appended vertices enter as False and dirty); ``dirty`` seeds the
    worklist with every vertex whose distance-2 neighbourhood changed.
    Returns the repaired mask — bit-identical to :func:`serial_mis2_mask`
    of the new graph — and the number of vertices evaluated.
    """
    in_mask = prev_mask.copy()
    rowmap, entries = graph.rowmap, graph.entries
    seeds = np.unique(np.asarray(dirty, dtype=np.int64))
    pending = {int(v) for v in seeds}
    heap = [(int(keys[v]), int(v)) for v in seeds]
    heapq.heapify(heap)
    touched = 0
    while heap:
        _, v = heapq.heappop(heap)
        if v not in pending:
            continue
        pending.discard(v)
        touched += 1
        if budget is not None and touched > budget:
            return None
        should = not _has_smaller_in_d2(rowmap, entries, keys, in_mask, v)
        if bool(in_mask[v]) != should:
            in_mask[v] = should
            for w in _d2_larger(rowmap, entries, keys, v):
                w = int(w)
                if w not in pending:
                    pending.add(w)
                    heapq.heappush(heap, (int(keys[w]), w))
    return in_mask, touched


def ordered_color(graph: CSRGraph, keys: np.ndarray) -> np.ndarray:
    """From-scratch order-greedy coloring along ascending ``keys``.

    ``color(v)`` = smallest color not used by a smaller-key neighbour — the
    unique fixpoint of a distance-1 local rule, hence locally repairable.
    Proper by construction (adjacent vertices never share a color: the later
    one excludes the earlier one's color).
    """
    n = graph.num_vertices
    colors = np.full(n, -1, dtype=np.int64)
    rowmap, entries = graph.rowmap, graph.entries
    for v in np.argsort(keys, kind="stable"):
        nbr_colors = colors[_neighbors(rowmap, entries, v)]
        nbr_colors = nbr_colors[nbr_colors >= 0]
        colors[v] = _mex(nbr_colors)
    return colors


def _mex(values: np.ndarray) -> int:
    """Smallest non-negative integer missing from ``values``."""
    if values.size == 0:
        return 0
    present = np.zeros(values.size + 1, dtype=bool)
    small = values[values <= values.size]
    present[small] = True
    return int(np.argmin(present))


def repair_ordered_color(
    graph: CSRGraph,
    keys: np.ndarray,
    prev_colors: np.ndarray,
    dirty: np.ndarray,
    budget: Optional[int] = None,
) -> Optional[Tuple[np.ndarray, int]]:
    """Repair an order-greedy coloring after a mutation; ``None`` past budget.

    Distance-1 analogue of :func:`repair_mis2`: ``dirty`` seeds with the
    endpoints of every changed edge (plus appended vertices); a vertex whose
    color flips re-enqueues its larger-key neighbours. Bit-identical to
    :func:`ordered_color` of the new graph.
    """
    colors = prev_colors.copy()
    rowmap, entries = graph.rowmap, graph.entries
    seeds = np.unique(np.asarray(dirty, dtype=np.int64))
    pending = {int(v) for v in seeds}
    heap = [(int(keys[v]), int(v)) for v in seeds]
    heapq.heapify(heap)
    touched = 0
    while heap:
        _, v = heapq.heappop(heap)
        if v not in pending:
            continue
        pending.discard(v)
        touched += 1
        if budget is not None and touched > budget:
            return None
        nbrs = _neighbors(rowmap, entries, v)
        smaller = nbrs[keys[nbrs] < keys[v]]
        want = _mex(colors[smaller])
        if int(colors[v]) != want:
            colors[v] = want
            for w in nbrs[keys[nbrs] > keys[v]]:
                w = int(w)
                if w not in pending:
                    pending.add(w)
                    heapq.heappush(heap, (int(keys[w]), w))
    return colors, touched

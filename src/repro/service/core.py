"""The always-on :class:`GraphService`: resident graphs, batched queries,
dynamic mutations with incremental repair.

The resident layer (sessions pinned under a
:class:`~repro.parallel.partitioned.PartitionLayout` token) already lets a
partitioned kernel run without re-shipping its graph; this module turns that
into a *service*:

**Session lifetime beyond one kernel run.** Each graph the service holds
keeps one layout per mutation epoch and passes it to every query, so the
workers' payload caches (keyed ``(token, part)``) stay warm across queries —
the second ``mis2`` on an unchanged graph re-ships nothing but deltas, on any
backend including ``distributed``.

**Mutation → token invalidation.** :class:`~repro.graph.csr.CSRGraph` is
immutable (bit-identical determinism relies on it), so every mutation builds
a new graph and mints a fresh layout via
:func:`~repro.parallel.partitioned.carry_partition_labels` — same part
assignment for surviving vertices, *new token*. A stale worker cache entry
can therefore never serve a mutated graph: the token is the invalidation
rule.

**Batched queries.** Queries enter through :meth:`GraphService.submit` (any
thread; the asyncio front in :mod:`repro.service.aio` awaits the same
futures). A single dispatcher drains the queue in batches and coalesces
identical ``(graph, kind, params, epoch)`` requests onto one kernel run — N
concurrent clients asking for the same answer share one run's supersteps and
one cache fill.

**Incremental repair.** Edge mutations (and width-preserving vertex appends)
carry a dirty-neighbourhood frontier; a later repairable query
(fixed-scheme MIS-2, order-greedy coloring) seeds
:mod:`repro.service.repair` from the accumulated frontier and repairs the
cached answer instead of recomputing, falling back to full recompute past
the crossover (``repair_crossover`` of the vertex count). Repair is
bit-identical to from-scratch by construction — the Hypothesis suite pins
it for every mutation sequence, backend and partition count.
"""

from __future__ import annotations

import threading
import queue as queue_mod
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.build import from_edges
from ..graph.csr import CSRGraph
from ..graph.ops import induced_subgraph
from ..hashing.packing import priority_bits
from ..parallel.backends import ExecutionBackend, resolve_backend
from ..parallel.partitioned import (
    PartitionLayout,
    build_partition_layout,
    carry_partition_labels,
)
from . import repair as _repair

__all__ = ["GraphService", "ServiceStats", "ServiceClosed"]


class ServiceClosed(RuntimeError):
    """The service was closed; no further queries or mutations are accepted."""


@dataclass
class ServiceStats:
    """Monotonic counters describing the service's work so far."""

    #: Queries answered (including cache hits and coalesced duplicates).
    queries: int = 0
    #: Queries answered straight from an epoch-current cached result.
    cache_hits: int = 0
    #: Duplicate in-flight queries folded onto another request's computation.
    coalesced: int = 0
    #: From-scratch kernel runs.
    full_recomputes: int = 0
    #: Successful incremental repairs.
    repairs: int = 0
    #: Vertices evaluated across all repairs.
    repair_touched: int = 0
    #: Repairs abandoned for full recompute (crossover or budget).
    repair_fallbacks: int = 0
    #: Mutations applied (epoch bumps).
    mutations: int = 0
    #: Mutations that invalidated the key order (renumber / id-width change).
    structural_mutations: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {k: int(v) for k, v in self.__dict__.items()}


@dataclass
class _Mutation:
    """One epoch's dirty-frontier record, in *post-mutation* vertex ids."""

    epoch: int
    #: True when the mutation invalidated the key order entirely.
    structural: bool
    #: Seed frontier for distance-2 (MIS) repair.
    mis_dirty: np.ndarray
    #: Seed frontier for distance-1 (coloring) repair.
    color_dirty: np.ndarray
    #: Vertex count after this mutation (repair re-indexes cached arrays).
    num_vertices: int


@dataclass
class _Cached:
    """Immutable per-query snapshot: the value as of ``at_epoch``."""

    at_epoch: int
    value: Any


@dataclass
class _Entry:
    name: str
    graph: CSRGraph  # guarded-by: lock
    layout: Optional[PartitionLayout]  # guarded-by: lock
    parts: Optional[int]
    epoch: int = 0  # guarded-by: lock
    lock: threading.RLock = field(default_factory=threading.RLock)
    mutations: List[_Mutation] = field(default_factory=list)  # guarded-by: lock
    caches: Dict[Tuple, _Cached] = field(default_factory=dict)  # guarded-by: lock
    #: Fixed-scheme key arrays for the current vertex count, per seed.
    keys: Dict[int, np.ndarray] = field(default_factory=dict)  # guarded-by: lock


@dataclass
class _Request:
    name: str
    kind: str
    params: Tuple
    future: Future


def _readonly(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.flags.writeable = False
    return view


def _closed_neighborhood(graph: CSRGraph, vertices: np.ndarray) -> np.ndarray:
    """``vertices`` plus all their neighbours (the distance-1 closure)."""
    if vertices.size == 0:
        return vertices
    rowmap, entries = graph.rowmap, graph.entries
    hops = [vertices] + [
        entries[rowmap[v]: rowmap[v + 1]] for v in vertices.tolist()
    ]
    return np.unique(np.concatenate(hops)).astype(np.int64)


def _edge_pairs(graph: CSRGraph) -> np.ndarray:
    """The graph's undirected edges as canonical ``u * n + v`` codes, u < v."""
    n = graph.num_vertices
    src = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(graph.rowmap).astype(np.int64)
    )
    dst = graph.entries.astype(np.int64)
    mask = src < dst
    return src[mask] * n + dst[mask]


def _canonical_edges(n: int, edges: Iterable[Tuple[int, int]]) -> np.ndarray:
    """Validate and canonicalise an edge list to unique ``u*n+v`` codes, u<v.

    Self-loops are dropped (the CSR form is self-loop free; the kernels treat
    vertices as implicitly self-adjacent), duplicates collapse.
    """
    pairs = [(int(u), int(v)) for u, v in edges]
    for u, v in pairs:
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) out of range for {n} vertices")
    codes = [
        min(u, v) * n + max(u, v) for u, v in pairs if u != v
    ]
    return np.unique(np.asarray(codes, dtype=np.int64))


class GraphService:
    """Long-running, thread-safe front over the resident partitioned kernels.

    Parameters
    ----------
    backend:
        Execution backend (name or instance) every query runs on; ``None``
        uses the process default. All backends answer bit-identically.
    parts:
        Intra-graph partition count for graphs added without an explicit
        ``parts=``; ``None`` runs unpartitioned.
    repair_crossover:
        Fraction of the vertex count the repair worklist may touch before a
        query falls back to full recompute (the dirty seed is screened
        against the same threshold up front).
    word_bits:
        Packed-tuple width of the MIS keys (matches ``kk_mis2``).

    Queries (``mis2`` / ``color`` / ``aggregate``) can be called directly
    (synchronous; internally routed through the batching dispatcher) or
    submitted as futures via :meth:`submit`. Mutations (``add_edges`` /
    ``remove_edges`` / ``add_vertices`` / ``remove_vertices``) apply
    immediately under the graph's lock and bump its epoch.
    """

    _REPAIRABLE = frozenset({"mis2", "color"})

    def __init__(
        self,
        backend: "Optional[str | ExecutionBackend]" = None,
        parts: Optional[int] = None,
        repair_crossover: float = 0.25,
        word_bits: int = 64,
    ) -> None:
        if parts is not None and parts < 1:
            raise ValueError("parts must be >= 1")
        if not (0.0 <= repair_crossover <= 1.0):
            raise ValueError("repair_crossover must be in [0, 1]")
        self._backend = resolve_backend(backend)
        self._parts = parts
        self._crossover = float(repair_crossover)
        self._word_bits = int(word_bits)
        self._entries: Dict[str, _Entry] = {}  # guarded-by: _entries_lock
        self._entries_lock = threading.RLock()
        self._stats_lock = threading.Lock()
        self.stats = ServiceStats()  # guarded-by: _stats_lock
        self._queue: "queue_mod.SimpleQueue[Optional[_Request]]" = queue_mod.SimpleQueue()
        self._closed = False  # guarded-by: _entries_lock
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="graph-service-dispatch", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------ graph store
    def add_graph(
        self, name: str, graph: CSRGraph, parts: Optional[int] = None
    ) -> None:
        """Register ``graph`` under ``name`` (replacing any previous holder)."""
        self._check_open()
        parts = parts if parts is not None else self._parts
        layout = (
            build_partition_layout(graph, parts)
            if parts is not None and parts > 1
            else None
        )
        with self._entries_lock:
            self._entries[name] = _Entry(
                name=name, graph=graph, layout=layout, parts=parts
            )

    def remove_graph(self, name: str) -> None:
        with self._entries_lock:
            self._entries.pop(name, None)

    def graph(self, name: str) -> CSRGraph:
        entry = self._entry(name)
        with entry.lock:
            return entry.graph

    def epoch(self, name: str) -> int:
        entry = self._entry(name)
        with entry.lock:
            return entry.epoch

    def token(self, name: str) -> Optional[str]:
        """The current layout token (the resident-cache invalidation key)."""
        entry = self._entry(name)
        with entry.lock:
            return entry.layout.token if entry.layout is not None else None

    def graphs(self) -> List[str]:
        with self._entries_lock:
            return sorted(self._entries)

    def _entry(self, name: str) -> _Entry:
        with self._entries_lock:
            try:
                return self._entries[name]
            except KeyError:
                raise KeyError(f"no graph named {name!r} in the service") from None

    # -------------------------------------------------------------- mutations
    def add_edges(self, name: str, edges: Iterable[Tuple[int, int]]) -> int:
        """Insert undirected edges; returns how many were actually new.

        The dirty MIS frontier of an inserted edge ``(a, b)`` is the closed
        neighbourhood of both endpoints *in the new graph* — every vertex
        whose distance-2 reach gained a path through the new edge. The
        coloring frontier is just the endpoints (distance-1 rule).
        """
        entry = self._entry(name)
        with entry.lock:
            n = entry.graph.num_vertices
            codes = _canonical_edges(n, edges)
            existing = _edge_pairs(entry.graph)
            fresh = np.setdiff1d(codes, existing, assume_unique=True)
            if fresh.size == 0:
                return 0
            merged = np.union1d(existing, fresh)
            new_graph = self._graph_from_codes(n, merged)
            endpoints = np.unique(
                np.concatenate([fresh // n, fresh % n])
            ).astype(np.int64)
            self._apply_mutation(
                entry,
                new_graph,
                mis_dirty=_closed_neighborhood(new_graph, endpoints),
                color_dirty=endpoints,
            )
            return int(fresh.size)

    def remove_edges(self, name: str, edges: Iterable[Tuple[int, int]]) -> int:
        """Delete undirected edges; returns how many actually existed.

        Symmetric to :meth:`add_edges`, except the dirty MIS frontier uses
        the *old* graph's neighbourhoods — the paths the deletion severed.
        """
        entry = self._entry(name)
        with entry.lock:
            n = entry.graph.num_vertices
            codes = _canonical_edges(n, edges)
            existing = _edge_pairs(entry.graph)
            gone = np.intersect1d(codes, existing, assume_unique=True)
            if gone.size == 0:
                return 0
            remaining = np.setdiff1d(existing, gone, assume_unique=True)
            endpoints = np.unique(np.concatenate([gone // n, gone % n])).astype(
                np.int64
            )
            mis_dirty = _closed_neighborhood(entry.graph, endpoints)
            new_graph = self._graph_from_codes(n, remaining)
            self._apply_mutation(
                entry, new_graph, mis_dirty=mis_dirty, color_dirty=endpoints
            )
            return int(gone.size)

    def add_vertices(self, name: str, count: int) -> Tuple[int, int]:
        """Append ``count`` isolated vertices; returns their id range.

        Appending preserves every existing vertex's id — and, as long as the
        packed-tuple id width ``b = ceil(log2(n + 2))`` doesn't grow, every
        existing key — so the repair frontier is just the new vertices. When
        the width does grow (vertex count crossing a power of two) the whole
        key order shifts: the mutation is structural and cached results are
        recomputed from scratch on next query.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        entry = self._entry(name)
        with entry.lock:
            n = entry.graph.num_vertices
            if count == 0:
                return (n, n)
            new_n = n + count
            structural = (
                priority_bits(new_n, self._word_bits)[0]
                != priority_bits(n, self._word_bits)[0]
                if n > 0
                else False
            )
            new_graph = CSRGraph(
                np.concatenate(
                    [entry.graph.rowmap, np.full(count, entry.graph.rowmap[-1])]
                ).astype(np.int64),
                entry.graph.entries.copy(),
                validate=False,
            )
            fresh = np.arange(n, new_n, dtype=np.int64)
            self._apply_mutation(
                entry,
                new_graph,
                mis_dirty=fresh,
                color_dirty=fresh,
                structural=structural,
                grew=count,
            )
            return (n, new_n)

    def remove_vertices(self, name: str, vertices: Sequence[int]) -> int:
        """Delete vertices (and their edges), renumbering the survivors.

        Renumbering changes every surviving vertex's id and therefore its
        packed key — the mutation is always structural and the next query of
        each kind recomputes from scratch.
        """
        entry = self._entry(name)
        with entry.lock:
            n = entry.graph.num_vertices
            drop = np.unique(np.asarray(list(vertices), dtype=np.int64))
            if drop.size == 0:
                return 0
            if drop.size and (drop[0] < 0 or drop[-1] >= n):
                raise ValueError(f"vertex ids out of range for {n} vertices")
            keep = np.setdiff1d(np.arange(n, dtype=np.int64), drop, assume_unique=True)
            new_graph, _ = induced_subgraph(entry.graph, keep)
            empty = np.zeros(0, dtype=np.int64)
            self._apply_mutation(
                entry,
                new_graph,
                mis_dirty=empty,
                color_dirty=empty,
                structural=True,
                keep=keep,
            )
            return int(drop.size)

    def _graph_from_codes(self, n: int, codes: np.ndarray) -> CSRGraph:
        return from_edges(n, [(int(c // n), int(c % n)) for c in codes])

    def _apply_mutation(
        self,
        entry: _Entry,
        new_graph: CSRGraph,
        mis_dirty: np.ndarray,
        color_dirty: np.ndarray,
        structural: bool = False,
        grew: int = 0,
        keep: Optional[np.ndarray] = None,
    ) -> None:  # holds: lock
        entry.graph = new_graph
        entry.epoch += 1
        entry.keys.clear()
        if entry.layout is not None:
            labels = carry_partition_labels(
                entry.layout.labels,
                entry.layout.num_parts,
                keep=keep,
                new_vertices=grew,
            )
            # Fresh layout object => fresh token: the old token's worker-side
            # payload entries can never serve the mutated graph.
            entry.layout = build_partition_layout(new_graph, labels)
        entry.mutations.append(
            _Mutation(
                epoch=entry.epoch,
                structural=bool(structural),
                mis_dirty=np.asarray(mis_dirty, dtype=np.int64),
                color_dirty=np.asarray(color_dirty, dtype=np.int64),
                num_vertices=new_graph.num_vertices,
            )
        )
        # Records older than every cached result can never be consulted again.
        if entry.caches:
            oldest = min(c.at_epoch for c in entry.caches.values())
            entry.mutations = [m for m in entry.mutations if m.epoch > oldest]
        else:
            entry.mutations.clear()
        with self._stats_lock:
            self.stats.mutations += 1
            if structural:
                self.stats.structural_mutations += 1

    # ---------------------------------------------------------------- queries
    def submit(self, name: str, kind: str, **params) -> "Future[Any]":
        """Enqueue one query; returns its future.

        Concurrent submissions of the same ``(graph, kind, params)`` at the
        same epoch are coalesced by the dispatcher onto a single computation.
        """
        self._check_open()
        if kind not in ("mis2", "color", "aggregate"):
            raise ValueError(f"unknown query kind {kind!r}")
        future: "Future[Any]" = Future()
        self._queue.put(
            _Request(name, kind, tuple(sorted(params.items())), future)
        )
        return future

    def mis2(self, name: str, seed: int = 0):
        """Fixed-scheme MIS-2 of the named graph (repairable). Returns the
        boolean in-mask (read-only)."""
        return self.submit(name, "mis2", seed=seed).result()

    def color(self, name: str):
        """Order-greedy coloring of the named graph (repairable). Returns the
        per-vertex color array (read-only)."""
        return self.submit(name, "color").result()

    def aggregate(self, name: str, seed: int = 0):
        """MIS-2 aggregation (Algorithm 3) of the named graph. Cached per
        epoch; mutations trigger full recompute (no localized repair)."""
        return self.submit(name, "aggregate", seed=seed).result()

    # ------------------------------------------------------------- dispatcher
    def _dispatch_loop(self) -> None:
        while True:
            request = self._queue.get()
            if request is None:
                return
            batch = [request]
            while True:
                try:
                    more = self._queue.get_nowait()
                except queue_mod.Empty:
                    break
                if more is None:
                    self._drain(batch)
                    return
                batch.append(more)
            self._drain(batch)

    def _drain(self, batch: List[_Request]) -> None:
        groups: Dict[Tuple, List[_Request]] = {}
        for request in batch:
            groups.setdefault(
                (request.name, request.kind, request.params), []
            ).append(request)
        for (name, kind, params), members in groups.items():
            try:
                value = self._execute(name, kind, dict(params))
            except BaseException as exc:  # noqa: BLE001 - delivered to callers
                for member in members:
                    member.future.set_exception(exc)
                continue
            with self._stats_lock:
                self.stats.coalesced += len(members) - 1
            for member in members:
                member.future.set_result(value)

    # -------------------------------------------------------------- execution
    def _execute(self, name: str, kind: str, params: Dict[str, Any]) -> Any:
        entry = self._entry(name)
        with entry.lock:
            with self._stats_lock:
                self.stats.queries += 1
            key = (kind,) + tuple(sorted(params.items()))
            cached = entry.caches.get(key)
            if cached is not None and cached.at_epoch == entry.epoch:
                with self._stats_lock:
                    self.stats.cache_hits += 1
                return cached.value
            if (
                cached is not None
                and kind in self._REPAIRABLE
                and entry.graph.num_vertices > 0
            ):
                repaired = self._try_repair(entry, kind, params, cached)
                if repaired is not None:
                    entry.caches[key] = _Cached(entry.epoch, repaired)
                    return repaired
            value = self._full_compute(entry, kind, params)
            entry.caches[key] = _Cached(entry.epoch, value)
            with self._stats_lock:
                self.stats.full_recomputes += 1
            return value

    def _keys(self, entry: _Entry, seed: int) -> np.ndarray:  # holds: lock
        keys = entry.keys.get(seed)
        if keys is None:
            keys = _repair.mis_keys(
                entry.graph.num_vertices, seed=seed, word_bits=self._word_bits
            )
            entry.keys[seed] = keys
        return keys

    def _pending_frontier(
        self, entry: _Entry, since_epoch: int, kind: str
    ) -> Optional[np.ndarray]:  # holds: lock
        """Accumulated dirty frontier since ``since_epoch``, in current ids;
        ``None`` when a structural mutation (or a pruned record) forces full
        recompute. Non-structural histories are append-only, so ids recorded
        at any epoch in the window remain valid in the latest numbering.
        """
        records = [m for m in entry.mutations if m.epoch > since_epoch]
        if len(records) != entry.epoch - since_epoch:
            return None  # history pruned past this cache entry
        if any(m.structural for m in records):
            return None
        pieces = [
            m.mis_dirty if kind == "mis2" else m.color_dirty for m in records
        ]
        return (
            np.unique(np.concatenate(pieces))
            if pieces
            else np.zeros(0, dtype=np.int64)
        )

    def _try_repair(
        self, entry: _Entry, kind: str, params: Dict[str, Any], cached: _Cached
    ) -> Optional[Any]:  # holds: lock
        frontier = self._pending_frontier(entry, cached.at_epoch, kind)
        if frontier is None:
            return None
        n = entry.graph.num_vertices
        budget = max(32, int(self._crossover * n))
        if frontier.size > budget:
            with self._stats_lock:
                self.stats.repair_fallbacks += 1
            return None
        seed = int(params.get("seed", 0))
        keys = self._keys(entry, seed if kind == "mis2" else 0)
        prev = np.asarray(cached.value)
        if prev.size < n:
            # Width-preserving appends: new vertices enter dirty, so their
            # placeholder values are recomputed before anyone reads them.
            filler = np.zeros(n - prev.size, dtype=prev.dtype)
            prev = np.concatenate([prev, filler])
        if kind == "mis2":
            result = _repair.repair_mis2(
                entry.graph, keys, prev, frontier, budget=budget
            )
        else:
            result = _repair.repair_ordered_color(
                entry.graph, keys, prev, frontier, budget=budget
            )
        if result is None:
            with self._stats_lock:
                self.stats.repair_fallbacks += 1
            return None
        value, touched = result
        with self._stats_lock:
            self.stats.repairs += 1
            self.stats.repair_touched += touched
        return _readonly(value)

    def _full_compute(self, entry: _Entry, kind: str, params: Dict[str, Any]) -> Any:  # holds: lock
        partitions = entry.layout
        if kind == "mis2":
            from ..mis.kk import kk_mis2

            result = kk_mis2(
                entry.graph,
                priority_scheme="fixed",
                word_bits=self._word_bits,
                seed=int(params.get("seed", 0)),
                backend=self._backend,
                partitions=partitions,
            )
            return _readonly(result.in_mask.copy())
        if kind == "color":
            keys = self._keys(entry, 0)
            return _readonly(_repair.ordered_color(entry.graph, keys))
        if kind == "aggregate":
            from ..coarsen.mis2_agg import mis2_aggregation

            aggregation = mis2_aggregation(
                entry.graph,
                seed=int(params.get("seed", 0)),
                backend=self._backend,
                partitions=partitions,
            )
            return aggregation
        raise ValueError(f"unknown query kind {kind!r}")

    # ------------------------------------------------------------------ stats
    def stats_snapshot(self) -> Dict[str, int]:
        """Consistent copy of the service counters, taken under the stats
        lock — unlike reading ``service.stats`` fields directly, the returned
        dict can never mix counts from two different moments."""
        with self._stats_lock:
            return self.stats.to_dict()

    # ----------------------------------------------------------------- health
    def health(self, timeout: float = 5.0) -> Dict[str, Any]:
        """Liveness snapshot: the store, the backend, and — on the
        distributed backend — a deadline-bounded ping of every rank.

        The rank probe uses the transport's per-receive deadline, so a rank
        that is alive but wedged reports unhealthy within ``timeout`` instead
        of hanging the caller.
        """
        graphs: Dict[str, Dict[str, Any]] = {}
        with self._entries_lock:
            closed = self._closed
            entries = list(self._entries.items())
        for name, entry in entries:
            # Per-entry lock: a concurrent _apply_mutation reassigns graph,
            # epoch, and layout in sequence — reading them unlocked could mix
            # the new graph with the old epoch/token (a torn snapshot).
            with entry.lock:
                graphs[name] = {
                    "vertices": entry.graph.num_vertices,
                    "edges": entry.graph.num_edges,
                    "epoch": entry.epoch,
                    "parts": entry.layout.num_parts if entry.layout else 1,
                    "token": entry.layout.token if entry.layout else None,
                }
        report: Dict[str, Any] = {
            "closed": closed,
            "backend": self._backend.name,
            "graphs": graphs,
        }
        cluster_of = getattr(self._backend, "cluster", None)
        if cluster_of is not None:
            ranks = cluster_of().ping(timeout=timeout)
            report["ranks"] = ranks
            report["healthy"] = not closed and all(ranks.values())
        else:
            report["healthy"] = not closed
        return report

    # -------------------------------------------------------------- lifecycle
    def _check_open(self) -> None:
        with self._entries_lock:
            closed = self._closed
        if closed:
            raise ServiceClosed("GraphService is closed")

    def close(self) -> None:
        """Stop the dispatcher and reject further work (idempotent).

        In-flight queries finish; the resident worker caches are left to
        their LRU (tokens of dropped graphs simply age out).
        """
        with self._entries_lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)
        self._dispatcher.join(timeout=30.0)

    def __enter__(self) -> "GraphService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

"""Always-on graph service over the resident partitioned kernels.

:class:`GraphService` (:mod:`repro.service.core`) holds partitioned graphs
resident across any execution backend, batches concurrent MIS / coloring /
aggregation queries onto shared kernel runs, and supports dynamic graphs:
edge/vertex insert/delete with localized incremental repair
(:mod:`repro.service.repair`) proven bit-identical to from-scratch
recomputation. :class:`AsyncGraphService` (:mod:`repro.service.aio`) is the
asyncio front over the same store.
"""

from .core import GraphService, ServiceClosed, ServiceStats
from .aio import AsyncGraphService
from .repair import (
    mis_keys,
    ordered_color,
    repair_mis2,
    repair_ordered_color,
    serial_mis2_mask,
)

__all__ = [
    "GraphService",
    "AsyncGraphService",
    "ServiceClosed",
    "ServiceStats",
    "mis_keys",
    "serial_mis2_mask",
    "repair_mis2",
    "ordered_color",
    "repair_ordered_color",
]

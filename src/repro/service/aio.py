"""Thin asyncio front over :class:`~repro.service.core.GraphService`.

The service's dispatcher already hands every query back as a
:class:`concurrent.futures.Future`; this wrapper awaits those futures
(``asyncio.wrap_future``) so any number of coroutine clients can issue
queries concurrently — concurrent identical queries coalesce onto one kernel
run exactly as they do for threaded clients, because both fronts feed the
same batching queue. Mutations and health checks run in the default executor
(they take the per-graph lock and may rebuild a layout, which should not
stall the event loop).

Usage::

    async with AsyncGraphService(backend="threaded", parts=4) as svc:
        await svc.add_graph("g", graph)
        masks = await asyncio.gather(*[svc.mis2("g") for _ in range(32)])
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from .core import GraphService

__all__ = ["AsyncGraphService"]


class AsyncGraphService:
    """Async facade: every method mirrors :class:`GraphService` 1:1.

    Construct it with the same arguments as :class:`GraphService`, or wrap an
    existing service instance via ``AsyncGraphService(service=svc)`` to share
    one resident store between threaded and async clients.
    """

    def __init__(self, service: Optional[GraphService] = None, **kwargs) -> None:
        if service is not None and kwargs:
            raise ValueError("pass either an existing service or constructor kwargs")
        self._service = service if service is not None else GraphService(**kwargs)
        self._owns = service is None

    @property
    def service(self) -> GraphService:
        """The wrapped synchronous service (shared resident store)."""
        return self._service

    # ---------------------------------------------------------------- queries
    async def mis2(self, name: str, seed: int = 0) -> np.ndarray:
        return await asyncio.wrap_future(
            self._service.submit(name, "mis2", seed=seed)
        )

    async def color(self, name: str) -> np.ndarray:
        return await asyncio.wrap_future(self._service.submit(name, "color"))

    async def aggregate(self, name: str, seed: int = 0) -> Any:
        return await asyncio.wrap_future(
            self._service.submit(name, "aggregate", seed=seed)
        )

    # ------------------------------------------------------- store & mutation
    async def add_graph(
        self, name: str, graph: CSRGraph, parts: Optional[int] = None
    ) -> None:
        await asyncio.to_thread(self._service.add_graph, name, graph, parts)

    async def remove_graph(self, name: str) -> None:
        await asyncio.to_thread(self._service.remove_graph, name)

    async def add_edges(self, name: str, edges: Iterable[Tuple[int, int]]) -> int:
        return await asyncio.to_thread(self._service.add_edges, name, list(edges))

    async def remove_edges(self, name: str, edges: Iterable[Tuple[int, int]]) -> int:
        return await asyncio.to_thread(self._service.remove_edges, name, list(edges))

    async def add_vertices(self, name: str, count: int) -> Tuple[int, int]:
        return await asyncio.to_thread(self._service.add_vertices, name, count)

    async def remove_vertices(self, name: str, vertices: Sequence[int]) -> int:
        return await asyncio.to_thread(
            self._service.remove_vertices, name, list(vertices)
        )

    # ------------------------------------------------------------------ admin
    async def health(self, timeout: float = 5.0) -> Dict[str, Any]:
        return await asyncio.to_thread(self._service.health, timeout)

    def graphs(self) -> List[str]:
        return self._service.graphs()

    async def close(self) -> None:
        if self._owns:
            await asyncio.to_thread(self._service.close)

    async def __aenter__(self) -> "AsyncGraphService":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.close()
        return False

"""Lightweight timing helpers.

The paper reports mean times over 100 trials; :func:`repeat_timed` provides the same
protocol (configurable warmup and trial counts) and :class:`TimingStats` carries the
summary statistics used by the benchmark drivers.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["Timer", "TimingStats", "repeat_timed"]


class Timer:
    """Context-manager wall-clock timer based on :func:`time.perf_counter`.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0
        self._running = False

    def start(self) -> "Timer":
        """Start (or restart) the timer."""
        self._start = time.perf_counter()
        self._running = True
        return self

    def stop(self) -> float:
        """Stop the timer and return the elapsed seconds since :meth:`start`."""
        if not self._running or self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self._elapsed = time.perf_counter() - self._start
        self._running = False
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Elapsed seconds of the most recent start/stop interval.

        If the timer is still running, returns the time elapsed so far without
        stopping it.
        """
        if self._running and self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self._running else "stopped"
        return f"Timer({state}, elapsed={self.elapsed:.6f}s)"


@dataclass
class TimingStats:
    """Summary of repeated timing trials (seconds)."""

    trials: List[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        """Record one trial."""
        self.trials.append(float(seconds))

    @property
    def count(self) -> int:
        return len(self.trials)

    @property
    def total(self) -> float:
        return float(sum(self.trials))

    @property
    def mean(self) -> float:
        if not self.trials:
            return 0.0
        return self.total / len(self.trials)

    @property
    def minimum(self) -> float:
        return min(self.trials) if self.trials else 0.0

    @property
    def maximum(self) -> float:
        return max(self.trials) if self.trials else 0.0

    @property
    def stddev(self) -> float:
        if len(self.trials) < 2:
            return 0.0
        m = self.mean
        var = sum((t - m) ** 2 for t in self.trials) / (len(self.trials) - 1)
        return math.sqrt(var)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimingStats(n={self.count}, mean={self.mean:.6f}s, "
            f"min={self.minimum:.6f}s, max={self.maximum:.6f}s)"
        )


def repeat_timed(
    fn: Callable[[], T],
    trials: int = 5,
    warmup: int = 1,
) -> tuple[T, TimingStats]:
    """Run ``fn`` repeatedly and collect wall-clock statistics.

    Parameters
    ----------
    fn:
        Zero-argument callable; its last return value is returned alongside the stats.
    trials:
        Number of timed trials (the paper uses 100 for Table II; benches here default
        to smaller counts so that the scaled suite completes quickly).
    warmup:
        Untimed warmup calls executed before the timed trials.

    Returns
    -------
    (result, stats):
        ``result`` is the return value of the final timed trial, ``stats`` the
        collected :class:`TimingStats`.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    result: T
    for _ in range(warmup):
        result = fn()
    stats = TimingStats()
    for _ in range(trials):
        t = Timer().start()
        result = fn()
        stats.add(t.stop())
    return result, stats

"""Argument-validation helpers used at public API boundaries.

Keeping validation in one place means error messages are consistent and the numeric
kernels themselves stay free of defensive clutter.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

__all__ = [
    "require",
    "check_array_1d",
    "check_integer_dtype",
    "check_nonnegative",
    "check_positive",
    "check_square_matrix",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` when ``condition`` is false."""
    if not condition:
        raise ValueError(message)


def check_array_1d(arr: Any, name: str) -> np.ndarray:
    """Coerce ``arr`` to a 1-D :class:`numpy.ndarray`, raising on higher dimensions."""
    out = np.asarray(arr)
    if out.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {out.shape}")
    return out


def check_integer_dtype(arr: np.ndarray, name: str) -> np.ndarray:
    """Ensure ``arr`` has an integer dtype."""
    if not np.issubdtype(np.asarray(arr).dtype, np.integer):
        raise TypeError(f"{name} must have an integer dtype, got {np.asarray(arr).dtype}")
    return np.asarray(arr)


def check_nonnegative(value: float, name: str) -> float:
    """Ensure a scalar is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Ensure a scalar is > 0."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_square_matrix(A: Any, name: str = "A") -> sp.csr_matrix:
    """Coerce ``A`` to CSR and ensure it is square."""
    mat = sp.csr_matrix(A)
    if mat.shape[0] != mat.shape[1]:
        raise ValueError(f"{name} must be square, got shape {mat.shape}")
    return mat

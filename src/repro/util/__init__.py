"""Utility helpers shared across the reproduction: timing, tables, validation."""

from __future__ import annotations

from .timing import Timer, TimingStats, repeat_timed
from .tables import Table, format_float, geometric_mean
from .validation import (
    check_array_1d,
    check_integer_dtype,
    check_nonnegative,
    check_positive,
    check_square_matrix,
    require,
)

__all__ = [
    "Timer",
    "TimingStats",
    "repeat_timed",
    "Table",
    "format_float",
    "geometric_mean",
    "check_array_1d",
    "check_integer_dtype",
    "check_nonnegative",
    "check_positive",
    "check_square_matrix",
    "require",
]

"""ASCII result tables used by the benchmark drivers.

The paper reports its evaluation as tables (Tables I-VI) and figures whose underlying
data is tabular. :class:`Table` renders aligned plain-text tables so that every bench
target can print "the same rows the paper reports".
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Optional, Sequence

__all__ = ["Table", "format_float", "format_seconds", "geometric_mean"]


def format_float(value: float, sig: int = 3) -> str:
    """Format ``value`` with ``sig`` significant digits, matching paper-style tables.

    Integers are rendered without a decimal point; NaN renders as ``"-"``.
    """
    if value is None:
        return "-"
    if isinstance(value, float) and math.isnan(value):
        return "-"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    if value == 0:
        return "0"
    return f"{value:.{sig}g}"


def format_seconds(seconds: float) -> str:
    """Format a wall-clock duration with a unit suited to its magnitude.

    Sub-millisecond durations render in microseconds, sub-second in
    milliseconds, everything else in seconds — the scales the paper's tables
    mix freely.
    """
    if seconds is None or (isinstance(seconds, float) and math.isnan(seconds)):
        return "-"
    if seconds < 0:
        raise ValueError("durations cannot be negative")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for speedup summaries, as in the paper)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


class Table:
    """A simple column-aligned text table.

    Example
    -------
    >>> t = Table(["matrix", "iters"], title="MIS-2 iterations")
    >>> t.add_row(["ecology2", 8])
    >>> print(t.render())  # doctest: +ELLIPSIS
    MIS-2 iterations
    ...
    """

    def __init__(self, columns: Sequence[str], title: Optional[str] = None) -> None:
        if not columns:
            raise ValueError("Table requires at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, values: Iterable[Any]) -> None:
        """Append one row; values are stringified with :func:`format_float` for floats."""
        row = []
        for v in values:
            if isinstance(v, bool):
                row.append("yes" if v else "no")
            elif isinstance(v, float):
                row.append(format_float(v))
            else:
                row.append(str(v))
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} values but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table as aligned plain text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def to_dicts(self) -> List[dict]:
        """Return rows as a list of ``{column: cell}`` dictionaries (for tests)."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()

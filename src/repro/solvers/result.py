"""Result containers for the iterative solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["SolveResult"]


@dataclass
class SolveResult:
    """Outcome of an iterative linear solve.

    Attributes
    ----------
    x:
        Final iterate.
    iterations:
        Number of iterations performed (the metric reported in Tables V and VI).
    converged:
        Whether the relative-residual tolerance was reached.
    residual_norms:
        Residual-norm history, one entry per iteration (including the initial one).
    setup_seconds / solve_seconds:
        Wall-clock timings filled in by the callers that time their phases
        (the benchmark drivers for Tables V and VI).
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float] = field(default_factory=list)
    setup_seconds: Optional[float] = None
    solve_seconds: Optional[float] = None

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolveResult(iterations={self.iterations}, converged={self.converged}, "
            f"final_residual={self.final_residual:.3e})"
        )

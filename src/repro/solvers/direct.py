"""Coarse-level direct solver.

Multigrid hierarchies solve the coarsest system exactly; this wrapper prefers a sparse
LU factorisation and falls back to dense LAPACK (or a pseudo-inverse for singular
coarse operators, which can occur for pure Neumann problems).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["DirectSolver"]


class DirectSolver:
    """Factorise a (small) sparse matrix once and solve repeatedly."""

    def __init__(self, A: sp.spmatrix) -> None:
        A = sp.csc_matrix(A)
        if A.shape[0] != A.shape[1]:
            raise ValueError("DirectSolver requires a square matrix")
        self.shape = A.shape
        self._lu = None
        self._dense_inverse: Optional[np.ndarray] = None
        if A.shape[0] == 0:
            return
        try:
            self._lu = spla.splu(A)
        except RuntimeError:
            # Singular coarse operator: fall back to a pseudo-inverse.
            self._dense_inverse = np.linalg.pinv(A.toarray())

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b``."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != self.shape[0]:
            raise ValueError("right-hand side has the wrong length")
        if self.shape[0] == 0:
            return np.zeros(0)
        if self._lu is not None:
            return self._lu.solve(b)
        assert self._dense_inverse is not None
        return self._dense_inverse @ b

"""Restarted GMRES.

Table VI of the paper uses GMRES preconditioned with point/cluster multicolor
symmetric Gauss-Seidel and a convergence tolerance of 1e-8 within 800 iterations;
this module provides a standard right-preconditioned restarted GMRES(m) with Givens
rotations, taking any callable ``M(r) -> z`` as the preconditioner.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from .result import SolveResult

__all__ = ["gmres"]

Preconditioner = Callable[[np.ndarray], np.ndarray]


def gmres(
    A: sp.spmatrix,
    b: np.ndarray,
    M: Optional[Preconditioner] = None,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    restart: int = 50,
    maxiter: int = 800,
) -> SolveResult:
    """Solve ``A x = b`` with right-preconditioned restarted GMRES.

    Parameters
    ----------
    A:
        Sparse matrix (no symmetry requirement).
    b:
        Right-hand side.
    M:
        Optional preconditioner application ``z = M(v)`` approximating ``A^{-1} v``.
    x0:
        Initial guess (zero by default).
    tol:
        Relative residual tolerance ``||b - A x|| <= tol * ||b||``.
    restart:
        Krylov subspace dimension per cycle.
    maxiter:
        Total iteration (inner step) cap — the quantity reported as "iterations" in
        Table VI.
    """
    A = sp.csr_matrix(A)
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    if A.shape != (n, n):
        raise ValueError("A and b have incompatible shapes")
    if restart < 1:
        raise ValueError("restart must be >= 1")
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    b_norm = np.linalg.norm(b)
    if b_norm == 0:
        return SolveResult(x=np.zeros(n), iterations=0, converged=True, residual_norms=[0.0])

    def precondition(v: np.ndarray) -> np.ndarray:
        return M(v) if M is not None else v

    residuals = []
    total_iters = 0
    converged = False
    while total_iters < maxiter and not converged:
        r = b - A @ x
        beta = float(np.linalg.norm(r))
        residuals.append(beta)
        if beta <= tol * b_norm:
            converged = True
            break
        m = min(restart, maxiter - total_iters)
        Q = np.zeros((n, m + 1))
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = beta
        Q[:, 0] = r / beta
        Z = np.zeros((n, m))  # preconditioned basis vectors (for the update)
        k_used = 0
        for k in range(m):
            z = precondition(Q[:, k])
            Z[:, k] = z
            w = A @ z
            # Modified Gram-Schmidt.
            for i in range(k + 1):
                H[i, k] = float(w @ Q[:, i])
                w -= H[i, k] * Q[:, i]
            H[k + 1, k] = float(np.linalg.norm(w))
            if H[k + 1, k] > 1e-14:
                Q[:, k + 1] = w / H[k + 1, k]
            # Apply existing Givens rotations to the new column.
            for i in range(k):
                temp = cs[i] * H[i, k] + sn[i] * H[i + 1, k]
                H[i + 1, k] = -sn[i] * H[i, k] + cs[i] * H[i + 1, k]
                H[i, k] = temp
            denom = np.hypot(H[k, k], H[k + 1, k])
            if denom == 0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k] = H[k, k] / denom
                sn[k] = H[k + 1, k] / denom
            H[k, k] = cs[k] * H[k, k] + sn[k] * H[k + 1, k]
            H[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            total_iters += 1
            k_used = k + 1
            res_norm = abs(g[k + 1])
            residuals.append(float(res_norm))
            if res_norm <= tol * b_norm or total_iters >= maxiter:
                break
        # Solve the small triangular system and update the iterate.
        if k_used > 0:
            y = np.linalg.solve(H[:k_used, :k_used], g[:k_used])
            x = x + Z[:, :k_used] @ y
        final_res = float(np.linalg.norm(b - A @ x))
        if final_res <= tol * b_norm:
            converged = True
    residuals.append(float(np.linalg.norm(b - A @ x)))
    return SolveResult(
        x=x, iterations=total_iters, converged=converged, residual_norms=residuals
    )

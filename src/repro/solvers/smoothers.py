"""Multigrid smoothers.

The paper's MueLu experiment (Table V) uses two sweeps of damped Jacobi as the
smoother on every level of the SA-AMG V-cycle; a Chebyshev smoother is provided as
well since it is MueLu's other standard choice and is useful for the extension
benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

__all__ = ["JacobiSmoother", "ChebyshevSmoother"]


@dataclass
class JacobiSmoother:
    """Damped Jacobi smoother ``x <- x + omega D^{-1} (b - A x)``.

    Parameters
    ----------
    A:
        System matrix (CSR).
    omega:
        Damping factor (2/3 by default, the standard choice for Poisson-like
        problems; MueLu's default Jacobi damping).
    sweeps:
        Number of sweeps applied per :meth:`apply` call.
    """

    A: sp.csr_matrix
    omega: float = 2.0 / 3.0
    sweeps: int = 2

    def __post_init__(self) -> None:
        self.A = sp.csr_matrix(self.A)
        diag = self.A.diagonal()
        if np.any(diag == 0):
            raise ValueError("Jacobi smoother requires a nonzero diagonal")
        self._dinv = 1.0 / diag

    def apply(self, b: np.ndarray, x: Optional[np.ndarray] = None) -> np.ndarray:
        """Apply ``sweeps`` damped-Jacobi sweeps to ``A x = b`` starting from ``x``
        (zero when omitted) and return the new iterate."""
        b = np.asarray(b, dtype=np.float64)
        out = np.zeros_like(b) if x is None else np.array(x, dtype=np.float64, copy=True)
        for _ in range(self.sweeps):
            residual = b - self.A @ out
            out += self.omega * self._dinv * residual
        return out


@dataclass
class ChebyshevSmoother:
    """Chebyshev polynomial smoother targeting the upper part of the spectrum.

    Uses the standard three-term recurrence on the interval
    ``[lambda_max / eig_ratio, lambda_max]`` of ``D^{-1} A``.
    """

    A: sp.csr_matrix
    degree: int = 2
    eig_ratio: float = 7.0
    lambda_max: Optional[float] = None

    def __post_init__(self) -> None:
        self.A = sp.csr_matrix(self.A)
        diag = self.A.diagonal()
        if np.any(diag == 0):
            raise ValueError("Chebyshev smoother requires a nonzero diagonal")
        self._dinv = 1.0 / diag
        if self.lambda_max is None:
            from ..coarsen.prolongation import estimate_spectral_radius

            self.lambda_max = estimate_spectral_radius(self.A)
        if self.lambda_max <= 0:
            raise ValueError("lambda_max must be positive")

    def apply(self, b: np.ndarray, x: Optional[np.ndarray] = None) -> np.ndarray:
        """Apply one degree-``degree`` Chebyshev smoothing pass."""
        b = np.asarray(b, dtype=np.float64)
        x_out = np.zeros_like(b) if x is None else np.array(x, dtype=np.float64, copy=True)
        lmax = float(self.lambda_max)
        lmin = lmax / self.eig_ratio
        theta = 0.5 * (lmax + lmin)
        delta = 0.5 * (lmax - lmin)
        residual = b - self.A @ x_out
        p = self._dinv * residual / theta
        x_out = x_out + p
        # Standard recurrence (see Saad, Iterative Methods, Alg. 12.1).
        sigma = theta / delta if delta != 0 else 0.0
        rho = 1.0 / sigma if sigma != 0 else 0.0
        for _ in range(1, max(1, self.degree)):
            residual = b - self.A @ x_out
            rho_new = 1.0 / (2.0 * sigma - rho) if (2.0 * sigma - rho) != 0 else 0.0
            p = rho_new * rho * p + (2.0 * rho_new / delta) * (self._dinv * residual)
            x_out = x_out + p
            rho = rho_new
        return x_out

"""Preconditioned conjugate gradient.

The MueLu experiment of Table V solves a 3-D Laplace system with CG preconditioned by
one SA-AMG V-cycle to a relative tolerance of 1e-12; this module implements the
standard PCG iteration with a pluggable preconditioner (any callable ``M(r) -> z``).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from .result import SolveResult

__all__ = ["pcg"]

Preconditioner = Callable[[np.ndarray], np.ndarray]


def pcg(
    A: sp.spmatrix,
    b: np.ndarray,
    M: Optional[Preconditioner] = None,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    maxiter: int = 1000,
) -> SolveResult:
    """Solve the SPD system ``A x = b`` with (preconditioned) conjugate gradients.

    Parameters
    ----------
    A:
        Symmetric positive-definite sparse matrix.
    b:
        Right-hand side.
    M:
        Optional preconditioner application ``z = M(r)`` (must be SPD for CG theory
        to hold; the SA-AMG V-cycle and symmetric Gauss-Seidel both qualify).
    x0:
        Initial guess (zero by default).
    tol:
        Relative residual tolerance ``||r|| <= tol * ||b||``.
    maxiter:
        Iteration cap.
    """
    A = sp.csr_matrix(A)
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    if A.shape != (n, n):
        raise ValueError("A and b have incompatible shapes")
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    r = b - A @ x
    b_norm = np.linalg.norm(b)
    if b_norm == 0:
        return SolveResult(x=np.zeros(n), iterations=0, converged=True, residual_norms=[0.0])
    residuals = [float(np.linalg.norm(r))]
    if residuals[0] <= tol * b_norm:
        return SolveResult(x=x, iterations=0, converged=True, residual_norms=residuals)

    z = M(r) if M is not None else r
    p = z.copy()
    rz = float(r @ z)
    iterations = 0
    converged = False
    for iterations in range(1, maxiter + 1):
        Ap = A @ p
        pAp = float(p @ Ap)
        if pAp <= 0:
            # Loss of positive-definiteness (preconditioner or matrix not SPD).
            break
        alpha = rz / pAp
        x += alpha * p
        r -= alpha * Ap
        res_norm = float(np.linalg.norm(r))
        residuals.append(res_norm)
        if res_norm <= tol * b_norm:
            converged = True
            break
        z = M(r) if M is not None else r
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    return SolveResult(x=x, iterations=iterations, converged=converged, residual_norms=residuals)

"""Linear solvers: smoothed-aggregation AMG, CG, GMRES, smoothers and direct solves.

These are the substrates of the paper's two solver experiments: Table V preconditions
CG with an SA-AMG V-cycle whose aggregation scheme is swapped between Algorithm 2,
Algorithm 3 and the MueLu baselines; Table VI preconditions GMRES with point/cluster
multicolor Gauss-Seidel (see :mod:`repro.gs`).
"""

from __future__ import annotations

from .result import SolveResult
from .smoothers import JacobiSmoother, ChebyshevSmoother
from .direct import DirectSolver
from .cg import pcg
from .gmres import gmres
from .multigrid import AMGLevel, AMGHierarchy, build_hierarchy

__all__ = [
    "SolveResult",
    "JacobiSmoother",
    "ChebyshevSmoother",
    "DirectSolver",
    "pcg",
    "gmres",
    "AMGLevel",
    "AMGHierarchy",
    "build_hierarchy",
]

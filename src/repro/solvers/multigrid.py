"""Smoothed-aggregation algebraic multigrid (SA-AMG).

This is the Python analogue of the MueLu setup the paper's Table V experiment drives:

* **Setup** — starting from the fine matrix, repeatedly (i) aggregate the matrix graph
  with a pluggable aggregation scheme (Algorithm 2, Algorithm 3, D2C or the serial
  baseline), (ii) build the smoothed prolongation ``P = (I - omega D^{-1}A) P_tent``,
  and (iii) form the Galerkin coarse operator ``A_c = P^T A P`` — until the coarse
  system is small enough for a direct solve. The time spent inside the aggregation
  routines is recorded separately, matching the "Agg." column of Table V.
* **Solve** — a standard V-cycle (pre/post smoothing with damped Jacobi, exact
  coarsest solve) used as a preconditioner for CG (:func:`repro.solvers.cg.pcg`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np
import scipy.sparse as sp

from ..coarsen.aggregation import Aggregation
from ..coarsen.coarse import galerkin_operator
from ..coarsen.mis2_agg import mis2_aggregation
from ..coarsen.prolongation import smoothed_prolongation
from ..graph.build import from_scipy
from ..graph.csr import CSRGraph
from .cg import pcg
from .direct import DirectSolver
from .result import SolveResult
from .smoothers import JacobiSmoother

__all__ = ["AMGLevel", "AMGHierarchy", "build_hierarchy"]

AggregationFn = Callable[[CSRGraph], Aggregation]


@dataclass
class AMGLevel:
    """One level of the SA-AMG hierarchy."""

    #: Level index (0 = finest).
    index: int
    #: System matrix on this level.
    A: sp.csr_matrix
    #: Prolongation from the next-coarser level (None on the coarsest level).
    P: Optional[sp.csr_matrix] = None
    #: Restriction (transpose of P; None on the coarsest level).
    R: Optional[sp.csr_matrix] = None
    #: Aggregation used to coarsen this level (None on the coarsest level).
    aggregation: Optional[Aggregation] = None
    #: Pre/post smoother for this level (None on the coarsest level).
    smoother: Optional[JacobiSmoother] = None


@dataclass
class AMGHierarchy:
    """A complete SA-AMG hierarchy with V-cycle application."""

    levels: List[AMGLevel] = field(default_factory=list)
    coarse_solver: Optional[DirectSolver] = None
    #: Wall-clock seconds spent inside the aggregation routines during setup.
    aggregation_seconds: float = 0.0
    #: Total wall-clock seconds of the setup.
    setup_seconds: float = 0.0
    #: Name of the aggregation scheme used (for reporting).
    aggregation_name: str = ""

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def operator_complexity(self) -> float:
        """Sum of nonzeros over all level matrices divided by the fine nonzeros."""
        fine_nnz = self.levels[0].A.nnz
        return sum(level.A.nnz for level in self.levels) / fine_nnz if fine_nnz else 0.0

    def level_sizes(self) -> List[int]:
        return [int(level.A.shape[0]) for level in self.levels]

    # ------------------------------------------------------------------ V-cycle
    def vcycle(self, b: np.ndarray, x: Optional[np.ndarray] = None, level: int = 0) -> np.ndarray:
        """One V(1,1)-style cycle (the Jacobi smoother applies its configured sweeps)."""
        lvl = self.levels[level]
        b = np.asarray(b, dtype=np.float64)
        if level == self.num_levels - 1:
            assert self.coarse_solver is not None
            return self.coarse_solver.solve(b)
        x = np.zeros_like(b) if x is None else np.asarray(x, dtype=np.float64)
        assert lvl.smoother is not None and lvl.P is not None and lvl.R is not None
        x = lvl.smoother.apply(b, x)
        residual = b - lvl.A @ x
        coarse_b = lvl.R @ residual
        coarse_x = self.vcycle(coarse_b, None, level + 1)
        x = x + lvl.P @ coarse_x
        x = lvl.smoother.apply(b, x)
        return x

    def as_preconditioner(self) -> Callable[[np.ndarray], np.ndarray]:
        """Return ``M(r) -> z`` applying one V-cycle with zero initial guess."""
        return lambda r: self.vcycle(r)

    def solve(
        self,
        b: np.ndarray,
        tol: float = 1e-12,
        maxiter: int = 500,
        x0: Optional[np.ndarray] = None,
    ) -> SolveResult:
        """Solve ``A x = b`` with CG preconditioned by one V-cycle per iteration."""
        start = time.perf_counter()
        result = pcg(self.levels[0].A, b, M=self.as_preconditioner(), x0=x0, tol=tol, maxiter=maxiter)
        result.solve_seconds = time.perf_counter() - start
        result.setup_seconds = self.setup_seconds
        return result


def build_hierarchy(
    A: sp.spmatrix,
    aggregation_fn: AggregationFn = mis2_aggregation,
    max_levels: int = 10,
    min_coarse_size: int = 64,
    smoother_sweeps: int = 2,
    smoother_omega: float = 2.0 / 3.0,
    aggregation_name: Optional[str] = None,
) -> AMGHierarchy:
    """Build an SA-AMG hierarchy for ``A`` using ``aggregation_fn`` on every level.

    Parameters
    ----------
    A:
        Symmetric positive-definite system matrix.
    aggregation_fn:
        Maps a :class:`~repro.graph.csr.CSRGraph` to an
        :class:`~repro.coarsen.aggregation.Aggregation` (Algorithm 3 by default).
    max_levels:
        Maximum number of levels including the finest.
    min_coarse_size:
        Stop coarsening once a level has at most this many unknowns.
    smoother_sweeps / smoother_omega:
        Damped-Jacobi smoother configuration (the paper uses 2 sweeps).
    aggregation_name:
        Label recorded on the hierarchy (defaults to the function's ``__name__``).
    """
    setup_start = time.perf_counter()
    A = sp.csr_matrix(A).astype(np.float64)
    hierarchy = AMGHierarchy(
        aggregation_name=aggregation_name or getattr(aggregation_fn, "__name__", "custom")
    )
    current = A
    for level_index in range(max_levels):
        level = AMGLevel(index=level_index, A=current)
        hierarchy.levels.append(level)
        if current.shape[0] <= min_coarse_size or level_index == max_levels - 1:
            break
        graph = from_scipy(current)
        agg_start = time.perf_counter()
        aggregation = aggregation_fn(graph)
        hierarchy.aggregation_seconds += time.perf_counter() - agg_start
        if aggregation.num_aggregates >= current.shape[0] or aggregation.num_aggregates == 0:
            # Coarsening stagnated; stop here and solve this level directly.
            break
        P, _ = smoothed_prolongation(current, aggregation)
        coarse = galerkin_operator(current, P)
        level.P = P
        level.R = sp.csr_matrix(P.T)
        level.aggregation = aggregation
        level.smoother = JacobiSmoother(current, omega=smoother_omega, sweeps=smoother_sweeps)
        current = coarse
    hierarchy.coarse_solver = DirectSolver(hierarchy.levels[-1].A)
    hierarchy.setup_seconds = time.perf_counter() - setup_start
    return hierarchy

"""Multilevel graph partitioning built on MIS-2 coarsening.

The paper positions MIS-2 coarsening as a building block for multilevel methods
beyond multigrid and explicitly names multilevel graph partitioning (Gilbert et al.,
IPDPS 2021) as the follow-on application it plans to evaluate. This package
implements that extension end to end:

* :func:`heavy_edge_matching` — the classical HEM coarsener, the baseline Gilbert
  et al. compare MIS-2 coarsening against.
* :func:`bisect_graph` — greedy growth bisection plus boundary (FM-style) refinement.
* :func:`multilevel_bisection` / :func:`multilevel_kway` — the full V-cycle: coarsen
  with any aggregation scheme (Algorithm 3 by default), partition the coarsest graph,
  project back, refine on every level.
* :func:`edge_cut` / :func:`partition_balance` — quality metrics.
"""

from __future__ import annotations

from .matching import heavy_edge_matching
from .metrics import edge_cut, partition_balance, is_valid_partition
from .bisect import bisect_graph, refine_bisection
from .multilevel import multilevel_bisection, multilevel_kway, PartitionResult

__all__ = [
    "heavy_edge_matching",
    "edge_cut",
    "partition_balance",
    "is_valid_partition",
    "bisect_graph",
    "refine_bisection",
    "multilevel_bisection",
    "multilevel_kway",
    "PartitionResult",
]

"""Heavy-edge-matching (HEM) coarsening.

HEM is the standard coarsener of multilevel partitioners (METIS-style): vertices are
visited in a deterministic order and each unmatched vertex is matched with its
unmatched neighbour of largest edge weight (here: unweighted, so the first unmatched
neighbour with the smallest id), producing aggregates of size one or two. Gilbert et
al. — the multilevel-partitioning work the paper cites — use HEM as the baseline that
MIS-2 coarsening is compared against; this module provides that baseline so the
extension benches can reproduce the comparison.
"""

from __future__ import annotations

import numpy as np

from ..coarsen.aggregation import Aggregation
from ..graph.csr import CSRGraph

__all__ = ["heavy_edge_matching"]


def heavy_edge_matching(graph: CSRGraph, seed: int = 0) -> Aggregation:
    """Coarsen ``graph`` by greedy matching (aggregates of size one or two).

    Vertices are visited in a pseudo-random but deterministic order derived from
    ``seed``; each unmatched vertex pairs with its first unmatched neighbour. The
    result is returned as an :class:`~repro.coarsen.aggregation.Aggregation` so the
    multilevel driver can use HEM and the MIS-2 coarseners interchangeably.
    """
    n = graph.num_vertices
    labels = -np.ones(n, dtype=np.int64)
    if n == 0:
        return Aggregation(labels, 0, algorithm="hem")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    rowmap, entries = graph.rowmap, graph.entries
    next_aggregate = 0
    for v in order:
        if labels[v] >= 0:
            continue
        labels[v] = next_aggregate
        for w in entries[rowmap[v]: rowmap[v + 1]]:
            if labels[w] < 0:
                labels[w] = next_aggregate
                break
        next_aggregate += 1
    return Aggregation(
        labels=labels,
        num_aggregates=next_aggregate,
        algorithm="hem",
        deterministic=True,
        phase_vertex_counts={"matched": int(np.count_nonzero(labels >= 0))},
    )

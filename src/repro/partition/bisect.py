"""Graph bisection: greedy growth plus boundary refinement.

The coarsest level of a multilevel partitioner is small, so a simple deterministic
heuristic suffices: grow one part by breadth-first search from a pseudo-peripheral
vertex until it holds half the vertices, then improve the cut with a few passes of
gain-based boundary refinement (a lightweight Fiduccia–Mattheyses variant that moves a
vertex to the other side when that strictly reduces the cut without violating the
balance constraint). The same refinement routine is reused on every level of the
multilevel V-cycle after the projection step.
"""

from __future__ import annotations

from collections import deque
from typing import Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.distance import bfs_distances
from .metrics import edge_cut

__all__ = ["bisect_graph", "refine_bisection"]


def _pseudo_peripheral_vertex(graph: CSRGraph) -> int:
    """A vertex far from vertex 0 (two BFS passes), a good seed for region growth."""
    dist = bfs_distances(graph, 0)
    far = int(np.argmax(np.where(dist < 0, -1, dist)))
    dist2 = bfs_distances(graph, far)
    return int(np.argmax(np.where(dist2 < 0, -1, dist2)))


def bisect_graph(
    graph: CSRGraph, balance_tolerance: float = 1.1, refine_passes: int = 4
) -> np.ndarray:
    """Bisect ``graph`` into parts 0 and 1 of (nearly) equal size.

    Returns the per-vertex part array. The result is deterministic.
    """
    n = graph.num_vertices
    parts = np.zeros(n, dtype=np.int64)
    if n <= 1:
        return parts
    target = n // 2
    seed = _pseudo_peripheral_vertex(graph)
    taken = 0
    seen = np.zeros(n, dtype=bool)
    queue = deque([seed])
    seen[seed] = True
    order = []
    while queue and taken < target:
        v = queue.popleft()
        parts[v] = 1
        order.append(v)
        taken += 1
        for w in graph.neighbors(v):
            w = int(w)
            if not seen[w]:
                seen[w] = True
                queue.append(w)
    if taken < target:
        # Disconnected graph: absorb untouched vertices in id order until balanced.
        for v in range(n):
            if taken >= target:
                break
            if parts[v] == 0 and not seen[v]:
                parts[v] = 1
                taken += 1
    return refine_bisection(graph, parts, balance_tolerance, refine_passes)


def refine_bisection(
    graph: CSRGraph,
    parts: np.ndarray,
    balance_tolerance: float = 1.1,
    passes: int = 4,
) -> np.ndarray:
    """Greedy boundary refinement of a bisection.

    Each pass visits the boundary vertices in order of decreasing gain (number of
    neighbours across minus neighbours on the same side) and moves a vertex when the
    gain is positive and the balance constraint ``max part <= tolerance * n/2`` stays
    satisfied. Deterministic; stops early when a pass makes no move.
    """
    parts = np.asarray(parts, dtype=np.int64).copy()
    n = graph.num_vertices
    if n == 0:
        return parts
    limit = balance_tolerance * (n / 2.0)
    sizes = np.bincount(parts, minlength=2).astype(np.int64)
    rowmap, entries = graph.rowmap, graph.entries
    for _ in range(max(0, passes)):
        moved = False
        # Gains computed against the state at the start of the pass, applied
        # sequentially with running size checks (deterministic order: by gain, id).
        src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
        other = (parts[src] != parts[entries.astype(np.int64)]).astype(np.int64)
        external = np.bincount(src, weights=other, minlength=n)
        internal = graph.degrees() - external
        gains = external - internal
        boundary = np.nonzero(external > 0)[0]
        if boundary.size == 0:
            break
        order = boundary[np.lexsort((boundary, -gains[boundary]))]
        for v in order:
            if gains[v] <= 0:
                break
            src_part = parts[v]
            dst_part = 1 - src_part
            if sizes[dst_part] + 1 > limit:
                continue
            # Recompute the gain against the *current* labels before committing.
            nbrs = entries[rowmap[v]: rowmap[v + 1]].astype(np.int64)
            ext = int(np.count_nonzero(parts[nbrs] != src_part))
            gain_now = ext - (nbrs.size - ext)
            if gain_now <= 0:
                continue
            parts[v] = dst_part
            sizes[src_part] -= 1
            sizes[dst_part] += 1
            moved = True
        if not moved:
            break
    return parts

"""Multilevel bisection and recursive k-way partitioning.

The standard multilevel scheme: coarsen the graph until it is small (using any of the
aggregation schemes in :mod:`repro.coarsen` — Algorithm 3 by default, or
heavy-edge matching as the classical baseline), bisect the coarsest graph, project the
partition back level by level, and refine the boundary after every projection. This is
the workflow the paper names as future work (replacing Bell's coarsening inside
Gilbert et al.'s performance-portable partitioner with Algorithm 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..coarsen.aggregation import Aggregation
from ..coarsen.mis2_agg import mis2_aggregation
from ..coarsen.multilevel import coarsen_recursive
from ..graph.csr import CSRGraph
from .bisect import bisect_graph, refine_bisection
from .metrics import edge_cut, partition_balance

__all__ = ["PartitionResult", "multilevel_bisection", "multilevel_kway"]

AggregationFn = Callable[[CSRGraph], Aggregation]


@dataclass
class PartitionResult:
    """Outcome of a multilevel partitioning run."""

    #: Per-vertex part ids on the finest graph.
    parts: np.ndarray
    #: Number of parts requested.
    num_parts: int
    #: Edge cut on the finest graph.
    cut: int
    #: Load imbalance (max part size / ideal size).
    balance: float
    #: Vertex counts of the coarsening hierarchy, finest first.
    level_sizes: List[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionResult(num_parts={self.num_parts}, cut={self.cut}, "
            f"balance={self.balance:.3f}, levels={self.level_sizes})"
        )


def multilevel_bisection(
    graph: CSRGraph,
    aggregation_fn: AggregationFn = mis2_aggregation,
    coarse_size: int = 128,
    balance_tolerance: float = 1.1,
    refine_passes: int = 4,
) -> PartitionResult:
    """Bisect ``graph`` with the multilevel scheme.

    Parameters
    ----------
    graph:
        Graph to partition.
    aggregation_fn:
        Coarsening used at every level (Algorithm 3 by default; pass
        :func:`repro.partition.heavy_edge_matching` for the HEM baseline).
    coarse_size:
        Stop coarsening once the graph has at most this many vertices.
    balance_tolerance:
        Maximum allowed ``max part size / (n/2)``.
    refine_passes:
        Boundary-refinement passes applied on every level during uncoarsening.
    """
    hierarchy = coarsen_recursive(graph, aggregation_fn=aggregation_fn, target_size=coarse_size)
    parts = bisect_graph(hierarchy.coarsest, balance_tolerance, refine_passes)
    # Uncoarsen: project level by level and refine after every projection.
    for level in reversed(hierarchy.levels[:-1]):
        assert level.aggregation is not None
        parts = parts[level.aggregation.labels]
        parts = refine_bisection(level.graph, parts, balance_tolerance, refine_passes)
    return PartitionResult(
        parts=parts,
        num_parts=2,
        cut=edge_cut(graph, parts),
        balance=partition_balance(parts, 2),
        level_sizes=hierarchy.vertex_counts(),
    )


def multilevel_kway(
    graph: CSRGraph,
    num_parts: int,
    aggregation_fn: AggregationFn = mis2_aggregation,
    coarse_size: int = 128,
    balance_tolerance: float = 1.15,
) -> PartitionResult:
    """Recursive-bisection k-way partitioning (``num_parts`` must be a power of two).

    Each recursion level bisects every current part's induced subgraph independently;
    part ids are assigned so that the final labels lie in ``[0, num_parts)``.
    """
    if num_parts < 1 or (num_parts & (num_parts - 1)) != 0:
        raise ValueError("num_parts must be a positive power of two")
    n = graph.num_vertices
    parts = np.zeros(n, dtype=np.int64)
    if num_parts == 1 or n == 0:
        return PartitionResult(parts, num_parts, 0, partition_balance(parts, num_parts), [n])

    from ..graph.ops import induced_subgraph

    def recurse(vertices: np.ndarray, first_part: int, parts_remaining: int) -> None:
        if parts_remaining == 1 or vertices.size <= 1:
            parts[vertices] = first_part
            return
        sub, mapping = induced_subgraph(graph, vertices)
        result = multilevel_bisection(
            sub, aggregation_fn=aggregation_fn, coarse_size=coarse_size,
            balance_tolerance=balance_tolerance,
        )
        left = mapping[result.parts == 0]
        right = mapping[result.parts == 1]
        recurse(left, first_part, parts_remaining // 2)
        recurse(right, first_part + parts_remaining // 2, parts_remaining // 2)

    recurse(np.arange(n, dtype=np.int64), 0, num_parts)
    return PartitionResult(
        parts=parts,
        num_parts=num_parts,
        cut=edge_cut(graph, parts),
        balance=partition_balance(parts, num_parts),
        level_sizes=[n],
    )

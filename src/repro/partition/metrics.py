"""Partition-quality metrics: edge cut, balance, validity."""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["edge_cut", "partition_balance", "is_valid_partition"]


def is_valid_partition(graph: CSRGraph, parts: np.ndarray, num_parts: int) -> bool:
    """True when every vertex has a part id in ``[0, num_parts)``."""
    parts = np.asarray(parts)
    if parts.shape != (graph.num_vertices,):
        return False
    if graph.num_vertices == 0:
        return True
    return bool(parts.min() >= 0 and parts.max() < num_parts)


def edge_cut(graph: CSRGraph, parts: np.ndarray) -> int:
    """Number of undirected edges whose endpoints lie in different parts."""
    parts = np.asarray(parts)
    if parts.shape != (graph.num_vertices,):
        raise ValueError("parts must have one entry per vertex")
    src = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees())
    dst = graph.entries.astype(np.int64)
    crossing = parts[src] != parts[dst]
    # Each undirected edge is stored twice.
    return int(np.count_nonzero(crossing) // 2)


def partition_balance(parts: np.ndarray, num_parts: int) -> float:
    """Load imbalance: ``max part size / ideal part size`` (1.0 is perfectly balanced)."""
    parts = np.asarray(parts)
    if parts.size == 0:
        return 1.0
    sizes = np.bincount(parts, minlength=num_parts)
    ideal = parts.size / num_parts
    return float(sizes.max() / ideal) if ideal > 0 else float("inf")

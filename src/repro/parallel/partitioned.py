"""Partition-parallel execution: shard the graph kernels *within* one graph.

PR 1/2 shard only *across* graphs (``ExecutionBackend.map_graphs`` fans a batch
of independent graphs over a pool). This module shards *one* graph: the vertex
set is split into ``k`` parts (with :func:`repro.partition.multilevel_kway` by
default), each part owns its vertices plus read-only *ghost* copies of the
neighbours it can see in other parts, and every iteration of the randomized
MIS / coloring kernels runs as a bulk-synchronous superstep:

1. every part computes the iteration's phase for the vertices it owns — an
   **interior** vertex (all neighbours owned) needs purely local data, a
   **boundary** vertex additionally reads the ghost values refreshed by the
   previous exchange;
2. a deterministic **ghost exchange** scatters the owned results back into the
   shared state and re-gathers each part's halo before the next phase.

The determinism rule that makes this work: each phase task is a *pure function
of the pre-superstep snapshot* and writes only part-owned vertices, and the
per-vertex update applied is exactly the unpartitioned kernel's update.
Boundary vertices are therefore resolved by the same fixup recurrence the
serial kernel applies, just evaluated shard-wise — so the final MIS / coloring
is **bit-identical to the unpartitioned NumPy reference for any part count,
any part labelling and any execution backend** (the partition-equivalence test
matrix enforces exactly this). Part quality (edge cut, boundary size) affects
only the exchange volume, never the result.

``ExecutionBackend.map_partitions_resident`` is the seam the supersteps run
through: each kernel run opens a rank-resident session that ships every
part's loop-invariant payload (local CSR, index maps, static parameters) and
initial state exactly once, then runs each phase as ``fn(payload, state,
delta)`` where only the *delta* crosses the boundary — the task keeps its
owned state current itself. Deltas are **O(changed halo)**, not O(halo): a
coordinator-side :class:`HaloDeltaTracker` records which owned values each
phase actually modified (the phase results are exactly the touched entries)
and ships each part only the halo positions changed since its last refresh,
as ``(positions, values)`` pairs with a dense fallback; each iteration's
worklist indices ship once, with the iteration's first phase, and are
stashed in worker-side ``state`` for the later phases that re-read them. The
session is in-process on the reference and threaded backends and pins part
``i`` to a persistent slot worker on the chunked backend (payloads cached
under the layout token, so even reruns skip the CSR pickle);
``resident=False`` selects the non-resident baseline that re-ships
payload+state every superstep through plain ``map_partitions``, and
``changed_deltas=False`` the full-halo wire format (whole halos, worklists
re-sent per phase) kept runnable so the changed-delta win stays gateable.
The distributed backend (:mod:`repro.parallel.distributed`) runs the same
session over sockets — parts pinned to rank processes, the delta exchange
carried as framed messages with measured on-the-wire byte counters — and
the drivers here don't change, which is exactly what this seam is for.
Shipped bytes are accounted logically (array ``nbytes``, identical
on every backend), in **both directions** — deltas out, result arrays back —
and recorded on ``PartitionStats``.

``overlap=True`` (the default on resident runs) breaks the per-phase barrier:
each superstep phase splits into a *boundary* sub-phase (the owned vertices
with foreign neighbours, carrying all halo updates and scalars) and an
*interior* sub-phase (a bare sub-worklist), submitted back-to-back through
:meth:`ResidentSession.run_async` so the next phase's deltas ship while
workers still chew interior worklists. Determinism survives because an
interior vertex appears in **no other part's halo** — marking only boundary
changes before a ``take`` dirties exactly the same positions as the barrier
schedule — and because sessions execute each part's sub-phases FIFO, so a
phase that reads owned values written by the previous phase's interior
sub-task always runs after it. Phases whose writes could feed a sibling
sub-phase's reads (Luby selection, coloring assignment/conflict) defer their
state commits to the interior sub-task, keeping both halves pure functions
of the pre-superstep snapshot. Sub-phase pairs share one accounting group,
so supersteps, shipped bytes and the per-superstep maximum are identical to
the barrier baseline — only wall-clock differs, which is what the
``--no-overlap`` bench baseline gates.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..graph.csr import CSRGraph
from ..hashing.packing import TuplePacking
from ..hashing.priorities import PriorityScheme
from . import primitives as _ref
from .backends import ExecutionBackend, ResidentSession, resolve_backend
from .costmodel import TrafficCounter

__all__ = [
    "GraphPart",
    "HaloDeltaTracker",
    "PartitionLayout",
    "PartitionStats",
    "build_partition_layout",
    "carry_partition_labels",
    "partition_vertices",
    "partitioned_greedy_color",
    "partitioned_kk_mis2",
    "partitioned_luby_mis1",
]

#: Accepted ``partitions=`` specifications: a part count, an explicit per-vertex
#: label array, or a prebuilt layout.
PartitionSpec = Union[int, np.integer, np.ndarray, Sequence[int], "PartitionLayout"]

#: How far a layout's part count may exceed its vertex count before it is
#: rejected as a sparse (non-part-id) labelling.
_MAX_EMPTY_PART_SLACK = 1024


# --------------------------------------------------------------------- layout
@dataclass(frozen=True)
class GraphPart:
    """One shard of a partitioned graph: owned vertices, ghosts, local CSR.

    The local vertex space is ``ids`` (sorted global ids of owned + halo
    vertices); ``rowmap``/``entries`` store the adjacency of the *owned* rows
    in that local space (halo rows are empty — ghosts are read, never
    expanded). ``owned_local[i]`` is the local index of ``owned[i]``.
    """

    part_id: int
    #: Sorted global ids owned by this part.
    owned: np.ndarray
    #: Sorted global ids of ghost vertices (neighbours owned by other parts).
    halo: np.ndarray
    #: Sorted global ids of the local vertex space (owned ∪ halo).
    ids: np.ndarray
    #: Local indices of the owned vertices within ``ids``.
    owned_local: np.ndarray
    #: Per-owned-vertex mask: True when every neighbour is owned by this part.
    interior_mask: np.ndarray
    #: Local CSR rowmap over ``ids`` (halo rows empty).
    rowmap: np.ndarray
    #: Local CSR entries (indices into ``ids``).
    entries: np.ndarray

    @property
    def num_owned(self) -> int:
        return int(self.owned.size)

    @property
    def num_halo(self) -> int:
        return int(self.halo.size)

    @property
    def num_interior(self) -> int:
        return int(np.count_nonzero(self.interior_mask))

    @property
    def num_boundary(self) -> int:
        return self.num_owned - self.num_interior

    def interior(self) -> np.ndarray:
        """Global ids of the owned vertices with no foreign neighbour."""
        return self.owned[self.interior_mask]

    def boundary(self) -> np.ndarray:
        """Global ids of the owned vertices adjacent to another part."""
        return self.owned[~self.interior_mask]

    @cached_property
    def interior_local(self) -> np.ndarray:
        """Boolean mask over the local vertex space: True on interior rows.

        Lets the overlapped drivers split a worklist with one O(w) gather
        from already-computed local indices instead of re-searching the
        owned array every phase. Coordinator-side only — never shipped.
        """
        mask = np.zeros(self.ids.size, dtype=bool)
        mask[self.owned_local[self.interior_mask]] = True
        return mask

    def local(self, vertices: np.ndarray) -> np.ndarray:
        """Local indices of ``vertices`` (global ids that must lie in ``ids``).

        A global id outside the part's local vertex space is a caller bug that
        a bare ``searchsorted`` would silently map onto an arbitrary local
        vertex (corrupting results without a trace), so membership is checked
        and violations raise.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        idx = np.searchsorted(self.ids, vertices)
        in_range = idx < self.ids.size
        member = np.zeros(vertices.shape, dtype=bool)
        member[in_range] = self.ids[idx[in_range]] == vertices[in_range]
        if not member.all():
            bad = np.unique(vertices[~member])
            shown = ", ".join(str(v) for v in bad[:5].tolist())
            suffix = ", ..." if bad.size > 5 else ""
            raise ValueError(
                f"global vertex id(s) [{shown}{suffix}] are not local to part "
                f"{self.part_id} (not owned and not in its halo)"
            )
        return idx

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphPart(part_id={self.part_id}, owned={self.num_owned}, "
            f"halo={self.num_halo}, boundary={self.num_boundary})"
        )


@dataclass(frozen=True)
class PartitionStats:
    """Deterministic partitioning measurables recorded on partitioned results."""

    #: Number of parts in the layout (including empty ones).
    num_parts: int
    #: Vertices whose whole neighbourhood is part-local.
    interior_vertices: int
    #: Vertices with at least one neighbour in another part.
    boundary_vertices: int
    #: Total ghost copies held across parts (communication footprint).
    halo_vertices: int
    #: Undirected edges crossing parts.
    cut_edges: int
    #: Ghost-exchange rounds (superstep phases) the driver executed.
    supersteps: int
    #: Logical bytes shipped once at session open (per-part CSR + index maps +
    #: initial state). 0 on non-resident runs, where everything re-ships.
    resident_bytes: int = 0
    #: Logical bytes shipped across all supersteps, both directions: changed
    #: halo values, once-per-iteration worklist indices and phase scalars out
    #: plus the touched-entry result arrays back on the resident path;
    #: payload + state + delta out and state + result back per phase on the
    #: non-resident baseline.
    superstep_bytes: int = 0
    #: Largest single-superstep shipment — O(changed halo + worklist) on the
    #: resident path once the CSR has shipped, O(CSR) on the non-resident
    #: baseline.
    max_superstep_bytes: int = 0
    #: Coordinator wall-clock spent computing between session calls (elapsed
    #: minus exchange minus idle). ``perf_counter``-based and machine-varying —
    #: unlike every field above, the ``*_seconds`` triple is NOT deterministic
    #: and must never join the gated counts.
    compute_seconds: float = 0.0
    #: Wall-clock spent preparing and shipping phase deltas (the
    #: ``run_async`` submit path: byte accounting + serialisation + send).
    exchange_seconds: float = 0.0
    #: Wall-clock the coordinator spent blocked waiting for phase results —
    #: the time the overlap schedule exists to shrink.
    idle_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "num_parts": self.num_parts,
            "interior_vertices": self.interior_vertices,
            "boundary_vertices": self.boundary_vertices,
            "halo_vertices": self.halo_vertices,
            "cut_edges": self.cut_edges,
            "supersteps": self.supersteps,
            "resident_bytes": self.resident_bytes,
            "superstep_bytes": self.superstep_bytes,
            "max_superstep_bytes": self.max_superstep_bytes,
            "compute_seconds": self.compute_seconds,
            "exchange_seconds": self.exchange_seconds,
            "idle_seconds": self.idle_seconds,
        }


#: Monotonic source of per-layout tokens (see :attr:`PartitionLayout.token`).
_LAYOUT_TOKENS = itertools.count(1)


def _next_layout_token() -> str:
    """A process-unique token naming one :class:`PartitionLayout` instance.

    The token keys the rank-resident payload caches: a worker that has part
    ``i`` of token ``t`` resident never receives that part's CSR again. A new
    layout object — even over the same graph and labels — gets a fresh token,
    which is the invalidation rule: resident state is valid exactly as long as
    the layout object that produced it is alive and reused.
    """
    return f"layout-{os.getpid()}-{next(_LAYOUT_TOKENS)}"


@dataclass(frozen=True)
class PartitionLayout:
    """A k-way split of one graph into :class:`GraphPart` shards."""

    #: Per-vertex part labels on the original graph.
    labels: np.ndarray
    #: Number of parts (some may be empty).
    num_parts: int
    #: The shards, indexed by part id.
    parts: Tuple[GraphPart, ...]
    #: Undirected edges whose endpoints lie in different parts.
    cut_edges: int
    #: Process-unique identity keying the rank-resident payload caches.
    token: str = field(default_factory=_next_layout_token)

    @property
    def num_vertices(self) -> int:
        return int(self.labels.size)

    @property
    def interior_vertices(self) -> int:
        return sum(p.num_interior for p in self.parts)

    @property
    def boundary_vertices(self) -> int:
        return sum(p.num_boundary for p in self.parts)

    @property
    def halo_vertices(self) -> int:
        return sum(p.num_halo for p in self.parts)

    def stats(
        self,
        supersteps: int,
        session: "Optional[ResidentSession]" = None,
        elapsed_seconds: Optional[float] = None,
    ) -> PartitionStats:
        """Snapshot of the layout's measurables after a ``supersteps``-long run.

        ``session`` (when the run went through the resident seam) contributes
        the shipped-bytes accounting and the exchange/idle wall-clock meters;
        without one the byte and timing fields are zero. ``elapsed_seconds``
        (the driver's total kernel-loop wall-clock) additionally yields
        ``compute_seconds`` as the remainder not spent shipping or waiting.
        """
        exchange = 0.0 if session is None else float(session.ship_seconds)
        idle = 0.0 if session is None else float(session.idle_seconds)
        compute = 0.0
        if elapsed_seconds is not None:
            compute = max(0.0, float(elapsed_seconds) - exchange - idle)
        return PartitionStats(
            num_parts=self.num_parts,
            interior_vertices=self.interior_vertices,
            boundary_vertices=self.boundary_vertices,
            halo_vertices=self.halo_vertices,
            cut_edges=self.cut_edges,
            supersteps=int(supersteps),
            resident_bytes=0 if session is None else int(session.resident_bytes),
            superstep_bytes=0 if session is None else int(session.superstep_bytes),
            max_superstep_bytes=0 if session is None else int(session.max_superstep_bytes),
            compute_seconds=compute,
            exchange_seconds=exchange,
            idle_seconds=idle,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionLayout(num_parts={self.num_parts}, "
            f"vertices={self.num_vertices}, boundary={self.boundary_vertices}, "
            f"cut={self.cut_edges})"
        )


def partition_vertices(graph: CSRGraph, num_parts: int) -> np.ndarray:
    """Deterministic per-vertex part labels splitting ``graph`` into ``num_parts``.

    Power-of-two counts use the multilevel recursive-bisection partitioner
    (:func:`repro.partition.multilevel_kway`, MIS-2 coarsening inside); other
    counts fall back to balanced contiguous vertex blocks. The choice affects
    only boundary sizes — partitioned kernel results are label-independent.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    n = graph.num_vertices
    if num_parts == 1 or n == 0:
        return np.zeros(n, dtype=np.int64)
    if num_parts & (num_parts - 1) == 0:
        from ..partition.multilevel import multilevel_kway

        return np.asarray(multilevel_kway(graph, num_parts).parts, dtype=np.int64)
    return (np.arange(n, dtype=np.int64) * num_parts) // n


def _build_part(graph: CSRGraph, labels: np.ndarray, part_id: int) -> GraphPart:
    owned = np.nonzero(labels == part_id)[0].astype(np.int64)
    slots, seg = _ref.expand_rows(graph.rowmap, owned)
    nbrs = graph.entries[slots].astype(np.int64)
    foreign = labels[nbrs] != part_id if nbrs.size else np.zeros(0, dtype=bool)
    halo = np.unique(nbrs[foreign])
    ids = np.union1d(owned, halo)
    owned_local = np.searchsorted(ids, owned)
    lens = np.diff(seg)
    has_foreign = np.zeros(owned.size, dtype=bool)
    has_foreign[np.repeat(np.arange(owned.size, dtype=np.int64), lens)[foreign]] = True
    # Owned rows keep their adjacency (remapped into the local space); halo
    # rows stay empty — ghosts are only ever read.
    rowmap = np.zeros(ids.size + 1, dtype=np.int64)
    rowmap[owned_local + 1] = lens
    np.cumsum(rowmap, out=rowmap)
    entries = np.searchsorted(ids, nbrs)
    return GraphPart(
        part_id=int(part_id),
        owned=owned,
        halo=halo,
        ids=ids,
        owned_local=owned_local,
        interior_mask=~has_foreign,
        rowmap=rowmap,
        entries=entries,
    )


def build_partition_layout(graph: CSRGraph, partitions: PartitionSpec) -> PartitionLayout:
    """Resolve a ``partitions=`` specification into a :class:`PartitionLayout`.

    ``partitions`` may be a part count (labels come from
    :func:`partition_vertices`), an explicit per-vertex label array (labels in
    ``[0, max+1)``; empty parts are allowed), or an existing layout (returned
    unchanged).
    """
    if isinstance(partitions, PartitionLayout):
        return partitions
    n = graph.num_vertices
    if isinstance(partitions, (int, np.integer)):
        num_parts = int(partitions)
        labels = partition_vertices(graph, num_parts)
    else:
        labels = np.asarray(partitions, dtype=np.int64)
        if labels.shape != (n,):
            raise ValueError(
                f"partition labels must have one entry per vertex "
                f"(got shape {labels.shape} for {n} vertices)"
            )
        if n and labels.min() < 0:
            raise ValueError("partition labels must be non-negative")
        num_parts = int(labels.max()) + 1 if n else 1
    # One shard is materialised per part id, so a sparse labelling (hashes,
    # component ids) would silently allocate max(label)+1 mostly-empty shards.
    # Parts may legitimately exceed |V| slightly (restricted labels on a small
    # subgraph keep the original part ids), hence the generous slack.
    if num_parts > n + _MAX_EMPTY_PART_SLACK:
        raise ValueError(
            f"{num_parts} parts for a {n}-vertex graph — partition labels must "
            f"be (near-)dense part ids, not arbitrary keys"
        )
    parts = tuple(_build_part(graph, labels, p) for p in range(num_parts))
    from ..partition.metrics import edge_cut

    return PartitionLayout(
        labels=labels,
        num_parts=num_parts,
        parts=parts,
        cut_edges=edge_cut(graph, labels),
    )


def carry_partition_labels(
    old_labels: np.ndarray,
    num_parts: int,
    keep: "Optional[np.ndarray]" = None,
    new_vertices: int = 0,
) -> np.ndarray:
    """Part labels for a mutated graph, carried over from the previous layout.

    The GraphService rebuilds its (immutable) CSR graph on every mutation and
    must mint a *fresh* :class:`PartitionLayout` — a new token, which is
    exactly what invalidates the worker-resident payload caches keyed on it.
    But repartitioning from scratch would move surviving vertices between
    parts on every mutation, churning the whole resident store for a local
    edit. This helper keeps the assignment stable instead: surviving vertices
    keep their old part (``keep`` selects them, in new-id order, when
    vertices were removed) and ``new_vertices`` appended vertices go to the
    currently lightest parts. Empty parts remain legal layout inputs, so a
    part that loses all its vertices keeps its slot.
    """
    old_labels = np.asarray(old_labels, dtype=np.int64)
    labels = old_labels if keep is None else old_labels[np.asarray(keep, dtype=np.int64)]
    if new_vertices:
        sizes = np.bincount(labels, minlength=max(1, int(num_parts))).astype(np.int64)
        extra = np.empty(int(new_vertices), dtype=np.int64)
        for i in range(int(new_vertices)):
            part = int(np.argmin(sizes))
            extra[i] = part
            sizes[part] += 1
        labels = np.concatenate([labels, extra]) if labels.size else extra
    return labels


# ------------------------------------------------------- changed-halo tracking
#
# The original resident protocol shipped every part's *entire* halo on every
# ghost-reading phase — O(halo) per superstep even when the worklist (and hence
# the set of values that could possibly have changed) had shrunk to a handful
# of vertices. The coordinator already learns exactly which owned values each
# phase modified (the phase results are the touched entries), so it can track,
# per (array, part), which halo positions changed since that part's last
# refresh and ship only those. The delta unit is a **halo update**: a
# ``(positions, values)`` pair where ``positions`` indexes the part's halo in
# halo order (``None`` marks a dense update carrying the full halo values —
# the crossover fallback when the changed set plus its index overhead would
# outweigh a dense shipment). Cumulatively applying a part's updates to its
# session-open halo snapshot reconstructs the full-halo exchange exactly —
# the invariant the Hypothesis suite checks.


def _apply_halo_update(arr: np.ndarray, halo_local: np.ndarray, update) -> None:
    """Worker-side: refresh ``arr``'s halo entries from one halo update."""
    positions, values = update
    if positions is None:
        arr[halo_local] = values
    elif positions.size:
        arr[halo_local[positions]] = values


def _scatter_changed(arr: np.ndarray, idx: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Coordinator-side: scatter ``new`` into ``arr`` at ``idx`` and return the
    ids whose value actually changed (what the halo tracker needs to mark)."""
    changed = idx[arr[idx] != new]
    arr[idx] = new
    return changed


class HaloDeltaTracker:
    """Coordinator-side bookkeeping: which halo values must each part re-read?

    One tracker serves one partitioned kernel run. ``names`` are the shared
    per-vertex arrays the kernel ghosts (e.g. ``("T", "M")`` for MIS-2). After
    every phase the driver calls :meth:`mark` with the ids whose value that
    phase actually changed; before a ghost-reading phase it calls :meth:`take`
    per live part, which returns the minimal halo update — the positions
    dirtied since that part's last take, or a dense fallback when the sparse
    encoding would cost more — and resets the part's dirty set.

    At session open each part's state ships with its halo entries current, so
    every dirty set starts empty. ``changed_only=False`` selects the
    full-halo protocol (every take is dense, marking is a no-op) — the PR 4
    wire format, kept runnable so ``bench compare`` can gate the changed-delta
    win against it.
    """

    def __init__(
        self,
        layout: PartitionLayout,
        names: Sequence[str],
        changed_only: bool = True,
    ) -> None:
        self._halos = [p.halo for p in layout.parts]
        self.changed_only = bool(changed_only)
        if self.changed_only:
            self._dirty: Dict[str, List[np.ndarray]] = {
                name: [np.zeros(h.size, dtype=bool) for h in self._halos]
                for name in names
            }

    def mark(self, name: str, changed) -> None:
        """Record that the values of ``changed`` global ids were modified.

        ``changed`` may be one id array or a list of them (one per live part —
        ownership makes them disjoint); order is irrelevant.
        """
        if not self.changed_only:
            return
        if isinstance(changed, (list, tuple)):
            changed = [c for c in changed if c.size]
            if not changed:
                return
            changed = changed[0] if len(changed) == 1 else np.concatenate(changed)
        if changed.size == 0:
            return
        for dirty, halo in zip(self._dirty[name], self._halos):
            if halo.size == 0:
                continue
            idx = np.searchsorted(halo, changed)
            in_range = idx < halo.size
            sub = idx[in_range]
            hits = sub[halo[sub] == changed[in_range]]
            if hits.size:
                dirty[hits] = True

    def take(self, name: str, part: int, values: np.ndarray):
        """The halo update part ``part`` needs for array ``name``.

        ``values`` is the shared *global* array being ghosted; only the
        entries that actually ship are gathered from it — the sparse path
        still scans the part's halo-sized dirty mask (one bool per ghost),
        but never materialises a halo-sized value slice. The returned
        update is ``(positions, changed_values)`` over the dirty positions,
        or ``(None, full_halo_values)`` when dense ships fewer logical bytes
        (positions are int64 words, so the crossover sits at
        ``|changed| * (8 + itemsize) >= |halo| * itemsize``). Clears the
        part's dirty set — the worker's halo copy is current once applied.
        """
        halo = self._halos[part]
        if not self.changed_only:
            return (None, values[halo])
        dirty = self._dirty[name][part]
        positions = np.nonzero(dirty)[0].astype(np.int64)
        dirty[positions] = False
        item = int(values.dtype.itemsize)
        if halo.size and positions.size * (positions.dtype.itemsize + item) >= halo.size * item:
            return (None, values[halo])
        return (positions, values[halo[positions]])


# --------------------------------------------- resident superstep task functions
#
# Module-level and picklable: they cross the chunked backend's pinned slot
# pools. Each task function has the resident signature ``fn(payload, state,
# delta)`` — ``payload`` is the part's loop-invariant shipment (local CSR,
# index maps, static kernel parameters; shipped once per run, cached across
# runs under the layout token), ``state`` the part's retained per-vertex
# arrays over the local space (the task keeps its *owned* entries current and
# refreshes the *halo* entries from the delta's halo updates), and ``delta``
# the per-superstep shipment: changed-only halo updates, the iteration's
# worklist indices (first phase only) and phase scalars.
#
# Worklist residency: the first phase of each kernel iteration receives the
# iteration's worklist indices and *stashes them in state*; the later phases
# of the same iteration that re-read the same worklist receive ``None`` in
# that delta slot and use the stash (under the full-halo protocol the indices
# are re-sent and the stash is ignored) — the coordinator never pays twice
# for indices a worker already holds. The per-vertex arithmetic is copied
# verbatim from the unpartitioned kernels, which is what makes the drivers
# bit-identical to them; every task computes from the pre-superstep snapshot
# first and mutates ``state`` last.


def _resident_payload(part: GraphPart, **extra) -> Dict:
    """The loop-invariant per-part shipment shared by all resident kernels."""
    payload = {
        "rowmap": part.rowmap,
        "entries": part.entries,
        "ids": part.ids,
        "halo_local": part.local(part.halo),
    }
    payload.update(extra)
    return payload


def _kk_refresh_row_compute(payload, state, w1_local, iteration):
    from ..mis.kk import _priorities_for

    scheme = PriorityScheme.coerce(payload["scheme"])
    packer = TuplePacking(payload["n"], word_bits=payload["word_bits"])
    vertices = payload["ids"][w1_local]
    prios = _priorities_for(scheme, iteration, vertices, payload["n"], payload["seed"])
    out = packer.pack(prios.astype(packer.dtype), vertices)
    state["T"][w1_local] = out
    return out


def _kk_refresh_column_compute(payload, state, w2_local):
    T = state["T"]
    packer = TuplePacking(payload["n"], word_bits=payload["word_bits"])
    IN, OUT = packer.in_value, packer.out_value
    slots, seg = _ref.expand_rows(payload["rowmap"], w2_local)
    min_nbr = _ref.segmented_min(T[payload["entries"][slots]], seg, identity=OUT)
    Mv = np.minimum(min_nbr, T[w2_local])
    out = np.where(Mv == IN, OUT, Mv)
    state["M"][w2_local] = out
    return out


def _kk_decide_compute(payload, state, w1_local):
    T, M = state["T"], state["M"]
    packer = TuplePacking(payload["n"], word_bits=payload["word_bits"])
    IN, OUT = packer.in_value, packer.out_value
    slots, seg = _ref.expand_rows(payload["rowmap"], w1_local)
    nbr_M = M[payload["entries"][slots]]
    Tw = T[w1_local]
    Mw = M[w1_local]
    any_out = _ref.segmented_any_equal(nbr_M, OUT, seg) | (Mw == OUT)
    all_match = _ref.segmented_all_equal(nbr_M, Tw, seg) & (Mw == Tw)
    undecided = packer.is_undecided(Tw)
    to_out = any_out & undecided
    to_in = all_match & undecided & ~to_out
    newT = Tw.copy()
    newT[to_out] = OUT
    newT[to_in] = IN
    state["T"][w1_local] = newT
    return newT


def _kk_resident_refresh_row(payload, state, delta):
    w1_local, iteration = delta
    state["w1"] = w1_local
    return _kk_refresh_row_compute(payload, state, w1_local, iteration)


def _kk_resident_refresh_column(payload, state, delta):
    w2_local, T_update = delta
    _apply_halo_update(state["T"], payload["halo_local"], T_update)
    return _kk_refresh_column_compute(payload, state, w2_local)


def _kk_resident_decide(payload, state, delta):
    w1_local, M_update = delta
    if w1_local is None:
        w1_local = state["w1"]
    _apply_halo_update(state["M"], payload["halo_local"], M_update)
    return _kk_decide_compute(payload, state, w1_local)


def _luby_priorities_compute(payload, state, cand_local, rounds):
    from ..hashing.priorities import fixed_priorities
    from ..hashing.xorshift import hash_iter_vertex

    scheme = PriorityScheme.coerce(payload["scheme"])
    vertices = payload["ids"][cand_local]
    if scheme is PriorityScheme.FIXED:
        out = fixed_priorities(payload["n"], seed=payload["seed"])[vertices]
    else:
        out = hash_iter_vertex(rounds, vertices, star=(scheme is PriorityScheme.XORSTAR))
    state["priority"][cand_local] = out
    return out


def _luby_select_compute(payload, state, cand_local):
    """Winner selection over ``cand_local`` from the current snapshot.

    Pure read — returns the winning *local* indices without touching
    ``status``, so the overlap schedule can evaluate both sub-phases against
    the same pre-superstep snapshot before committing.
    """
    status, prio = state["status"], state["priority"]
    ids = payload["ids"]
    prio_max = np.uint64(np.iinfo(np.uint64).max)
    id_max = np.int64(np.iinfo(np.int64).max)
    slots, seg = _ref.expand_rows(payload["rowmap"], cand_local)
    nbr = payload["entries"][slots]
    nbr_undecided = status[nbr] == payload["undecided"]
    nbr_prio = np.where(nbr_undecided, prio[nbr], prio_max)
    nbr_id = np.where(nbr_undecided, ids[nbr], id_max)
    min_p, min_i = _ref.segmented_lexmin([nbr_prio, nbr_id], seg, [prio_max, id_max])
    own = prio[cand_local]
    cand_global = ids[cand_local]
    own_better = (own < min_p) | ((own == min_p) & (cand_global < min_i))
    return cand_local[own_better]


def _luby_remove_compute(payload, state, remaining_local):
    status = state["status"]
    slots, seg = _ref.expand_rows(payload["rowmap"], remaining_local)
    losers = np.asarray(
        _ref.segmented_any_equal(
            status[payload["entries"][slots]], payload["in_value"], seg
        ),
        dtype=bool,
    )
    status[remaining_local[losers]] = payload["out_value"]
    return losers


def _luby_resident_priorities(payload, state, delta):
    cand_local, rounds = delta
    state["cand"] = cand_local
    return _luby_priorities_compute(payload, state, cand_local, rounds)


def _luby_resident_select(payload, state, delta):
    cand_local, status_update, prio_update = delta
    if cand_local is None:
        cand_local = state["cand"]
    halo_local = payload["halo_local"]
    _apply_halo_update(state["status"], halo_local, status_update)
    _apply_halo_update(state["priority"], halo_local, prio_update)
    winners_local = _luby_select_compute(payload, state, cand_local)
    state["status"][winners_local] = payload["in_value"]
    return payload["ids"][winners_local]


def _luby_resident_remove(payload, state, delta):
    remaining_local, status_update = delta
    status = state["status"]
    _apply_halo_update(status, payload["halo_local"], status_update)
    if remaining_local is None:
        # The select phase set this part's winners IN worker-side, so the
        # stashed candidate list filters to the coordinator's `remaining`
        # without any indices crossing the boundary.
        cand_local = state["cand"]
        remaining_local = cand_local[status[cand_local] == payload["undecided"]]
    return _luby_remove_compute(payload, state, remaining_local)


def _color_assign_compute(payload, state, wl_local):
    """Speculative colors for ``wl_local`` from the current snapshot — pure
    read; the caller decides when the writes land (immediately on the barrier
    path, deferred to the interior sub-phase on the overlap path)."""
    colors = state["colors"]
    slots, seg = _ref.expand_rows(payload["rowmap"], wl_local)
    nbr_colors = colors[payload["entries"][slots]]
    owner = np.repeat(np.arange(wl_local.size, dtype=np.int64), np.diff(seg))
    max_colors = payload["max_colors"]
    forbidden = np.zeros((wl_local.size, max_colors + 1), dtype=bool)
    valid = nbr_colors >= 0
    forbidden[owner[valid], np.minimum(nbr_colors[valid], max_colors)] = True
    return np.argmin(forbidden, axis=1).astype(np.int64)


def _color_conflict_compute(payload, state, wl_local):
    """Conflict losers among ``wl_local`` from the current snapshot — pure
    read, same deferred-commit contract as :func:`_color_assign_compute`."""
    colors = state["colors"]
    ids = payload["ids"]
    slots, seg = _ref.expand_rows(payload["rowmap"], wl_local)
    nbr = payload["entries"][slots]
    lens = np.diff(seg)
    owners_local = np.repeat(wl_local, lens)
    owners_global = np.repeat(ids[wl_local], lens)
    conflict = (colors[owners_local] == colors[nbr]) & (owners_global > ids[nbr])
    return np.unique(owners_local[conflict])


def _color_resident_assign(payload, state, delta):
    wl_local, colors_update = delta
    state["wl"] = wl_local
    colors = state["colors"]
    _apply_halo_update(colors, payload["halo_local"], colors_update)
    out = _color_assign_compute(payload, state, wl_local)
    colors[wl_local] = out
    return out


def _color_resident_conflict(payload, state, delta):
    wl_local, colors_update = delta
    if wl_local is None:
        wl_local = state["wl"]
    colors = state["colors"]
    _apply_halo_update(colors, payload["halo_local"], colors_update)
    losers_local = _color_conflict_compute(payload, state, wl_local)
    colors[losers_local] = -1
    return payload["ids"][losers_local]


# ----------------------------------------- overlapped sub-phase task functions
#
# The overlap schedule splits every superstep phase into a *boundary* and an
# *interior* sub-task per part. Conventions, relied on by the drivers:
#
# - the boundary sub-task carries everything that crosses the halo seam —
#   halo updates and the phase's explicit worklist indices under the
#   full-halo protocol — and always ships, even with an empty sub-worklist,
#   because its halo update must land to keep the tracker's "worker halo is
#   current after take" invariant;
# - the interior sub-task's delta is the bare interior sub-worklist; any
#   scalar the compute needs (iteration / round counter) rides with the
#   boundary half only and is stashed worker-side, because
#   ``shipped_nbytes`` charges scalars too and shipping one twice would
#   break the overlap-vs-barrier shipped-byte equality;
# - sessions run each part's sub-tasks FIFO, so the interior sub-task may
#   read boundary stashes from the same superstep, and phases whose writes
#   would leak into a sibling's snapshot (Luby select, coloring assign /
#   conflict) stash their boundary writes under a ``_ov_pending*`` state key
#   and commit them in the interior sub-task, after both halves computed.


def _kk_overlap_refresh_row_boundary(payload, state, delta):
    w1_local, iteration = delta
    state["w1b"] = w1_local
    state["_ov_iter"] = iteration
    return _kk_refresh_row_compute(payload, state, w1_local, iteration)


def _kk_overlap_refresh_row_interior(payload, state, delta):
    # Bare sub-worklist: the iteration scalar rode with the boundary half
    # (FIFO — it already ran on this part) so the split ships exactly the
    # barrier phase's bytes.
    w1_local = delta
    state["w1i"] = w1_local
    return _kk_refresh_row_compute(payload, state, w1_local, state["_ov_iter"])


def _kk_overlap_refresh_column_boundary(payload, state, delta):
    w2_local, T_update = delta
    _apply_halo_update(state["T"], payload["halo_local"], T_update)
    return _kk_refresh_column_compute(payload, state, w2_local)


def _kk_overlap_refresh_column_interior(payload, state, delta):
    # Interior vertices have no ghost neighbours; their owned T reads were
    # refreshed by this part's Refresh Row sub-tasks (FIFO order).
    return _kk_refresh_column_compute(payload, state, delta)


def _kk_overlap_decide_boundary(payload, state, delta):
    w1_local, M_update = delta
    if w1_local is None:
        w1_local = state["w1b"]
    _apply_halo_update(state["M"], payload["halo_local"], M_update)
    return _kk_decide_compute(payload, state, w1_local)


def _kk_overlap_decide_interior(payload, state, delta):
    w1_local = state["w1i"] if delta is None else delta
    # Decide reads only its own T/M rows and neighbour M values; the
    # boundary sub-task writes T rows disjoint from these, so no deferral.
    return _kk_decide_compute(payload, state, w1_local)


def _luby_overlap_priorities_boundary(payload, state, delta):
    cand_local, rounds = delta
    state["cand_b"] = cand_local
    state["_ov_rounds"] = rounds
    return _luby_priorities_compute(payload, state, cand_local, rounds)


def _luby_overlap_priorities_interior(payload, state, delta):
    # Bare sub-worklist; the round scalar rode with the boundary half (FIFO).
    cand_local = delta
    state["cand_i"] = cand_local
    return _luby_priorities_compute(payload, state, cand_local, state["_ov_rounds"])


def _luby_overlap_select_boundary(payload, state, delta):
    cand_local, status_update, prio_update = delta
    if cand_local is None:
        cand_local = state["cand_b"]
    halo_local = payload["halo_local"]
    _apply_halo_update(state["status"], halo_local, status_update)
    _apply_halo_update(state["priority"], halo_local, prio_update)
    winners_local = _luby_select_compute(payload, state, cand_local)
    # Selection reads neighbour statuses, so committing IN here would leak
    # into the interior sub-task's snapshot — defer to the interior commit.
    state["_ov_pending_in"] = winners_local
    return payload["ids"][winners_local]


def _luby_overlap_select_interior(payload, state, delta):
    cand_local = state["cand_i"] if delta is None else delta
    winners_local = _luby_select_compute(payload, state, cand_local)
    status = state["status"]
    status[state.pop("_ov_pending_in")] = payload["in_value"]
    status[winners_local] = payload["in_value"]
    return payload["ids"][winners_local]


def _luby_overlap_remove_boundary(payload, state, delta):
    remaining_local, status_update = delta
    status = state["status"]
    _apply_halo_update(status, payload["halo_local"], status_update)
    if remaining_local is None:
        cand_local = state["cand_b"]
        remaining_local = cand_local[status[cand_local] == payload["undecided"]]
    # Removal reads `== IN` and writes OUT to previously-undecided vertices,
    # so its commits cannot alter the sibling sub-task's reads: no deferral.
    return _luby_remove_compute(payload, state, remaining_local)


def _luby_overlap_remove_interior(payload, state, delta):
    status = state["status"]
    if delta is None:
        cand_local = state["cand_i"]
        remaining_local = cand_local[status[cand_local] == payload["undecided"]]
    else:
        remaining_local = delta
    return _luby_remove_compute(payload, state, remaining_local)


def _color_overlap_assign_boundary(payload, state, delta):
    wl_local, colors_update = delta
    state["wl_b"] = wl_local
    _apply_halo_update(state["colors"], payload["halo_local"], colors_update)
    out = _color_assign_compute(payload, state, wl_local)
    # Assignment reads neighbour colors, owned ones included — defer the
    # write so the interior sub-task sees the pre-superstep snapshot.
    state["_ov_pending_colors"] = out
    return out


def _color_overlap_assign_interior(payload, state, delta):
    wl_local = delta
    state["wl_i"] = wl_local
    out = _color_assign_compute(payload, state, wl_local)
    colors = state["colors"]
    colors[state["wl_b"]] = state.pop("_ov_pending_colors")
    colors[wl_local] = out
    return out


def _color_overlap_conflict_boundary(payload, state, delta):
    wl_local, colors_update = delta
    if wl_local is None:
        wl_local = state["wl_b"]
    _apply_halo_update(state["colors"], payload["halo_local"], colors_update)
    losers_local = _color_conflict_compute(payload, state, wl_local)
    # Conflict detection compares both endpoints' colors — resetting a
    # boundary loser to -1 here would erase conflicts the interior sub-task
    # must still see, so the -1 writes are deferred like the assignments.
    state["_ov_pending_losers"] = losers_local
    return payload["ids"][losers_local]


def _color_overlap_conflict_interior(payload, state, delta):
    wl_local = state["wl_i"] if delta is None else delta
    losers_local = _color_conflict_compute(payload, state, wl_local)
    colors = state["colors"]
    colors[state.pop("_ov_pending_losers")] = -1
    colors[losers_local] = -1
    return payload["ids"][losers_local]


# ------------------------------------------------------------------- drivers
def _live(worklists: List[np.ndarray]) -> List[int]:
    """Indices of the parts with a non-empty worklist (no-op parts are skipped)."""
    return [i for i, w in enumerate(worklists) if w.size]


def _split_interior(
    part: GraphPart, vertices: np.ndarray, local: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split an owned worklist into its boundary and interior sub-worklists.

    ``vertices`` are part-owned global ids with ``local`` their local indices
    (element-aligned). Returns ``(boundary, boundary_local, interior,
    interior_local)`` — both splits preserve the input order, so barrier and
    overlap schedules enumerate the same vertices in the same order.
    """
    mask = part.interior_local[local]
    outside = ~mask
    return vertices[outside], local[outside], vertices[mask], local[mask]


def _exchange_traffic(
    traffic: TrafficCounter,
    layout: PartitionLayout,
    value_bytes: int,
    parts: Sequence[int],
) -> None:
    """Account one ghost exchange: the *live* parts re-read their halo values.

    A part whose worklist has emptied runs no further phases and re-reads
    nothing, so charging the full ``layout.halo_vertices`` every exchange (as
    this used to) overstates the modelled ghost traffic more and more as
    parts converge. ``parts`` are the indices of the parts participating in
    the exchange — deterministic driver state, so the modelled counts stay
    identical on every backend.
    """
    nbytes = value_bytes * sum(layout.parts[i].num_halo for i in parts)
    traffic.add("ghost_exchange", bytes_read=nbytes, bytes_written=nbytes)


def partitioned_kk_mis2(
    graph: CSRGraph,
    partitions: PartitionSpec,
    priority_scheme: Union[str, PriorityScheme] = PriorityScheme.XORSTAR,
    use_worklists: bool = True,
    simd: Optional[bool] = None,
    word_bits: int = 64,
    seed: int = 0,
    backend: "Optional[str | ExecutionBackend]" = None,
    resident: bool = True,
    changed_deltas: bool = True,
    overlap: bool = True,
):
    """Algorithm 1 executed partition-parallel; bit-identical to :func:`kk_mis2`.

    Each main-loop iteration runs as three supersteps (Refresh Row, Refresh
    Column, Decide) fanned over the parts through a rank-resident
    :class:`~repro.parallel.backends.ResidentSession` — each part's local CSR
    ships to its pinned worker once; every subsequent phase ships only the
    halo values *changed since the part's last refresh* (dense fallback when
    sparse would cost more) plus the iteration's worklist indices, sent once
    by Refresh Row and stashed worker-side for Decide. Worklist compaction is
    owner-local. ``resident=False`` selects the non-resident baseline that
    re-ships the whole part every superstep; ``changed_deltas=False`` the
    full-halo wire format (whole halos, worklists re-sent per phase);
    ``overlap=False`` the barrier schedule (overlap requires the resident
    seam and is ignored on non-resident runs). All combinations produce
    bit-identical results and identical shipped-byte/superstep counts per
    wire format — only wall-clock differs. See the module docstring for the
    determinism argument.
    """
    from ..mis.kk import SIMD_DEGREE_THRESHOLD, _max_iterations
    from ..mis.result import MISConfig, MISResult

    scheme = PriorityScheme.coerce(priority_scheme)
    if not use_worklists:
        raise ValueError(
            "partitioned execution always maintains per-part worklists; "
            "use partitions=None for the use_worklists=False ablation"
        )
    B = resolve_backend(backend)
    layout = build_partition_layout(graph, partitions)
    n = graph.num_vertices
    if simd is None:
        simd = graph.average_degree() >= SIMD_DEGREE_THRESHOLD
    config = MISConfig(
        algorithm="kk",
        k=2,
        priority_scheme=scheme.value,
        use_worklists=True,
        packed_tuples=True,
        simd=bool(simd),
        word_bits=word_bits,
        seed=seed,
        backend=B.name,
        partitions=layout.num_parts,
    )
    traffic = TrafficCounter(backend=B.name)
    if n == 0:
        return MISResult(
            in_set=np.zeros(0, dtype=np.int64),
            in_mask=np.zeros(0, dtype=bool),
            iterations=0,
            traffic=traffic,
            config=config,
            partition_stats=layout.stats(0),
        )

    packer = TuplePacking(n, word_bits=word_bits)
    OUT = packer.out_value
    word_bytes = packer.dtype.itemsize
    T = packer.pack(np.zeros(n, dtype=packer.dtype), np.arange(n, dtype=np.int64))
    M = np.full(n, OUT, dtype=packer.dtype)
    members = layout.parts
    w1 = [p.owned for p in members]
    w2 = [p.owned for p in members]
    worklist_sizes: List[Tuple[int, int]] = []
    iteration = 0
    supersteps = 0
    max_iter = _max_iterations(n)

    payloads = [
        _resident_payload(p, n=n, word_bits=word_bits, scheme=scheme.value, seed=seed)
        for p in members
    ]
    states = [{"T": T[p.ids], "M": M[p.ids]} for p in members]
    token = f"{layout.token}/kk2/{scheme.value}/s{seed}/w{word_bits}"
    tracker = HaloDeltaTracker(layout, ("T", "M"), changed_only=changed_deltas)
    session = B.map_partitions_resident(token, payloads, states, resident=resident)
    ov = bool(overlap) and resident
    t0 = time.perf_counter()
    try:
        while True:
            total1 = sum(w.size for w in w1)
            if total1 == 0:
                break
            if iteration >= max_iter:
                raise RuntimeError(
                    f"partitioned MIS-2 did not converge within {max_iter} iterations; "
                    "this indicates a bug in the priority scheme or the graph structure"
                )
            worklist_sizes.append((int(total1), int(sum(w.size for w in w2))))

            live1 = _live(w1)
            live2 = _live(w2)
            w1_loc = {i: members[i].local(w1[i]) for i in live1}
            if ov:
                # Overlapped schedule: each phase splits boundary/interior and
                # the next phase's deltas ship while interior sub-tasks run.
                # Interior results scatter late — an interior vertex is in no
                # part's halo, so its marks never dirty a take.
                w1b, w1b_loc, w1i, w1i_loc = {}, {}, {}, {}
                for i in live1:
                    w1b[i], w1b_loc[i], w1i[i], w1i_loc[i] = _split_interior(
                        members[i], w1[i], w1_loc[i]
                    )
                w2b, w2b_loc, w2i, w2i_loc = {}, {}, {}, {}
                for i in live2:
                    w2b[i], w2b_loc[i], w2i[i], w2i_loc[i] = _split_interior(
                        members[i], w2[i], members[i].local(w2[i])
                    )

                # ---------------------------------- Refresh Row (owner-local)
                fb = session.run_async(
                    _kk_overlap_refresh_row_boundary,
                    [(i, (w1b_loc[i], iteration)) for i in live1],
                    commit=False,
                )
                fi = session.run_async(
                    _kk_overlap_refresh_row_interior,
                    [(i, w1i_loc[i]) for i in live1],
                )
                tracker.mark(
                    "T", [_scatter_changed(T, w1b[i], out) for i, out in zip(live1, fb.result())]
                )
                supersteps += 1
                _exchange_traffic(traffic, layout, word_bytes, live2)

                # ------------------------------- Refresh Column (reads ghost T)
                gb = session.run_async(
                    _kk_overlap_refresh_column_boundary,
                    [(i, (w2b_loc[i], tracker.take("T", i, T))) for i in live2],
                    commit=False,
                )
                gi = session.run_async(
                    _kk_overlap_refresh_column_interior,
                    [(i, w2i_loc[i]) for i in live2],
                )
                # Interior results scatter with no change tracking: an
                # interior vertex is in no part's halo, so marking it is
                # provably a no-op on every dirty mask — the skip is what
                # makes the split cheaper, not just equivalent.
                for i, out in zip(live1, fi.result()):
                    T[w1i[i]] = out
                tracker.mark(
                    "M", [_scatter_changed(M, w2b[i], out) for i, out in zip(live2, gb.result())]
                )
                supersteps += 1
                _exchange_traffic(traffic, layout, word_bytes, live1)

                # ---------------------------------- Decide (reads ghost M)
                hb = session.run_async(
                    _kk_overlap_decide_boundary,
                    [
                        (
                            i,
                            (
                                None if changed_deltas else w1b_loc[i],
                                tracker.take("M", i, M),
                            ),
                        )
                        for i in live1
                    ],
                    commit=False,
                )
                hi = session.run_async(
                    _kk_overlap_decide_interior,
                    [(i, None if changed_deltas else w1i_loc[i]) for i in live1],
                )
                for i, out in zip(live2, gi.result()):
                    M[w2i[i]] = out
                tracker.mark(
                    "T", [_scatter_changed(T, w1b[i], out) for i, out in zip(live1, hb.result())]
                )
                for i, out in zip(live1, hi.result()):
                    T[w1i[i]] = out
                supersteps += 1
            else:
                # ---------------------------------- Refresh Row (owner-local)
                outs = session.run(
                    _kk_resident_refresh_row,
                    [(i, (w1_loc[i], iteration)) for i in live1],
                )
                tracker.mark("T", [_scatter_changed(T, w1[i], out) for i, out in zip(live1, outs)])
                supersteps += 1
                _exchange_traffic(traffic, layout, word_bytes, live2)

                # ------------------------------- Refresh Column (reads ghost T)
                outs = session.run(
                    _kk_resident_refresh_column,
                    [
                        (i, (members[i].local(w2[i]), tracker.take("T", i, T)))
                        for i in live2
                    ],
                )
                tracker.mark("M", [_scatter_changed(M, w2[i], out) for i, out in zip(live2, outs)])
                supersteps += 1
                _exchange_traffic(traffic, layout, word_bytes, live1)

                # ---------------------------------- Decide (reads ghost M)
                outs = session.run(
                    _kk_resident_decide,
                    [
                        (
                            i,
                            (
                                None if changed_deltas else w1_loc[i],
                                tracker.take("M", i, M),
                            ),
                        )
                        for i in live1
                    ],
                )
                tracker.mark("T", [_scatter_changed(T, w1[i], out) for i, out in zip(live1, outs)])
                supersteps += 1

            # --------------------------------------- Compaction (owner-local)
            for i in live1:
                w1[i] = w1[i][packer.is_undecided(T[w1[i]])]
            for i in live2:
                w2[i] = w2[i][M[w2[i]] != OUT]
            iteration += 1
    finally:
        session.close()
    elapsed = time.perf_counter() - t0

    in_mask = packer.is_in(T)
    return MISResult(
        in_set=np.nonzero(in_mask)[0].astype(np.int64),
        in_mask=in_mask,
        iterations=iteration,
        worklist_sizes=worklist_sizes,
        traffic=traffic,
        config=config,
        partition_stats=layout.stats(supersteps, session=session, elapsed_seconds=elapsed),
    )


def partitioned_luby_mis1(
    graph: CSRGraph,
    partitions: PartitionSpec,
    priority_scheme: Union[str, PriorityScheme] = PriorityScheme.XORSTAR,
    seed: int = 0,
    backend: "Optional[str | ExecutionBackend]" = None,
    resident: bool = True,
    changed_deltas: bool = True,
    overlap: bool = True,
):
    """Luby's Algorithm A executed partition-parallel; bit-identical to
    :func:`luby_mis1`.

    Each round runs three supersteps: priority refresh (owner-local), winner
    selection (reads ghost priorities/statuses) and neighbour removal
    (owner-computes: an undecided owned vertex goes OUT when any neighbour —
    local or ghost — just joined the set). Runs through a rank-resident
    session: the per-part CSR ships once, supersteps ship *changed* halo
    status/priority values, and the candidate indices ship once per round
    (the priority phase stashes them; selection reads the stash and removal
    filters it against the part's own post-selection statuses, so neither
    later phase receives index arrays). ``resident=False`` restores the
    ship-everything baseline, ``changed_deltas=False`` the full-halo wire
    format, ``overlap=False`` the barrier schedule — results are
    bit-identical in every combination.
    """
    import math

    from ..mis.luby import _IN, _OUT, _UNDECIDED
    from ..mis.result import MISConfig, MISResult

    scheme = PriorityScheme.coerce(priority_scheme)
    B = resolve_backend(backend)
    layout = build_partition_layout(graph, partitions)
    n = graph.num_vertices
    config = MISConfig(
        algorithm="luby",
        k=1,
        priority_scheme=scheme.value,
        use_worklists=True,
        packed_tuples=False,
        simd=False,
        seed=seed,
        backend=B.name,
        partitions=layout.num_parts,
    )
    traffic = TrafficCounter(backend=B.name)
    if n == 0:
        return MISResult(
            in_set=np.zeros(0, dtype=np.int64),
            in_mask=np.zeros(0, dtype=bool),
            iterations=0,
            traffic=traffic,
            config=config,
            partition_stats=layout.stats(0),
        )

    members = layout.parts
    status = np.full(n, _UNDECIDED, dtype=np.uint8)
    priority = np.zeros(n, dtype=np.uint64)
    rounds = 0
    supersteps = 0
    max_rounds = 20 * max(4, int(math.log2(n + 2))) + 64

    payloads = [
        _resident_payload(
            p,
            n=n,
            scheme=scheme.value,
            seed=seed,
            undecided=_UNDECIDED,
            in_value=_IN,
            out_value=_OUT,
        )
        for p in members
    ]
    states = [{"status": status[p.ids], "priority": priority[p.ids]} for p in members]
    token = f"{layout.token}/luby1/{scheme.value}/s{seed}"
    tracker = HaloDeltaTracker(layout, ("status", "priority"), changed_only=changed_deltas)
    session = B.map_partitions_resident(token, payloads, states, resident=resident)
    ov = bool(overlap) and resident
    t0 = time.perf_counter()
    try:
        while np.any(status == _UNDECIDED):
            if rounds >= max_rounds:
                raise RuntimeError(
                    f"partitioned Luby MIS-1 did not converge within {max_rounds} rounds"
                )
            cand = [p.owned[status[p.owned] == _UNDECIDED] for p in members]
            live = _live(cand)
            cand_loc = {i: members[i].local(cand[i]) for i in live}

            if ov:
                cb, cb_loc, ci, ci_loc = {}, {}, {}, {}
                for i in live:
                    cb[i], cb_loc[i], ci[i], ci_loc[i] = _split_interior(
                        members[i], cand[i], cand_loc[i]
                    )

                # ---------------------------------- priorities (owner-local)
                fb = session.run_async(
                    _luby_overlap_priorities_boundary,
                    [(i, (cb_loc[i], rounds)) for i in live],
                    commit=False,
                )
                fi = session.run_async(
                    _luby_overlap_priorities_interior,
                    [(i, ci_loc[i]) for i in live],
                )
                tracker.mark(
                    "priority",
                    [_scatter_changed(priority, cb[i], out) for i, out in zip(live, fb.result())],
                )
                supersteps += 1
                _exchange_traffic(traffic, layout, 8, live)

                # ------------------------- selection (reads ghost priorities)
                gb = session.run_async(
                    _luby_overlap_select_boundary,
                    [
                        (
                            i,
                            (
                                None if changed_deltas else cb_loc[i],
                                tracker.take("status", i, status),
                                tracker.take("priority", i, priority),
                            ),
                        )
                        for i in live
                    ],
                    commit=False,
                )
                gi = session.run_async(
                    _luby_overlap_select_interior,
                    [(i, None if changed_deltas else ci_loc[i]) for i in live],
                )
                # Interior results are in no part's halo: scatter plainly and
                # skip both the changed-comparison and the (no-op) mark.
                for i, out in zip(live, fi.result()):
                    priority[ci[i]] = out
                boundary_winners = list(gb.result())
                interior_winners = list(gi.result())
                for winners in boundary_winners + interior_winners:
                    status[winners] = _IN
                # Winners were undecided a moment ago, so every boundary one
                # is a change; interior winners need no mark.
                tracker.mark("status", boundary_winners)
                supersteps += 1

                # ---------------------------- removal (reads ghost statuses)
                remaining = {i: cand[i][status[cand[i]] == _UNDECIDED] for i in live}
                live_r = [i for i in live if remaining[i].size]
                _exchange_traffic(traffic, layout, 1, live_r)
                rb, rb_loc, ri, ri_loc = {}, {}, {}, {}
                for i in live_r:
                    rb[i], rb_loc[i], ri[i], ri_loc[i] = _split_interior(
                        members[i], remaining[i], members[i].local(remaining[i])
                    )
                hb = session.run_async(
                    _luby_overlap_remove_boundary,
                    [
                        (
                            i,
                            (
                                None if changed_deltas else rb_loc[i],
                                tracker.take("status", i, status),
                            ),
                        )
                        for i in live_r
                    ],
                    commit=False,
                )
                hi = session.run_async(
                    _luby_overlap_remove_interior,
                    [(i, None if changed_deltas else ri_loc[i]) for i in live_r],
                )
                removed_b = [rb[i][losers] for i, losers in zip(live_r, hb.result())]
                removed_i = [ri[i][losers] for i, losers in zip(live_r, hi.result())]
                for ids in removed_b + removed_i:
                    status[ids] = _OUT
                tracker.mark("status", removed_b)
                supersteps += 1
            else:
                # ---------------------------------- priorities (owner-local)
                outs = session.run(
                    _luby_resident_priorities,
                    [(i, (cand_loc[i], rounds)) for i in live],
                )
                tracker.mark(
                    "priority",
                    [_scatter_changed(priority, cand[i], out) for i, out in zip(live, outs)],
                )
                supersteps += 1
                _exchange_traffic(traffic, layout, 8, live)

                # ------------------------- selection (reads ghost priorities)
                outs = session.run(
                    _luby_resident_select,
                    [
                        (
                            i,
                            (
                                None if changed_deltas else cand_loc[i],
                                tracker.take("status", i, status),
                                tracker.take("priority", i, priority),
                            ),
                        )
                        for i in live
                    ],
                )
                winner_lists = list(outs)
                for winners in winner_lists:
                    status[winners] = _IN
                # Winners were undecided a moment ago, so every one is a change.
                tracker.mark("status", winner_lists)
                supersteps += 1

                # ---------------------------- removal (reads ghost statuses)
                remaining = {i: cand[i][status[cand[i]] == _UNDECIDED] for i in live}
                live_r = [i for i in live if remaining[i].size]
                _exchange_traffic(traffic, layout, 1, live_r)
                outs = session.run(
                    _luby_resident_remove,
                    [
                        (
                            i,
                            (
                                None if changed_deltas else members[i].local(remaining[i]),
                                tracker.take("status", i, status),
                            ),
                        )
                        for i in live_r
                    ],
                )
                removed = [remaining[i][losers] for i, losers in zip(live_r, outs)]
                for ids in removed:
                    status[ids] = _OUT
                tracker.mark("status", removed)
                supersteps += 1
            # The removal phase's OUT statuses are re-ghosted for the next
            # round's selection snapshot — account that exchange over the
            # parts that will actually read it, i.e. those with undecided
            # owned candidates left (next round's live set: a candidate can
            # only stay undecided if it was one this round).
            live_next = [i for i in live if np.any(status[cand[i]] == _UNDECIDED)]
            _exchange_traffic(traffic, layout, 1, live_next)
            rounds += 1
    finally:
        session.close()
    elapsed = time.perf_counter() - t0

    in_mask = status == _IN
    return MISResult(
        in_set=np.nonzero(in_mask)[0].astype(np.int64),
        in_mask=in_mask,
        iterations=rounds,
        traffic=traffic,
        config=config,
        partition_stats=layout.stats(supersteps, session=session, elapsed_seconds=elapsed),
    )


def partitioned_greedy_color(
    graph: CSRGraph,
    partitions: PartitionSpec,
    max_rounds: Optional[int] = None,
    backend: "Optional[str | ExecutionBackend]" = None,
    resident: bool = True,
    changed_deltas: bool = True,
    overlap: bool = True,
):
    """Speculative greedy coloring executed partition-parallel; bit-identical to
    :func:`greedy_color`.

    Each round runs two supersteps: speculative assignment (reads ghost
    colors) and conflict resolution (the higher-global-id endpoint of a
    same-color edge is uncolored by its owning part — the same deterministic
    tie-break as the unpartitioned kernel). Runs through a rank-resident
    session: the per-part CSR ships once, supersteps ship *changed* halo
    colors, and the round's worklist indices ship once with the assignment
    phase (the conflict phase reads the worker-side stash).
    ``resident=False`` restores the ship-everything baseline,
    ``changed_deltas=False`` the full-halo wire format, ``overlap=False``
    the barrier schedule — results are bit-identical in every combination.
    """
    from ..coloring.greedy import ColoringResult

    B = resolve_backend(backend)
    layout = build_partition_layout(graph, partitions)
    n = graph.num_vertices
    traffic = TrafficCounter(backend=B.name)
    if n == 0:
        return ColoringResult(
            np.zeros(0, dtype=np.int64),
            0,
            0,
            traffic,
            backend=B.name,
            partitions=layout.num_parts,
            partition_stats=layout.stats(0),
        )

    members = layout.parts
    colors = -np.ones(n, dtype=np.int64)
    worklists = [p.owned for p in members]
    max_colors = graph.max_degree() + 1
    cap = max_rounds if max_rounds is not None else n + 2
    rounds = 0
    supersteps = 0

    payloads = [_resident_payload(p, max_colors=max_colors) for p in members]
    states = [{"colors": colors[p.ids]} for p in members]
    token = f"{layout.token}/greedy/m{max_colors}"
    tracker = HaloDeltaTracker(layout, ("colors",), changed_only=changed_deltas)
    session = B.map_partitions_resident(token, payloads, states, resident=resident)
    ov = bool(overlap) and resident
    t0 = time.perf_counter()
    try:
        while sum(w.size for w in worklists) > 0:
            if rounds >= cap:
                raise RuntimeError(
                    "partitioned greedy coloring did not converge (conflict loop)"
                )
            live = _live(worklists)
            wl_loc = {i: members[i].local(worklists[i]) for i in live}

            if ov:
                wb, wb_loc, wi, wi_loc = {}, {}, {}, {}
                for i in live:
                    wb[i], wb_loc[i], wi[i], wi_loc[i] = _split_interior(
                        members[i], worklists[i], wl_loc[i]
                    )

                # ----------------------------- speculation (reads ghost colors)
                fb = session.run_async(
                    _color_overlap_assign_boundary,
                    [(i, (wb_loc[i], tracker.take("colors", i, colors))) for i in live],
                    commit=False,
                )
                fi = session.run_async(
                    _color_overlap_assign_interior,
                    [(i, wi_loc[i]) for i in live],
                )
                tracker.mark(
                    "colors",
                    [_scatter_changed(colors, wb[i], out) for i, out in zip(live, fb.result())],
                )
                supersteps += 1
                _exchange_traffic(traffic, layout, 8, live)

                # ----------------- conflicts (reads freshly ghosted colors)
                gb = session.run_async(
                    _color_overlap_conflict_boundary,
                    [
                        (
                            i,
                            (
                                None if changed_deltas else wb_loc[i],
                                tracker.take("colors", i, colors),
                            ),
                        )
                        for i in live
                    ],
                    commit=False,
                )
                gi = session.run_async(
                    _color_overlap_conflict_interior,
                    [(i, None if changed_deltas else wi_loc[i]) for i in live],
                )
                # Interior results are in no part's halo: scatter plainly and
                # skip both the changed-comparison and the (no-op) mark.
                for i, out in zip(live, fi.result()):
                    colors[wi[i]] = out
                new_worklists = [np.zeros(0, dtype=np.int64)] * len(members)
                loser_lists: List[np.ndarray] = []
                for i, lb, li in zip(live, gb.result(), gi.result()):
                    # Boundary and interior losers are disjoint; sorting the
                    # union reproduces the barrier schedule's worklist exactly.
                    # Only the boundary losers feed the shared mark below —
                    # interior vertices dirty no halo.
                    losers = np.sort(np.concatenate((lb, li)))
                    colors[losers] = -1
                    new_worklists[i] = losers
                    loser_lists.append(lb)
            else:
                # ----------------------------- speculation (reads ghost colors)
                outs = session.run(
                    _color_resident_assign,
                    [
                        (i, (wl_loc[i], tracker.take("colors", i, colors)))
                        for i in live
                    ],
                )
                tracker.mark(
                    "colors",
                    [_scatter_changed(colors, worklists[i], out) for i, out in zip(live, outs)],
                )
                supersteps += 1
                _exchange_traffic(traffic, layout, 8, live)

                # ----------------- conflicts (reads freshly ghosted colors)
                outs = session.run(
                    _color_resident_conflict,
                    [
                        (
                            i,
                            (
                                None if changed_deltas else wl_loc[i],
                                tracker.take("colors", i, colors),
                            ),
                        )
                        for i in live
                    ],
                )
                new_worklists = [np.zeros(0, dtype=np.int64)] * len(members)
                loser_lists = list(outs)
                for i, losers in zip(live, loser_lists):
                    colors[losers] = -1
                    new_worklists[i] = losers
            # A conflict loser had just been speculatively colored >= 0, so
            # every reset to -1 is a change.
            tracker.mark("colors", loser_lists)
            worklists = new_worklists
            supersteps += 1
            # The conflict phase's -1 resets are re-ghosted for the next round's
            # speculation snapshot, so this round carries two exchanges like the
            # other kernels' ghost-reading phase pairs — read by exactly the
            # parts whose worklists survived into that round.
            _exchange_traffic(traffic, layout, 8, _live(worklists))
            rounds += 1
    finally:
        session.close()
    elapsed = time.perf_counter() - t0

    used = np.unique(colors)
    remap = -np.ones(int(used.max()) + 1, dtype=np.int64)
    remap[used] = np.arange(used.size, dtype=np.int64)
    return ColoringResult(
        remap[colors],
        int(used.size),
        rounds,
        traffic,
        distance=1,
        backend=B.name,
        partitions=layout.num_parts,
        partition_stats=layout.stats(supersteps, session=session, elapsed_seconds=elapsed),
    )

"""Portable parallel execution substrate.

The paper's implementation is written against the Kokkos programming model so that a
single source runs on CUDA, HIP and OpenMP backends. This package provides the Python
analogue used by the reproduction:

* :mod:`~repro.parallel.execution` — execution spaces (:class:`SerialSpace`,
  :class:`VectorSpace`, :class:`ThreadSpace`) exposing ``parallel_for``,
  ``parallel_reduce`` and ``parallel_scan`` with bulk-synchronous, deterministic
  semantics.
* :mod:`~repro.parallel.primitives` — the vectorised segmented/row-wise primitives the
  graph kernels are built from (segmented min/any/all over CSR rows, exclusive scans,
  stream compaction).
* :mod:`~repro.parallel.backends` — the pluggable :class:`ExecutionBackend` seam
  through which every kernel invokes those primitives: the ``numpy`` reference, the
  cache-blocked/process-pool ``chunked`` backend, the shared-memory ``threaded``
  backend and the optional ``numba`` JIT backend (graceful NumPy fallback). Select
  per call (``backend="chunked"``) or process-wide with
  :class:`set_default_backend`.
* :mod:`~repro.parallel.machine` — device catalogue (V100, MI100, Skylake, ThunderX2)
  with the published memory bandwidths the paper's Fig. 3 uses.
* :mod:`~repro.parallel.costmodel` — roofline-style traffic/latency model converting
  kernel memory-traffic counters into predicted device times, plus the CPU
  strong-scaling model used to reproduce Figs. 4 and 5.
"""

from __future__ import annotations

from .execution import (
    ExecutionSpace,
    SerialSpace,
    VectorSpace,
    ThreadSpace,
    default_space,
    available_spaces,
)
from .primitives import (
    exclusive_scan,
    inclusive_scan,
    stream_compact,
    segmented_min,
    segmented_max,
    segmented_all_equal,
    segmented_any_equal,
    segmented_lexmin,
    segmented_sum,
)
from .backends import (
    ExecutionBackend,
    NumpyBackend,
    ChunkedBackend,
    ThreadedBackend,
    NumbaBackend,
    PhaseFuture,
    StepGroupError,
    ResidentSession,
    register_backend,
    get_backend,
    available_backends,
    default_backend,
    resolve_backend,
    set_default_backend,
    numba_available,
    shipped_nbytes,
    shutdown_partition_pools,
)
from .transport import (
    MessageConnection,
    MessageListener,
    TransportError,
    connect_with_retry,
)

# Importing .distributed registers the "distributed" backend; it must follow
# .backends (whose registry it extends) and precede .partitioned (whose
# drivers may be asked to run on it).
from .distributed import (
    DistributedBackend,
    RankCluster,
    RankDeathError,
    shutdown_rank_clusters,
)
from .machine import DeviceSpec, DEVICES, device, device_names
from .costmodel import (
    TrafficCounter,
    KernelTraffic,
    scale_traffic,
    predict_device_time,
    bandwidth_efficiency,
    strong_scaling_times,
    scaling_efficiency,
)

# Imported last: the partitioned drivers lazily reach back into repro.mis /
# repro.coloring at call time, and their module depends on .backends above.
from .partitioned import (
    GraphPart,
    HaloDeltaTracker,
    PartitionLayout,
    PartitionStats,
    build_partition_layout,
    carry_partition_labels,
    partition_vertices,
    partitioned_greedy_color,
    partitioned_kk_mis2,
    partitioned_luby_mis1,
)

__all__ = [
    "ExecutionSpace",
    "SerialSpace",
    "VectorSpace",
    "ThreadSpace",
    "default_space",
    "available_spaces",
    "exclusive_scan",
    "inclusive_scan",
    "stream_compact",
    "segmented_min",
    "segmented_max",
    "segmented_all_equal",
    "segmented_any_equal",
    "segmented_lexmin",
    "segmented_sum",
    "ExecutionBackend",
    "NumpyBackend",
    "ChunkedBackend",
    "ThreadedBackend",
    "NumbaBackend",
    "PhaseFuture",
    "StepGroupError",
    "ResidentSession",
    "register_backend",
    "get_backend",
    "available_backends",
    "default_backend",
    "resolve_backend",
    "set_default_backend",
    "numba_available",
    "shipped_nbytes",
    "shutdown_partition_pools",
    "MessageConnection",
    "MessageListener",
    "TransportError",
    "connect_with_retry",
    "DistributedBackend",
    "RankCluster",
    "RankDeathError",
    "shutdown_rank_clusters",
    "GraphPart",
    "HaloDeltaTracker",
    "PartitionLayout",
    "PartitionStats",
    "build_partition_layout",
    "carry_partition_labels",
    "partition_vertices",
    "partitioned_greedy_color",
    "partitioned_kk_mis2",
    "partitioned_luby_mis1",
    "DeviceSpec",
    "DEVICES",
    "device",
    "device_names",
    "TrafficCounter",
    "KernelTraffic",
    "scale_traffic",
    "predict_device_time",
    "bandwidth_efficiency",
    "strong_scaling_times",
    "scaling_efficiency",
]

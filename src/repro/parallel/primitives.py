"""Vectorised data-parallel primitives over CSR structure.

Algorithm 1's inner loops are all of the form "for every vertex in a worklist, reduce
(min / all / any) over its adjacency list". On a GPU the paper maps the outer loop to
thread teams and the inner loop to SIMD lanes (Section V-D); in this reproduction the
same operations are expressed as *segmented reductions* over the CSR ``entries`` array
so that NumPy executes the whole worklist in a handful of array operations. These
primitives are the performance-critical core shared by the MIS, coloring and
aggregation kernels.

All primitives are deterministic: they are pure functions of their inputs with no
data races (reductions use associative, commutative operators evaluated in a fixed
order), matching the deterministic guarantee the paper makes for its algorithm.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "exclusive_scan",
    "inclusive_scan",
    "stream_compact",
    "segmented_min",
    "segmented_max",
    "segmented_sum",
    "segmented_all_equal",
    "segmented_any_equal",
    "segmented_lexmin",
    "row_lengths",
    "expand_rows",
]


# --------------------------------------------------------------------------- scans
def inclusive_scan(values: np.ndarray) -> np.ndarray:
    """Inclusive prefix sum (``out[i] = sum(values[:i+1])``)."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError("inclusive_scan expects a 1-D array")
    return np.cumsum(arr)


def exclusive_scan(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum (``out[i] = sum(values[:i])``), the Kokkos ``parallel_scan``.

    Returns an array one element longer than the input; the final element is the total
    (handy for building new rowmaps / compacted worklists).
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError("exclusive_scan expects a 1-D array")
    out = np.zeros(arr.size + 1, dtype=np.int64 if arr.dtype.kind in "iub" else arr.dtype)
    np.cumsum(arr, out=out[1:])
    return out


def stream_compact(items: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Stable stream compaction: keep ``items[i]`` where ``keep[i]`` is true.

    This is how Algorithm 1 rebuilds ``worklist1`` / ``worklist2`` each iteration
    (lines 33-34); on the GPU it is realised with a parallel prefix sum, here the scan
    and the gather collapse into a boolean index but the result (and its order) is
    identical.
    """
    items = np.asarray(items)
    keep = np.asarray(keep, dtype=bool)
    if items.shape != keep.shape:
        raise ValueError("items and keep must have the same shape")
    return items[keep]


# --------------------------------------------------------------------------- rows
def row_lengths(rowmap: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Adjacency-list lengths of the selected ``rows``."""
    rowmap = np.asarray(rowmap)
    rows = np.asarray(rows)
    return rowmap[rows + 1] - rowmap[rows]


def expand_rows(rowmap: np.ndarray, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Expand selected CSR rows into flat (slot, segment) index arrays.

    Returns ``(slots, segment_offsets)`` where ``slots`` indexes into ``entries`` for
    every adjacency slot of every selected row (in row order), and
    ``segment_offsets`` (length ``len(rows) + 1``) delimits each row's slots within
    ``slots``. Rows with empty adjacency lists contribute empty segments.
    """
    rowmap = np.asarray(rowmap, dtype=np.int64)
    rows = np.asarray(rows, dtype=np.int64)
    lens = row_lengths(rowmap, rows)
    seg_offsets = exclusive_scan(lens)
    total = int(seg_offsets[-1])
    if total == 0:
        return np.zeros(0, dtype=np.int64), seg_offsets
    # slots[k] = rowmap[rows[j]] + (k - seg_offsets[j]) for the j owning slot k.
    owner = np.repeat(np.arange(rows.size, dtype=np.int64), lens)
    within = np.arange(total, dtype=np.int64) - np.repeat(seg_offsets[:-1], lens)
    slots = rowmap[rows[owner]] + within
    return slots, seg_offsets


def _segmented_reduce(
    values: np.ndarray,
    seg_offsets: np.ndarray,
    op,
    identity,
) -> np.ndarray:
    """Reduce ``values`` within segments delimited by ``seg_offsets`` using ufunc ``op``.

    Empty segments yield ``identity``.
    """
    nseg = seg_offsets.size - 1
    out = np.full(nseg, identity, dtype=values.dtype if values.size else np.asarray(identity).dtype)
    if values.size == 0 or nseg == 0:
        return out
    starts = seg_offsets[:-1]
    nonempty = seg_offsets[1:] > starts
    if not np.any(nonempty):
        return out
    # Pass only non-empty segment starts to reduceat. Because the segments partition
    # ``values`` contiguously, the span from one non-empty start to the next non-empty
    # start (or to the end of the array) contains exactly that segment's values.
    ne_starts = starts[nonempty].astype(np.int64)
    reduced = op.reduceat(values, ne_starts)
    out[nonempty] = reduced
    return out


def segmented_min(values: np.ndarray, seg_offsets: np.ndarray, identity) -> np.ndarray:
    """Per-segment minimum (identity for empty segments)."""
    return _segmented_reduce(np.asarray(values), np.asarray(seg_offsets, dtype=np.int64),
                             np.minimum, identity)


def segmented_max(values: np.ndarray, seg_offsets: np.ndarray, identity) -> np.ndarray:
    """Per-segment maximum (identity for empty segments)."""
    return _segmented_reduce(np.asarray(values), np.asarray(seg_offsets, dtype=np.int64),
                             np.maximum, identity)


def segmented_sum(values: np.ndarray, seg_offsets: np.ndarray) -> np.ndarray:
    """Per-segment sum (0 for empty segments)."""
    return _segmented_reduce(np.asarray(values), np.asarray(seg_offsets, dtype=np.int64),
                             np.add, 0)


def segmented_all_equal(
    values: np.ndarray, reference: np.ndarray, seg_offsets: np.ndarray
) -> np.ndarray:
    """Per-segment test "every value in segment j equals reference[j]".

    Empty segments vacuously return True, matching the ``forall`` semantics of
    Algorithm 1 line 28.
    """
    values = np.asarray(values)
    seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
    reference = np.asarray(reference)
    lens = np.diff(seg_offsets)
    ref_expanded = np.repeat(reference, lens)
    matches = (values == ref_expanded).astype(np.int64)
    return segmented_sum(matches, seg_offsets) == lens


def segmented_lexmin(
    arrays: "list[np.ndarray]",
    seg_offsets: np.ndarray,
    identities: "list",
) -> "list[np.ndarray]":
    """Lexicographic per-segment minimum over parallel arrays.

    ``arrays`` are compared element-wise as tuples ``(arrays[0][i], arrays[1][i], ...)``
    — exactly the 3-way ``(status, priority, id)`` comparison of Bell's uncompressed
    status tuples. Returns one reduced array per input array; empty segments yield the
    corresponding ``identities`` entries.
    """
    if not arrays:
        raise ValueError("segmented_lexmin requires at least one array")
    if len(identities) != len(arrays):
        raise ValueError("identities must match arrays")
    seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
    lens = np.diff(seg_offsets)
    total = int(seg_offsets[-1]) if seg_offsets.size else 0
    still_min = np.ones(total, dtype=bool)
    results: "list[np.ndarray]" = []
    empty = lens == 0
    for arr, ident in zip(arrays, identities):
        arr = np.asarray(arr)
        if arr.size != total:
            raise ValueError("all arrays must match the total segment length")
        if np.issubdtype(arr.dtype, np.integer):
            fill = np.iinfo(arr.dtype).max
        else:
            fill = np.inf
        masked = np.where(still_min, arr, fill)
        reduced = segmented_min(masked, seg_offsets, identity=fill)
        reduced = np.asarray(reduced, dtype=arr.dtype)
        reduced[empty] = ident
        results.append(reduced)
        # Narrow the candidate mask to elements matching the minimum so far.
        expanded = np.repeat(reduced, lens)
        still_min &= arr == expanded
    return results


def segmented_any_equal(
    values: np.ndarray, target, seg_offsets: np.ndarray
) -> np.ndarray:
    """Per-segment test "any value in segment j equals target" (scalar target).

    Empty segments return False, matching the ``exists`` semantics of Algorithm 1
    line 25.
    """
    values = np.asarray(values)
    seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
    matches = (values == target).astype(np.int64)
    return segmented_sum(matches, seg_offsets) > 0

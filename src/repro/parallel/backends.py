"""Pluggable execution backends for the segmented-reduction core.

The paper's central claim is *performance portability*: one algorithm expressed
against a small set of data-parallel primitives (segmented reductions, scans,
stream compaction, row expansion) and mapped onto many devices by swapping the
execution backend underneath. This module is the Python analogue of that seam:
every graph kernel in the package (MIS-2, coloring, aggregation, cluster
Gauss-Seidel) calls the primitives through an :class:`ExecutionBackend` instead
of importing the NumPy implementations directly, so a backend can be swapped
per-call (``backend="chunked"``) or process-wide
(:class:`set_default_backend`).

Four backends ship with the package:

``numpy`` (:class:`NumpyBackend`)
    The reference: whole-worklist vectorised NumPy, delegating to
    :mod:`repro.parallel.primitives`. Every other backend must match it
    bit-for-bit — the determinism tests enforce this.

``chunked`` (:class:`ChunkedBackend`)
    Processes worklists in cache-sized blocks, splitting segmented operations
    only at segment boundaries so per-segment results are identical to the
    reference. Also fans batches of independent graphs out over a process pool
    (:meth:`ExecutionBackend.map_graphs`), the sharding hook for multi-graph
    benchmark sweeps.

``threaded`` (:class:`ThreadedBackend`)
    Shared-memory parallelism: the per-graph primitives are the NumPy
    reference, but :meth:`ExecutionBackend.map_graphs` fans the batch out over
    a :class:`~concurrent.futures.ThreadPoolExecutor`. No pickling of tasks or
    graphs is needed, so it shards the benchmark sweeps with zero start-up
    cost (NumPy releases the GIL inside the large array kernels).

``numba`` (:class:`NumbaBackend`)
    JIT-compiled per-segment loops when :mod:`numba` is importable; degrades
    gracefully to the NumPy reference when it is not (``available`` is False
    then), so code can request it unconditionally.

All backends implement the same deterministic contract: primitives are pure
functions of their inputs and reductions evaluate associative operators per
segment, so results are bit-identical across backends for the integer dtypes
the kernels use. (Floating-point scans are delegated to the reference by the
chunked backend precisely to preserve this guarantee.)
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import primitives as _ref

__all__ = [
    "ExecutionBackend",
    "NumpyBackend",
    "ChunkedBackend",
    "ThreadedBackend",
    "NumbaBackend",
    "PhaseFuture",
    "StepGroupError",
    "ResidentSession",
    "register_backend",
    "get_backend",
    "available_backends",
    "default_backend",
    "resolve_backend",
    "set_default_backend",
    "numba_available",
    "shipped_nbytes",
    "shutdown_partition_pools",
]


def _pool_map(executor_cls, width: Optional[int], fn: Callable, items: Sequence) -> List:
    """Order-preserving pooled map shared by the chunked/threaded backends.

    ``width`` of ``None`` means the CPU count; a one-worker pool or a
    single-item batch executes inline.
    """
    workers = width if width is not None else max(1, os.cpu_count() or 1)
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with executor_cls(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))


# Persistent process pools for ``map_partitions``: partitioned kernels dispatch
# one small batch of per-part tasks per superstep phase, many times per run, so
# paying a fresh ProcessPoolExecutor spin-up on every phase would dominate the
# wall clock. Pools are keyed by width, created lazily, shared by every
# ChunkedBackend instance in the process and torn down at interpreter exit.
_PARTITION_POOLS: "Dict[int, ProcessPoolExecutor]" = {}  # guarded-by: _PARTITION_POOL_LOCK
_PARTITION_POOL_LOCK = threading.Lock()


def _in_worker_process() -> bool:
    """True when this process is itself a multiprocessing pool worker.

    A partitioned kernel running inside a ``map_graphs`` process-pool worker
    must not nest another process pool (cpu² oversubscription, and re-pickling
    every snapshot); its parts execute inline instead — the outer pool already
    provides the parallelism.
    """
    import multiprocessing

    return multiprocessing.parent_process() is not None


# The threaded backend gets the same persistence: supersteps are just as
# frequent there, and while thread spin-up is far cheaper than a process pool,
# paying it 3x per kernel iteration is still pointless.
_PARTITION_THREAD_POOLS: "Dict[int, ThreadPoolExecutor]" = {}  # guarded-by: _PARTITION_POOL_LOCK


def _partition_thread_pool(workers: int) -> ThreadPoolExecutor:
    with _PARTITION_POOL_LOCK:
        pool = _PARTITION_THREAD_POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(max_workers=workers)
            _PARTITION_THREAD_POOLS[workers] = pool
        return pool


def _drop_inherited_partition_pools() -> None:
    # Fork-started children inherit the parent's executor objects, whose worker
    # processes/threads and queues belong to the parent (threads don't survive
    # a fork at all); drop the references so a child that does reach the pool
    # path builds its own. Resident slot pools (and the coordinator's view of
    # what their workers hold) go the same way.
    _PARTITION_POOLS.clear()  # analysis-ok: lock-guard -- at-fork child is single-threaded; the inherited lock may be held by a parent thread that did not survive the fork, so taking it here could deadlock
    _PARTITION_THREAD_POOLS.clear()  # analysis-ok: lock-guard -- at-fork child is single-threaded; the inherited lock may be held by a parent thread that did not survive the fork, so taking it here could deadlock
    _RESIDENT_SLOT_POOLS.clear()  # analysis-ok: lock-guard -- at-fork child is single-threaded; the inherited lock may be held by a parent thread that did not survive the fork, so taking it here could deadlock
    _RESIDENT_SLOT_HAS.clear()  # analysis-ok: lock-guard -- at-fork child is single-threaded; the inherited lock may be held by a parent thread that did not survive the fork, so taking it here could deadlock


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_drop_inherited_partition_pools)


def _partition_pool(workers: int) -> ProcessPoolExecutor:
    with _PARTITION_POOL_LOCK:
        pool = _PARTITION_POOLS.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=workers)
            _PARTITION_POOLS[workers] = pool
        return pool


def _evict_partition_pool(workers: int, pool: ProcessPoolExecutor) -> None:
    """Drop a broken pool from the cache so the next call builds a fresh one."""
    with _PARTITION_POOL_LOCK:
        if _PARTITION_POOLS.get(workers) is pool:
            del _PARTITION_POOLS[workers]
    pool.shutdown(wait=False, cancel_futures=True)


def shutdown_partition_pools() -> None:
    """Shut down every persistent ``map_partitions``/resident pool (idempotent)."""
    with _PARTITION_POOL_LOCK:
        pools = (
            list(_PARTITION_POOLS.values())
            + list(_PARTITION_THREAD_POOLS.values())
            + list(_RESIDENT_SLOT_POOLS.values())
        )
        _PARTITION_POOLS.clear()
        _PARTITION_THREAD_POOLS.clear()
        _RESIDENT_SLOT_POOLS.clear()
        _RESIDENT_SLOT_HAS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_partition_pools)


# ------------------------------------------------------------ resident sessions
#
# ``map_partitions`` ships every per-part task whole, which re-pickles the
# loop-invariant per-part CSR on every superstep of a partitioned kernel. The
# resident seam fixes that: a kernel run opens a *session* that ships each
# part's immutable payload (local CSR, index maps, static parameters) and its
# initial mutable state exactly once, pins part ``i`` to worker ``i % width``
# for the life of the run, and afterwards ships only the per-superstep deltas
# (changed-only halo updates, once-per-iteration worklist indices, phase
# scalars) out and the touched-entry results back. This is the same execution
# model a distributed backend needs — parts resident on ranks, supersteps
# exchanging halo messages — expressed over a local process pool.


def shipped_nbytes(obj: Any) -> int:
    """Logical byte size of a resident payload / superstep delta / result.

    Counts NumPy array payloads (``nbytes``), one 8-byte word per numeric
    scalar, the encoded length of strings/bytes, recursing through
    tuples/lists/dicts; ``None`` (an elided payload member, e.g. the dense
    marker of a sparse halo update) costs 0. The measure is *logical* — what
    the data costs to move, independent of how (or whether) a particular
    backend actually serialises it — so the shipped-bytes accounting recorded
    on partitioned results is bit-identical across backends and gateable by
    ``repro.bench compare``.

    Any other type raises ``TypeError``: this function *is* the meter, so an
    unrecognised payload member must never ship invisibly for free (it used to
    — strings, ``None`` and object-dtype arrays all counted 0 bytes).
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            raise TypeError(
                "shipped_nbytes: object-dtype arrays have no well-defined "
                "logical size; ship primitive-dtype arrays instead"
            )
        return int(obj.nbytes)
    if isinstance(obj, dict):
        return sum(shipped_nbytes(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(shipped_nbytes(v) for v in obj)
    # NumPy scalars carry their dtype and must be checked before the plain
    # Python branch (np.float64 subclasses float): a np.float32 costs 4
    # bytes, a np.int8 or np.bool_ one — the flat 8-byte word this used to
    # charge over-counted every narrow scalar.
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return int(obj.itemsize)
    if isinstance(obj, (bool, int, float)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    raise TypeError(
        f"shipped_nbytes: unsupported payload type {type(obj).__name__!r}; "
        "every shipped member must have a defined logical size (arrays, "
        "numeric scalars, str/bytes, None, or containers of those)"
    )


class _StepGroup:
    """Accounting unit joining the sub-phases of one logical superstep.

    An overlapped driver splits a superstep phase into a boundary and an
    interior :meth:`ResidentSession.run_async` call; both must land in the
    *same* superstep of the byte accounting (one ``supersteps`` increment,
    one combined byte total, completion-order independent) or the overlap
    schedule would drift from the barrier baseline on every gated count.
    """

    __slots__ = ("bytes", "pending", "closed", "failed")

    def __init__(self) -> None:
        #: Bytes accumulated by the group's resolved sub-phases so far.
        self.bytes = 0
        #: Sub-phases submitted but not yet resolved.
        self.pending = 0
        #: True once the committing (final) sub-phase has been submitted.
        self.closed = False
        #: The exception that poisoned the group, if any member's collect
        #: raised. A failed group can never commit — its supersteps increment
        #: and byte totals are dropped wholesale rather than half-counted.
        self.failed: Optional[BaseException] = None


class StepGroupError(RuntimeError):
    """A sibling sub-phase of the same accounting superstep already failed.

    Raised by :meth:`PhaseFuture.result` (and by :meth:`ResidentSession.run_async`
    when asked to join a poisoned open group) so that a failure inside *one*
    member of a ``commit=False`` step group is loud on every member: no caller
    can quietly consume a sibling's results while the superstep's statistics
    were silently thrown away.
    """


class PhaseFuture:
    """Handle for an in-flight :meth:`ResidentSession.run_async` phase.

    :meth:`result` blocks until the phase's results are available, closes its
    share of the superstep byte accounting, and returns the per-task results
    in task order. Calling it again returns the cached results. The wait time
    spent inside :meth:`result` is metered on the session as ``idle_seconds``
    — coordinator time not hidden behind worker compute.
    """

    __slots__ = ("_session", "_group", "_tasks", "_outbound", "_collect", "_results", "_done")

    def __init__(self, session, group, tasks, outbound, collect) -> None:
        self._session = session
        self._group = group
        self._tasks = tasks
        self._outbound = outbound
        self._collect = collect
        self._results: List = []
        self._done = False

    @property
    def done(self) -> bool:
        """Whether :meth:`result` has already resolved this phase."""
        return self._done

    def result(self) -> List:
        if self._done:
            return self._results
        group = self._group
        if group.failed is not None:
            raise StepGroupError(
                "a sibling sub-phase of this superstep group already failed; "
                "the group's superstep/byte statistics were not committed"
            ) from group.failed
        session = self._session
        start = time.perf_counter()
        try:
            results = self._collect()
        except BaseException as exc:
            # Poison the whole group: siblings raise StepGroupError instead of
            # quietly resolving, and the group can never commit its partially
            # accumulated superstep/byte statistics.
            group.failed = exc
            session.idle_seconds += time.perf_counter() - start
            raise
        session.idle_seconds += time.perf_counter() - start
        step = self._outbound + sum(shipped_nbytes(r) for r in results)
        if not session.resident:
            step += sum(session._state_nbytes(i) for i, _ in self._tasks)
        group.bytes += step
        group.pending -= 1
        if group.closed and group.pending == 0:
            session.supersteps += 1
            session.superstep_bytes += group.bytes
            if group.bytes > session.max_superstep_bytes:
                session.max_superstep_bytes = group.bytes
        self._results = results
        self._done = True
        return results


class ResidentSession:
    """One partitioned kernel run's part-pinned execution handle.

    Created by :meth:`ExecutionBackend.resident_session` with the per-part
    immutable ``payloads`` and initial mutable ``states``; the driver then
    calls :meth:`run` once per superstep phase with ``(part_index, delta)``
    tasks. Every task function is ``fn(payload, state, delta) -> result`` —
    a pure function of the payload, the part's retained state and the delta
    that may mutate ``state`` in place (only its own part's state, which is
    what keeps any execution strategy deterministic).

    :meth:`run_async` is the overlap seam: it ships a phase and returns a
    :class:`PhaseFuture` immediately, so the driver can compute (or submit
    more phases) while workers chew. Two ordering guarantees make overlapped
    schedules deterministic: tasks for the *same part* execute in submission
    order (every implementation is per-part FIFO), and a phase's results are
    only observed through :meth:`PhaseFuture.result`. ``commit=False`` joins
    the next ``run_async`` call into the same accounting superstep — the
    boundary/interior halves of a split phase count as one superstep with one
    combined byte total, identical to the barrier schedule regardless of
    completion order.

    The base class implements the shipped-bytes accounting shared by every
    implementation, and it charges **both directions** of each superstep: the
    deltas shipped to the workers *and* the result arrays the workers return
    (the owned values the coordinator scatters back into the shared state are
    communication too — an outbound-only meter under-counts every phase). In
    resident mode each part's payload+state is charged once
    (``resident_bytes``) and each :meth:`run` charges deltas out + results
    back; in non-resident mode (``resident=False``, the pre-affinity
    baseline) every :meth:`run` additionally re-charges the live parts'
    payload+state outbound and the (possibly mutated) state returning with
    the results — exactly what shipping the whole task per superstep costs.
    """

    def __init__(
        self, token: str, payloads: Sequence, states: Sequence, resident: bool = True
    ) -> None:
        if len(payloads) != len(states):
            raise ValueError("payloads and states must have one entry per part")
        self.token = str(token)
        self.resident = bool(resident)
        self.num_parts = len(payloads)
        self._payload_bytes = [shipped_nbytes(p) for p in payloads]
        #: Bytes shipped once, at session open (0 in non-resident mode).
        self.resident_bytes = (
            sum(self._payload_bytes) + sum(shipped_nbytes(s) for s in states)
            if self.resident
            else 0
        )
        #: Bytes shipped across all supersteps so far (both directions).
        self.superstep_bytes = 0
        #: Largest single-superstep shipment (the O(changed halo) acceptance gate).
        self.max_superstep_bytes = 0
        #: Number of :meth:`run` calls (superstep phases) so far.
        self.supersteps = 0
        #: Coordinator wall-clock spent shipping phases (account + submit).
        self.ship_seconds = 0.0
        #: Coordinator wall-clock spent blocked in :meth:`PhaseFuture.result`.
        self.idle_seconds = 0.0
        #: Open accounting group for an uncommitted (``commit=False``) phase.
        self._group: Optional[_StepGroup] = None

    def _state_nbytes(self, part: int) -> int:
        """Live logical size of one part's mutable state (non-resident only).

        State sizes drift during a run (task functions stash worklists in
        state), so the non-resident charge is measured from the live state,
        not the session-open snapshot. Only the sessions that actually hold
        states coordinator-side implement this; resident pinned sessions never
        need it.
        """
        raise NotImplementedError

    def _account_out(self, tasks: Sequence[Tuple[int, Any]]) -> int:
        """Outbound bytes of one phase: deltas (+ payload & pre-phase state
        when non-resident). Called before the tasks run."""
        step = sum(shipped_nbytes(delta) for _, delta in tasks)
        if not self.resident:
            step += sum(
                self._payload_bytes[i] + self._state_nbytes(i) for i, _ in tasks
            )
        return step

    def _submit(self, fn: Callable, tasks: Sequence[Tuple[int, Any]]) -> Callable[[], List]:
        """Ship one phase's tasks and return a zero-argument collector.

        The collector blocks until the phase's results are available and
        returns them in task order. Implementations must execute same-part
        tasks in submission order (per-part FIFO) — that ordering is what
        lets overlapped drivers chain a boundary phase's worker-side stashes
        into the interior phase of the same superstep.
        """
        raise NotImplementedError

    def run_async(
        self, fn: Callable, tasks: Sequence[Tuple[int, Any]], commit: bool = True
    ) -> PhaseFuture:
        """Ship one superstep phase and return immediately with its future.

        ``commit=False`` leaves the accounting superstep open: the next
        ``run_async`` call joins the same :class:`_StepGroup`, and the group
        commits (one ``supersteps`` increment, combined byte total) only when
        every member future has resolved. The outbound charge (deltas, plus
        payload+pre-phase state in non-resident mode) is measured here, before
        anything executes; the inbound charge lands in
        :meth:`PhaseFuture.result`.
        """
        tasks = list(tasks)
        start = time.perf_counter()
        outbound = self._account_out(tasks)
        if self._group is not None and self._group.failed is not None:
            raise StepGroupError(
                "cannot join an open step group whose sibling sub-phase failed"
            ) from self._group.failed
        group = self._group if self._group is not None else _StepGroup()
        group.pending += 1
        if commit:
            group.closed = True
            self._group = None
        else:
            self._group = group
        collect = self._submit(fn, tasks)
        self.ship_seconds += time.perf_counter() - start
        return PhaseFuture(self, group, tasks, outbound, collect)

    def run(self, fn: Callable, tasks: Sequence[Tuple[int, Any]]) -> List:
        """Execute one superstep phase: ``fn(payload, state, delta)`` per task."""
        return self.run_async(fn, tasks).result()

    def close(self) -> None:
        """Release per-session worker state (idempotent)."""

    def __enter__(self) -> "ResidentSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class _LocalResidentSession(ResidentSession):
    """In-address-space session: payloads and states live in the session.

    The serial reference and the threaded backend both use it — tasks read and
    mutate the caller's arrays directly, so it is trivially correct (nothing
    ever crosses a pickle boundary). An optional thread pool fans the per-part
    tasks out; each task touches only its own part's state, so the fan-out is
    race-free.
    """

    def __init__(
        self,
        token: str,
        payloads: Sequence,
        states: Sequence,
        resident: bool = True,
        pool: Optional[ThreadPoolExecutor] = None,
    ) -> None:
        super().__init__(token, payloads, states, resident=resident)
        self._payloads = list(payloads)
        self._states = list(states)
        self._pool = pool

    def _state_nbytes(self, part: int) -> int:
        return shipped_nbytes(self._states[part])

    def _submit(self, fn: Callable, tasks: Sequence[Tuple[int, Any]]) -> Callable[[], List]:
        # Lazy: nothing runs until the future is resolved, so pending phases
        # execute in result() order — which the drivers call in submission
        # order per part, preserving the per-part FIFO guarantee even with a
        # thread pool fanning out the tasks *within* one phase.
        calls = [(self._payloads[i], self._states[i], delta) for i, delta in tasks]
        pool = self._pool
        if pool is None or len(calls) <= 1:
            return lambda: [fn(p, s, d) for p, s, d in calls]
        return lambda: list(pool.map(lambda c: fn(*c), calls))


def _unpinned_phase(args):
    """Non-resident pool task: payload+state cross the boundary both ways."""
    payload, state, fn, delta = args
    return fn(payload, state, delta), state


class _UnpinnedResidentSession(ResidentSession):
    """Non-resident process-pool baseline (the pre-affinity behaviour).

    Coordinator-held payloads and states are shipped through the regular
    ``map_partitions`` pool on *every* superstep and the (possibly mutated)
    states return with the results — the cost profile the resident seam
    exists to eliminate, kept runnable so ``repro.bench compare`` can gate
    the improvement.
    """

    def __init__(
        self, backend: "ExecutionBackend", token: str, payloads: Sequence, states: Sequence
    ) -> None:
        super().__init__(token, payloads, states, resident=False)
        self._backend = backend
        self._payloads = list(payloads)
        self._states = list(states)

    def _state_nbytes(self, part: int) -> int:
        return shipped_nbytes(self._states[part])

    def _submit(self, fn: Callable, tasks: Sequence[Tuple[int, Any]]) -> Callable[[], List]:
        # Lazy like the local session, and additionally the items are built at
        # collect time so each task ships the *current* state object (a prior
        # pending phase on the same part may reassign it).
        def collect() -> List:
            items = [(self._payloads[i], self._states[i], fn, delta) for i, delta in tasks]
            outs = self._backend.map_partitions(_unpinned_phase, items)
            results: List = []
            for (i, _), (result, state) in zip(tasks, outs):
                self._states[i] = state
                results.append(result)
            return results

        return collect


# Worker-side process-global resident store. Payloads are keyed by
# ``(layout token, part)`` and survive across sessions (a rerun on the same
# layout re-ships nothing); states are keyed by ``(session key, part)`` and
# live for exactly one session. The LRU never evicts the token currently being
# installed, so a session's own parts cannot push each other out.
_RESIDENT_PAYLOADS: "OrderedDict[Tuple[str, int], Any]" = OrderedDict()
_RESIDENT_PAYLOAD_CAPACITY = 16
_RESIDENT_STATES: "Dict[Tuple[int, int], Any]" = {}


def _resident_install(args) -> bool:
    """Worker task: store a part's payload (if shipped) and fresh session state.

    Returns False when the coordinator skipped the payload but this worker does
    not hold it (restarted worker, LRU eviction) — the coordinator re-sends.
    """
    token, part, payload, session_key, state = args
    key = (token, part)
    if payload is None:
        if key not in _RESIDENT_PAYLOADS:
            return False
    else:
        _RESIDENT_PAYLOADS[key] = payload
    _RESIDENT_PAYLOADS.move_to_end(key)
    if len(_RESIDENT_PAYLOADS) > _RESIDENT_PAYLOAD_CAPACITY:
        # Evict oldest-first, *skipping* (never stopping at) entries of the
        # token being installed: stopping at a protected head entry used to
        # leave the store over capacity with other tokens' stale payloads
        # parked behind it forever.
        evictable = [k for k in _RESIDENT_PAYLOADS if k[0] != token]
        for stale in evictable:
            if len(_RESIDENT_PAYLOADS) <= _RESIDENT_PAYLOAD_CAPACITY:
                break
            del _RESIDENT_PAYLOADS[stale]
    _RESIDENT_STATES[(session_key, part)] = state
    return True


class _ResidentPayloadMiss(RuntimeError):
    """A slot worker evicted a payload whose session state is still live.

    Raised worker-side (it pickles back through the pool) when a concurrent
    session's installs pushed this part's payload out of the LRU store. The
    coordinator still holds the payload, so :class:`_PinnedResidentSession`
    recovers transparently by re-installing it and retrying the phase.
    """


def _resident_phase(args):
    """Worker task: run one superstep phase against the resident part."""
    token, session_key, part, fn, delta = args
    state = _RESIDENT_STATES.get((session_key, part))
    if state is None:
        # Mutable state cannot be reconstructed by the coordinator; a worker
        # that lost it (restart) ends the run.
        raise RuntimeError(
            f"resident state of part {part} (token {token!r}) missing in "
            f"worker {os.getpid()} — the worker lost its store; rerun the kernel"
        )
    payload = _RESIDENT_PAYLOADS.get((token, part))
    if payload is None:
        raise _ResidentPayloadMiss(token, part)
    _RESIDENT_PAYLOADS.move_to_end((token, part))
    return fn(payload, state, delta)


def _resident_restore_payload(args) -> bool:
    """Worker task: re-install an LRU-evicted payload (state left untouched)."""
    token, part, payload = args
    _RESIDENT_PAYLOADS[(token, part)] = payload
    _RESIDENT_PAYLOADS.move_to_end((token, part))
    return True


def _resident_forget(args) -> bool:
    """Worker task: drop a closed session's states (payloads stay cached)."""
    session_key, parts = args
    for part in parts:
        _RESIDENT_STATES.pop((session_key, part), None)
    return True


# How many restore-and-retry rounds a session attempts when a phase reports a
# payload miss before giving up. One round is almost always enough (the
# coordinator re-installs, the retry hits), but under a crowded slot a
# *concurrent* session's installs can re-evict the payload between the restore
# and the retry — a single-shot recovery then surfaces the raw miss as an
# opaque failure. Bounded so two sessions ping-ponging a slot's LRU cannot
# livelock the coordinator.
_RESIDENT_MISS_ATTEMPTS = 3


# Coordinator-side slot pools: slot ``j`` is a persistent single-worker
# ProcessPoolExecutor permanently holding the parts with ``part % width == j``.
# ``_RESIDENT_SLOT_HAS`` mirrors which (token, part) payloads each slot's
# worker is believed to hold, so repeat sessions skip the payload pickle
# entirely. The mirror is LRU-bounded to the worker store's capacity (it
# would otherwise grow by one entry per kernel run forever) and self-heals in
# both directions: a stale "known" entry costs one payload=None round trip
# that the worker acks False (the entry is dropped and the payload re-sent),
# a dropped entry merely re-ships a payload the worker still had.
_RESIDENT_SLOT_POOLS: "Dict[int, ProcessPoolExecutor]" = {}  # guarded-by: _PARTITION_POOL_LOCK
_RESIDENT_SLOT_HAS: "Dict[int, OrderedDict[Tuple[str, int], None]]" = {}  # guarded-by: _PARTITION_POOL_LOCK
_RESIDENT_SESSION_KEYS = itertools.count(1)


def _resident_slot(idx: int) -> ProcessPoolExecutor:
    with _PARTITION_POOL_LOCK:
        pool = _RESIDENT_SLOT_POOLS.get(idx)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=1)
            _RESIDENT_SLOT_POOLS[idx] = pool
            _RESIDENT_SLOT_HAS[idx] = OrderedDict()
        return pool


def _slot_known(slot: int, key: Tuple[str, int]) -> bool:
    with _PARTITION_POOL_LOCK:
        return key in _RESIDENT_SLOT_HAS.get(slot, ())


def _slot_mark(slot: int, key: Tuple[str, int], present: bool) -> None:
    with _PARTITION_POOL_LOCK:
        mirror = _RESIDENT_SLOT_HAS.get(slot)
        if mirror is None:
            return
        if not present:
            mirror.pop(key, None)
            return
        mirror[key] = None
        mirror.move_to_end(key)
        while len(mirror) > _RESIDENT_PAYLOAD_CAPACITY:
            mirror.popitem(last=False)


def _evict_resident_slot(idx: int) -> None:
    """Drop a broken slot pool so the next session builds a fresh worker."""
    with _PARTITION_POOL_LOCK:
        pool = _RESIDENT_SLOT_POOLS.pop(idx, None)
        _RESIDENT_SLOT_HAS.pop(idx, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


class _PinnedResidentSession(ResidentSession):
    """Chunked-backend session: part ``i`` resides in slot ``i % width``.

    Session open *submits* each part's payload (unless its slot already caches
    the layout token) and fresh state to its slot worker without waiting — the
    install acks resolve at the first phase submission (:meth:`_finish_install`),
    so install latency overlaps the coordinator's superstep-0 preparation.
    Every later superstep ships only ``(token, session, part, fn, delta)`` —
    the CSR never crosses the pickle boundary again.
    """

    def __init__(
        self, token: str, payloads: Sequence, states: Sequence, width: int
    ) -> None:
        super().__init__(token, payloads, states, resident=True)
        #: Payloads are retained so an LRU-evicted one (a concurrent session
        #: crowding a shared slot worker) can be re-installed transparently.
        self._payloads = list(payloads)
        self._key = next(_RESIDENT_SESSION_KEYS)
        self._nslots = max(1, min(int(width), len(payloads)))
        self._closed = False
        pending: List = []
        for part, (payload, state) in enumerate(zip(payloads, states)):
            slot = part % self._nslots
            pool = _resident_slot(slot)
            known = _slot_known(slot, (token, part))
            fut = pool.submit(
                _resident_install,
                (token, part, None if known else payload, self._key, state),
            )
            pending.append((slot, part, payload, state, fut))
        self._pending_installs: Optional[List] = pending

    def _finish_install(self) -> None:
        """Resolve the deferred install acks (idempotent).

        Must complete before any phase ships: a False ack means the worker
        holds *neither* the payload nor this session's state (the install
        task installs nothing on a payload miss), so the full install is
        re-sent synchronously here. The single-worker slot pools are FIFO, so
        even though the acks resolve late, the installs themselves executed
        before any phase submitted after this call.
        """
        pending, self._pending_installs = self._pending_installs, None
        if not pending:
            return
        for slot, part, payload, state, fut in pending:
            try:
                ok = fut.result()
                if not ok:
                    # Stale coordinator view (worker restarted or evicted the
                    # payload underneath us); drop the entry, ship the payload.
                    _slot_mark(slot, (self.token, part), present=False)
                    _resident_slot(slot).submit(
                        _resident_install,
                        (self.token, part, payload, self._key, state),
                    ).result()
            except BrokenProcessPool:
                _evict_resident_slot(slot)
                raise
            _slot_mark(slot, (self.token, part), present=True)

    def _submit(self, fn: Callable, tasks: Sequence[Tuple[int, Any]]) -> Callable[[], List]:
        if self._pending_installs is not None:
            self._finish_install()
        futures = [
            _resident_slot(i % self._nslots).submit(
                _resident_phase, (self.token, self._key, i, fn, delta)
            )
            for i, delta in tasks
        ]
        return lambda: self._collect(fn, tasks, futures)

    def _collect(self, fn: Callable, tasks: Sequence[Tuple[int, Any]], futures) -> List:
        try:
            results: List = []
            for (i, delta), fut in zip(tasks, futures):
                try:
                    results.append(fut.result())
                except _ResidentPayloadMiss:
                    # The worker still has this part's state but another
                    # session's installs evicted the payload; re-ship it and
                    # retry the phase (the task has not run yet). A concurrent
                    # session crowding the slot can re-evict between the
                    # restore and the retry, so the recovery loops — bounded,
                    # with a clear error on exhaustion.
                    slot = i % self._nslots
                    for attempt in range(_RESIDENT_MISS_ATTEMPTS):
                        pool = _resident_slot(slot)
                        pool.submit(
                            _resident_restore_payload,
                            (self.token, i, self._payloads[i]),
                        ).result()
                        _slot_mark(slot, (self.token, i), present=True)
                        try:
                            results.append(
                                pool.submit(
                                    _resident_phase,
                                    (self.token, self._key, i, fn, delta),
                                ).result()
                            )
                            break
                        except _ResidentPayloadMiss:
                            continue
                    else:
                        raise RuntimeError(
                            f"payload of part {i} (token {self.token!r}) was "
                            f"evicted again after each of "
                            f"{_RESIDENT_MISS_ATTEMPTS} restore attempts — "
                            f"slot {slot}'s worker store is too crowded for "
                            f"the concurrent sessions sharing it; raise "
                            f"_RESIDENT_PAYLOAD_CAPACITY or serialise the runs"
                        ) from None
            return results
        except BrokenProcessPool:
            # A slot worker died; its resident state is unrecoverable, so the
            # run cannot continue — but evict every slot so later sessions get
            # healthy workers instead of permanently failing pools.
            for slot in range(self._nslots):
                _evict_resident_slot(slot)
            raise

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pending_installs is not None:
            # A session closed before its first phase still owes the ack
            # resolution (a False ack left the worker without this session's
            # state; resolving makes the forget below exact). Best effort —
            # a broken slot has lost the states anyway.
            try:
                self._finish_install()
            except Exception:
                pass
        by_slot: Dict[int, List[int]] = {}
        for part in range(self.num_parts):
            by_slot.setdefault(part % self._nslots, []).append(part)
        for slot, parts in by_slot.items():
            with _PARTITION_POOL_LOCK:
                pool = _RESIDENT_SLOT_POOLS.get(slot)
            if pool is None:
                # The slot was evicted/shut down — its states are gone already.
                continue
            try:
                pool.submit(_resident_forget, (self._key, parts)).result()
            except Exception:
                # Best effort: a dead slot has already lost the states anyway.
                pass


def numba_available() -> bool:
    """True when the optional :mod:`numba` dependency is importable."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


class ExecutionBackend:
    """Interface every execution backend implements.

    The base class provides the vectorised-NumPy reference behaviour for every
    primitive, so a backend only overrides the operations it accelerates. All
    overrides must be bit-identical to the reference for integer dtypes — the
    backend-equivalence test suite parametrises the full kernel stack over all
    registered backends and asserts exactly that.
    """

    #: Registry key and the name recorded on results / traffic counters.
    name: str = "abstract"

    # ------------------------------------------------------------------- scans
    def inclusive_scan(self, values: np.ndarray) -> np.ndarray:
        """Inclusive prefix sum (``out[i] = sum(values[:i+1])``)."""
        return _ref.inclusive_scan(values)

    def exclusive_scan(self, values: np.ndarray) -> np.ndarray:
        """Exclusive prefix sum, one element longer than the input."""
        return _ref.exclusive_scan(values)

    # -------------------------------------------------------------- compaction
    def stream_compact(self, items: np.ndarray, keep: np.ndarray) -> np.ndarray:
        """Stable stream compaction: keep ``items[i]`` where ``keep[i]``."""
        return _ref.stream_compact(items, keep)

    # -------------------------------------------------------------------- rows
    def row_lengths(self, rowmap: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Adjacency-list lengths of the selected CSR rows."""
        return _ref.row_lengths(rowmap, rows)

    def expand_rows(
        self, rowmap: np.ndarray, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Expand selected CSR rows into flat (slots, segment_offsets) arrays."""
        return _ref.expand_rows(rowmap, rows)

    # -------------------------------------------------------------- reductions
    def segmented_min(
        self, values: np.ndarray, seg_offsets: np.ndarray, identity
    ) -> np.ndarray:
        """Per-segment minimum (identity for empty segments)."""
        return _ref.segmented_min(values, seg_offsets, identity)

    def segmented_max(
        self, values: np.ndarray, seg_offsets: np.ndarray, identity
    ) -> np.ndarray:
        """Per-segment maximum (identity for empty segments)."""
        return _ref.segmented_max(values, seg_offsets, identity)

    def segmented_sum(self, values: np.ndarray, seg_offsets: np.ndarray) -> np.ndarray:
        """Per-segment sum (0 for empty segments)."""
        return _ref.segmented_sum(values, seg_offsets)

    def segmented_all_equal(
        self, values: np.ndarray, reference: np.ndarray, seg_offsets: np.ndarray
    ) -> np.ndarray:
        """Per-segment "every value equals reference[j]" (vacuously True)."""
        return _ref.segmented_all_equal(values, reference, seg_offsets)

    def segmented_any_equal(
        self, values: np.ndarray, target, seg_offsets: np.ndarray
    ) -> np.ndarray:
        """Per-segment "any value equals target" (False for empty segments)."""
        return _ref.segmented_any_equal(values, target, seg_offsets)

    def segmented_lexmin(
        self,
        arrays: "List[np.ndarray]",
        seg_offsets: np.ndarray,
        identities: "List",
    ) -> "List[np.ndarray]":
        """Lexicographic per-segment minimum over parallel arrays."""
        return _ref.segmented_lexmin(arrays, seg_offsets, identities)

    # ------------------------------------------------------------ graph batches
    def map_graphs(self, fn: Callable, items: Sequence) -> List:
        """Apply ``fn`` to every item of a batch, preserving order.

        The reference executes serially; sharded backends may fan the batch out
        over a worker pool. ``fn`` must be a pure function so results are
        independent of the execution strategy.
        """
        return [fn(item) for item in items]

    def map_partitions(self, fn: Callable, items: Sequence) -> List:
        """Apply ``fn`` to every per-partition task of one superstep, in order.

        This is the intra-graph sharding hook (:mod:`repro.parallel.partitioned`
        drives it): ``items`` are the per-part tasks of one bulk-synchronous
        superstep phase. The contract every backend must honour is the
        determinism rule of the partitioned kernels — each task is a *pure*
        function of a consistent pre-superstep snapshot of the shared state and
        computes values only for vertices its part owns, so tasks within one
        call are independent and any execution order or interleaving yields
        bit-identical results. The reference executes serially; pooled backends
        fan the batch out (a distributed backend would pin parts to ranks and
        implement the surrounding gather/scatter as halo messages).
        """
        return [fn(item) for item in items]

    def map_partitions_resident(
        self,
        token: str,
        payloads: Sequence,
        states: Sequence,
        resident: bool = True,
    ) -> ResidentSession:
        """Open a part-pinned session for one partitioned kernel run.

        ``payloads`` are the per-part *loop-invariant* inputs (local CSR, index
        maps, static parameters) and ``states`` the per-part mutable arrays;
        both ship once, identified by the layout ``token``. The returned
        :class:`ResidentSession` then executes each superstep phase via
        ``session.run(fn, [(part_index, delta), ...])`` where ``fn(payload,
        state, delta)`` may mutate only its own part's ``state`` — after the
        first superstep only the deltas (halo values, worklist indices, phase
        scalars) cross whatever boundary the backend has.

        The reference implementation keeps everything in the caller's address
        space (trivially correct for the serial and threaded backends); the
        chunked backend pins part ``i`` to a persistent slot worker, and a
        distributed backend would pin parts to ranks the same way. Pass
        ``resident=False`` for the non-resident baseline, which re-ships
        payload+state every superstep (and accounts it).
        """
        return _LocalResidentSession(token, payloads, states, resident=resident)

    def with_jobs(self, jobs: Optional[int]) -> "ExecutionBackend":
        """A backend equivalent to this one with ``jobs`` ``map_graphs`` workers.

        Serial backends ignore the request and return themselves; pooled
        backends return a reconfigured clone (the registered instance is never
        mutated). ``None`` means "backend default".
        """
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class NumpyBackend(ExecutionBackend):
    """The vectorised whole-worklist NumPy reference backend."""

    name = "numpy"


class ChunkedBackend(ExecutionBackend):
    """Cache-blocked backend: segmented operations run in cache-sized blocks.

    Blocks are split only at segment boundaries, so every segment is reduced by
    exactly one reference call and results are bit-identical to
    :class:`NumpyBackend`. This mirrors how a CPU implementation tiles the
    worklist so each block's values stay resident in L2 while the reduction
    runs, and it bounds the temporary-array footprint of ``expand_rows`` on
    huge worklists.

    Parameters
    ----------
    block_elements:
        Target number of flat elements per block (default 32768, about 256 KiB
        of int64 values — comfortably cache-sized).
    processes:
        Worker-pool width for :meth:`map_graphs`. ``None`` uses the CPU count;
        1 executes inline.
    """

    name = "chunked"

    def __init__(self, block_elements: int = 32768, processes: Optional[int] = None) -> None:
        if block_elements < 1:
            raise ValueError("block_elements must be >= 1")
        self.block_elements = int(block_elements)
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes

    # ------------------------------------------------------------------ helpers
    def _segment_blocks(self, seg_offsets: np.ndarray) -> List[Tuple[int, int]]:
        """Split segment indices into blocks of at most ~block_elements values.

        A segment larger than the block size gets a block of its own — segments
        are never split, which is what keeps per-segment results identical to
        the reference.
        """
        nseg = int(seg_offsets.size) - 1
        blocks: List[Tuple[int, int]] = []
        start = 0
        while start < nseg:
            target = int(seg_offsets[start]) + self.block_elements
            stop = int(np.searchsorted(seg_offsets, target, side="left"))
            stop = min(max(stop, start + 1), nseg)
            blocks.append((start, stop))
            start = stop
        return blocks

    def _chunk_segmented(self, seg_offsets: np.ndarray, run_block: Callable) -> np.ndarray:
        """Run ``run_block(s, e)`` over segment blocks and concatenate results."""
        seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
        blocks = self._segment_blocks(seg_offsets)
        pieces = [run_block(s, e) for s, e in blocks]
        return np.concatenate(pieces)

    def _small(self, seg_offsets) -> bool:
        """Fast path: a worklist that fits one block runs the reference directly."""
        seg_offsets = np.asarray(seg_offsets)
        return seg_offsets.size <= 2 or int(seg_offsets[-1]) <= self.block_elements

    # -------------------------------------------------------------------- scans
    def exclusive_scan(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values)
        if arr.ndim != 1:
            raise ValueError("exclusive_scan expects a 1-D array")
        # Blockwise float cumsum would reassociate additions; delegate floats to
        # the reference to keep results bit-identical across backends.
        if arr.dtype.kind not in "iub" or arr.size <= self.block_elements:
            return _ref.exclusive_scan(arr)
        out = np.zeros(arr.size + 1, dtype=np.int64)
        carry = np.int64(0)
        for start in range(0, arr.size, self.block_elements):
            stop = min(arr.size, start + self.block_elements)
            np.cumsum(arr[start:stop], out=out[start + 1: stop + 1])
            out[start + 1: stop + 1] += carry
            carry = out[stop]
        return out

    def inclusive_scan(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values)
        if arr.ndim != 1:
            raise ValueError("inclusive_scan expects a 1-D array")
        if arr.dtype.kind not in "iub" or arr.size <= self.block_elements:
            return _ref.inclusive_scan(arr)
        # The reference is np.cumsum, whose output dtype follows NumPy's
        # promotion rules (e.g. uint32 -> uint64, bool -> int64). Probe that
        # dtype on an empty slice so blocked results match the reference
        # exactly regardless of input size.
        out = np.empty(arr.size, dtype=np.cumsum(arr[:0]).dtype)
        carry = out.dtype.type(0)
        for start in range(0, arr.size, self.block_elements):
            stop = min(arr.size, start + self.block_elements)
            np.cumsum(arr[start:stop], out=out[start:stop])
            out[start:stop] += carry
            carry = out[stop - 1]
        return out

    # --------------------------------------------------------------- compaction
    def stream_compact(self, items: np.ndarray, keep: np.ndarray) -> np.ndarray:
        items = np.asarray(items)
        keep = np.asarray(keep, dtype=bool)
        if items.shape != keep.shape:
            raise ValueError("items and keep must have the same shape")
        if items.size <= self.block_elements:
            return _ref.stream_compact(items, keep)
        pieces = [
            _ref.stream_compact(
                items[s: s + self.block_elements], keep[s: s + self.block_elements]
            )
            for s in range(0, items.size, self.block_elements)
        ]
        return np.concatenate(pieces)

    # --------------------------------------------------------------------- rows
    def expand_rows(
        self, rowmap: np.ndarray, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        rowmap = np.asarray(rowmap, dtype=np.int64)
        rows = np.asarray(rows, dtype=np.int64)
        lens = _ref.row_lengths(rowmap, rows)
        bounds = _ref.exclusive_scan(lens)
        if self._small(bounds):
            return _ref.expand_rows(rowmap, rows)
        blocks = self._segment_blocks(bounds)
        slot_pieces: List[np.ndarray] = []
        seg_pieces: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
        offset = np.int64(0)
        for s, e in blocks:
            bslots, bseg = _ref.expand_rows(rowmap, rows[s:e])
            slot_pieces.append(bslots)
            seg_pieces.append(bseg[1:] + offset)
            offset += bseg[-1]
        return np.concatenate(slot_pieces), np.concatenate(seg_pieces)

    # --------------------------------------------------------------- reductions
    def _blocked_reduce(self, values, seg_offsets, reduce_block):
        values = np.asarray(values)
        seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
        if self._small(seg_offsets):
            return reduce_block(values, seg_offsets)

        def run(s: int, e: int) -> np.ndarray:
            lo, hi = seg_offsets[s], seg_offsets[e]
            return reduce_block(values[lo:hi], seg_offsets[s: e + 1] - lo)

        return self._chunk_segmented(seg_offsets, run)

    def segmented_min(self, values, seg_offsets, identity):
        return self._blocked_reduce(
            values, seg_offsets, lambda v, o: _ref.segmented_min(v, o, identity)
        )

    def segmented_max(self, values, seg_offsets, identity):
        return self._blocked_reduce(
            values, seg_offsets, lambda v, o: _ref.segmented_max(v, o, identity)
        )

    def segmented_sum(self, values, seg_offsets):
        return self._blocked_reduce(values, seg_offsets, _ref.segmented_sum)

    def segmented_any_equal(self, values, target, seg_offsets):
        return self._blocked_reduce(
            values, seg_offsets, lambda v, o: _ref.segmented_any_equal(v, target, o)
        )

    def segmented_all_equal(self, values, reference, seg_offsets):
        values = np.asarray(values)
        reference = np.asarray(reference)
        seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
        if self._small(seg_offsets):
            return _ref.segmented_all_equal(values, reference, seg_offsets)

        def run(s: int, e: int) -> np.ndarray:
            lo, hi = seg_offsets[s], seg_offsets[e]
            return _ref.segmented_all_equal(
                values[lo:hi], reference[s:e], seg_offsets[s: e + 1] - lo
            )

        return self._chunk_segmented(seg_offsets, run)

    def segmented_lexmin(self, arrays, seg_offsets, identities):
        if not arrays:
            raise ValueError("segmented_lexmin requires at least one array")
        arrays = [np.asarray(a) for a in arrays]
        seg_offsets = np.asarray(seg_offsets, dtype=np.int64)
        if self._small(seg_offsets):
            return _ref.segmented_lexmin(arrays, seg_offsets, identities)
        blocks = self._segment_blocks(seg_offsets)
        pieces: List[List[np.ndarray]] = []
        for s, e in blocks:
            lo, hi = seg_offsets[s], seg_offsets[e]
            pieces.append(
                _ref.segmented_lexmin(
                    [a[lo:hi] for a in arrays], seg_offsets[s: e + 1] - lo, identities
                )
            )
        return [np.concatenate([p[i] for p in pieces]) for i in range(len(arrays))]

    # ------------------------------------------------------------- graph batches
    def map_graphs(self, fn: Callable, items: Sequence) -> List:
        """Fan a batch of independent per-graph computations over a process pool.

        Falls back to inline execution for single-item batches or a one-worker
        configuration. ``fn`` and the items must be picklable; order is
        preserved, so results are deterministic regardless of pool width.
        """
        return _pool_map(ProcessPoolExecutor, self.processes, fn, items)

    def map_partitions(self, fn: Callable, items: Sequence) -> List:
        """Fan one superstep's per-part tasks over a *persistent* process pool.

        Unlike :meth:`map_graphs` (one pool per sweep-sized batch), partitioned
        kernels call this several times per iteration, so the pool is created
        once per width and reused for the life of the process
        (:func:`shutdown_partition_pools` tears it down). Single-task batches,
        one-worker configurations and calls made from inside a pool worker
        (a partitioned kernel nested under ``map_graphs`` sharding) execute
        inline.
        """
        items = list(items)
        workers = self.processes if self.processes is not None else max(1, os.cpu_count() or 1)
        if workers <= 1 or len(items) <= 1 or _in_worker_process():
            return [fn(item) for item in items]
        pool = _partition_pool(workers)
        try:
            return list(pool.map(fn, items))
        except BrokenProcessPool:
            # A worker died (OOM-kill, native crash). A broken executor never
            # recovers — evict it so this run and every later one get a fresh
            # pool instead of inheriting a permanently failing one.
            _evict_partition_pool(workers, pool)
            fresh = _partition_pool(workers)
            try:
                return list(fresh.map(fn, items))
            except BrokenProcessPool:
                # The tasks themselves kill workers; don't cache the casualty.
                _evict_partition_pool(workers, fresh)
                raise

    def map_partitions_resident(
        self,
        token: str,
        payloads: Sequence,
        states: Sequence,
        resident: bool = True,
    ) -> ResidentSession:
        """Open a part-pinned session over persistent single-worker slot pools.

        Part ``i`` is pinned to slot ``i % width`` for the life of the session
        (and, because slot pools and their payload caches persist, across
        sessions sharing a layout token), so the per-part CSR is pickled at
        most once per run. Single-worker configurations, single-part layouts
        and calls from inside a ``map_graphs`` pool worker fall back to the
        in-process session; ``resident=False`` selects the non-resident
        baseline that re-ships payload+state through ``map_partitions`` every
        superstep.
        """
        workers = self.processes if self.processes is not None else max(1, os.cpu_count() or 1)
        if workers <= 1 or len(payloads) <= 1 or _in_worker_process():
            return _LocalResidentSession(token, payloads, states, resident=resident)
        if not resident:
            return _UnpinnedResidentSession(self, token, payloads, states)
        return _PinnedResidentSession(token, payloads, states, width=workers)

    def with_jobs(self, jobs: Optional[int]) -> "ChunkedBackend":
        if jobs is None:
            return self
        return ChunkedBackend(block_elements=self.block_elements, processes=jobs)


class ThreadedBackend(ExecutionBackend):
    """Shared-memory threaded backend.

    The per-graph primitives are the NumPy reference (so per-graph results are
    trivially bit-identical), while :meth:`map_graphs` fans a batch of
    independent per-graph computations over a
    :class:`~concurrent.futures.ThreadPoolExecutor`. Unlike the chunked
    backend's process pool this needs no pickling: tasks share the caller's
    address space (and its graph caches), which makes it the cheapest way to
    shard a multi-graph benchmark sweep. NumPy releases the GIL inside the
    large array kernels, so independent graphs genuinely overlap.

    Parameters
    ----------
    threads:
        Worker-pool width for :meth:`map_graphs`. ``None`` uses the CPU count;
        1 executes inline.
    """

    name = "threaded"

    def __init__(self, threads: Optional[int] = None) -> None:
        if threads is not None and threads < 1:
            raise ValueError("threads must be >= 1")
        self.threads = threads

    def map_graphs(self, fn: Callable, items: Sequence) -> List:
        """Fan a batch of independent per-graph computations over a thread pool.

        Order is preserved (results are deterministic regardless of pool
        width); single-item batches and one-thread configurations execute
        inline.
        """
        return _pool_map(ThreadPoolExecutor, self.threads, fn, items)

    def map_partitions(self, fn: Callable, items: Sequence) -> List:
        """Fan one superstep's per-part tasks over a *persistent* thread pool.

        Parts share the caller's address space, so the gathered snapshot arrays
        are passed by reference and no pickling happens — the cheapest way to
        shard the supersteps of a partitioned kernel on one host. Like the
        chunked backend, the pool is reused across supersteps rather than
        respawned per phase; single-task batches and one-thread configurations
        execute inline.
        """
        items = list(items)
        workers = self.threads if self.threads is not None else max(1, os.cpu_count() or 1)
        if workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        return list(_partition_thread_pool(workers).map(fn, items))

    def map_partitions_resident(
        self,
        token: str,
        payloads: Sequence,
        states: Sequence,
        resident: bool = True,
    ) -> ResidentSession:
        """In-process session fanned over the persistent thread pool.

        Payloads and states already live in the caller's address space, so the
        resident contract is free — tasks mutate their part's state directly
        and nothing is ever serialised. The shipped-bytes accounting still
        follows the requested mode so the recorded measurables stay
        bit-identical across backends.
        """
        workers = self.threads if self.threads is not None else max(1, os.cpu_count() or 1)
        pool = (
            _partition_thread_pool(workers)
            if workers > 1 and len(payloads) > 1
            else None
        )
        return _LocalResidentSession(token, payloads, states, resident=resident, pool=pool)

    def with_jobs(self, jobs: Optional[int]) -> "ThreadedBackend":
        if jobs is None:
            return self
        return ThreadedBackend(threads=jobs)


class NumbaBackend(NumpyBackend):
    """Numba-JIT backend with graceful degradation.

    When :mod:`numba` is importable the per-segment reduction loops run as
    compiled kernels (the shape a real OpenMP backend would take); when it is
    not, every primitive silently delegates to the NumPy reference so the
    backend can always be requested. ``available`` records which path is
    active.
    """

    name = "numba"

    def __init__(self) -> None:
        self._available: Optional[bool] = None
        self._kernels: Optional[Dict[str, Callable]] = None

    def __getstate__(self) -> Dict[str, object]:
        # Compiled numba dispatchers don't pickle reliably; drop them so the
        # backend can cross a process-pool boundary — workers recompile lazily.
        return {"_available": self._available, "_kernels": None}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    @property
    def available(self) -> bool:
        """Whether the JIT path is active (probed lazily — importing numba is
        expensive, and the backend is registered at package-import time)."""
        if self._available is None:
            self._available = numba_available()
        return self._available

    def _get_kernels(self) -> Optional[Dict[str, Callable]]:
        """Compile (once) and return the jitted kernels, or None unavailable."""
        if not self.available:
            return None
        if self._kernels is None:
            try:
                import numba

                @numba.njit(cache=False)
                def seg_min(values, offs, out):  # pragma: no cover - jitted
                    for j in range(out.size):
                        for k in range(offs[j], offs[j + 1]):
                            if values[k] < out[j]:
                                out[j] = values[k]

                @numba.njit(cache=False)
                def seg_max(values, offs, out):  # pragma: no cover - jitted
                    for j in range(out.size):
                        for k in range(offs[j], offs[j + 1]):
                            if values[k] > out[j]:
                                out[j] = values[k]

                @numba.njit(cache=False)
                def seg_sum(values, offs, out):  # pragma: no cover - jitted
                    for j in range(out.size):
                        for k in range(offs[j], offs[j + 1]):
                            out[j] += values[k]

                self._kernels = {"min": seg_min, "max": seg_max, "sum": seg_sum}
            except Exception:
                # Any JIT failure (unsupported numba build, …) demotes the
                # backend to the NumPy reference for the rest of the process.
                self._available = False
                return None
        return self._kernels

    def _jit_reduce(self, kind: str, values, seg_offsets, identity):
        values = np.asarray(values)
        # The jitted loops compare with </> — on float inputs containing NaN
        # that diverges from the reference's NaN-propagating np.minimum /
        # np.maximum, and the empty-input output dtype is the reference's
        # choice (identity-derived), so both cases delegate: only non-empty
        # integer worklists take the JIT path.
        if values.dtype.kind not in "iu" or values.size == 0:
            return None
        kernels = self._get_kernels()
        if kernels is None:
            return None
        values = np.ascontiguousarray(values)
        seg_offsets = np.ascontiguousarray(np.asarray(seg_offsets, dtype=np.int64))
        nseg = max(int(seg_offsets.size) - 1, 0)
        out = np.full(nseg, identity, dtype=values.dtype)
        if nseg > 0:
            kernels[kind](values, seg_offsets, out)
        return out

    def segmented_min(self, values, seg_offsets, identity):
        out = self._jit_reduce("min", values, seg_offsets, identity)
        if out is None:
            return super().segmented_min(values, seg_offsets, identity)
        return out

    def segmented_max(self, values, seg_offsets, identity):
        out = self._jit_reduce("max", values, seg_offsets, identity)
        if out is None:
            return super().segmented_max(values, seg_offsets, identity)
        return out

    def segmented_sum(self, values, seg_offsets):
        values = np.asarray(values)
        zero = values.dtype.type(0) if values.size else 0
        out = self._jit_reduce("sum", values, seg_offsets, zero)
        if out is None:
            return super().segmented_sum(values, seg_offsets)
        return out


# ------------------------------------------------------------------- registry
_REGISTRY: "Dict[str, ExecutionBackend]" = {}


def register_backend(backend: ExecutionBackend, *, overwrite: bool = False) -> ExecutionBackend:
    """Register ``backend`` under its ``name`` for lookup by :func:`get_backend`."""
    if not isinstance(backend, ExecutionBackend):
        raise TypeError("backend must be an ExecutionBackend instance")
    if backend.name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(backend: "str | ExecutionBackend") -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        return _REGISTRY[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def available_backends() -> List[str]:
    """Names of every registered backend, in registration order."""
    return list(_REGISTRY)


register_backend(NumpyBackend())
register_backend(ChunkedBackend())
register_backend(ThreadedBackend())
register_backend(NumbaBackend())

_DEFAULT: ExecutionBackend = _REGISTRY["numpy"]


def default_backend() -> ExecutionBackend:
    """The process-wide default backend (the NumPy reference unless changed)."""
    return _DEFAULT


def resolve_backend(backend: "Optional[str | ExecutionBackend]" = None) -> ExecutionBackend:
    """Resolve a kernel's ``backend=`` argument (None means the default)."""
    if backend is None:
        return _DEFAULT
    return get_backend(backend)


class set_default_backend:
    """Set the process-wide default backend, optionally scoped as a context.

    Usable both as a plain call (sets the default until changed again)::

        set_default_backend("chunked")

    and as a context manager that restores the previous default on exit::

        with set_default_backend("chunked"):
            kk_mis2(graph)   # runs on the chunked backend
    """

    def __init__(self, backend: "str | ExecutionBackend") -> None:
        global _DEFAULT
        self._previous = _DEFAULT
        self.backend = get_backend(backend)
        _DEFAULT = self.backend

    def __enter__(self) -> ExecutionBackend:
        return self.backend

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _DEFAULT
        _DEFAULT = self._previous
        return False

"""Roofline-style performance model.

The paper's MIS-2 kernel is memory-bound (Section VI-C), so its running time on a
device is, to first order, the memory traffic it moves divided by the device's
memory bandwidth, plus a fixed cost per kernel launch / parallel region. The MIS and
coarsening kernels in this package therefore count the bytes each parallel region
reads and writes (see :class:`TrafficCounter`); this module converts those counters
into predicted device times for the four systems in :mod:`repro.parallel.machine`,
computes the paper's "bandwidth efficiency" metric (Fig. 3) and provides the CPU
strong-scaling model used to regenerate Figs. 4 and 5.

These predictions stand in for wall-clock measurements on hardware we do not have;
Python wall-clock times are reported separately by the benchmark drivers for
relative (speedup) comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .machine import DeviceSpec, device

__all__ = [
    "KernelTraffic",
    "TrafficCounter",
    "scale_traffic",
    "predict_device_time",
    "bandwidth_efficiency",
    "strong_scaling_times",
    "scaling_efficiency",
]


@dataclass
class KernelTraffic:
    """Memory traffic of one parallel region (kernel launch)."""

    #: Label of the kernel (e.g. ``"refresh_row"``); used only for reporting.
    name: str
    #: Bytes read from memory by the region.
    bytes_read: int
    #: Bytes written to memory by the region.
    bytes_written: int
    #: Subset of ``bytes_read`` that is random-access (indexed gather) traffic.
    gather_bytes: int = 0
    #: Whether neighbour gathers used team/SIMD access, which coalesces adjacent
    #: accesses into full memory transactions on GPUs (Section V-D of the paper).
    coalesced: bool = True

    @property
    def total_bytes(self) -> int:
        return int(self.bytes_read) + int(self.bytes_written)


@dataclass
class TrafficCounter:
    """Accumulates the memory traffic of a whole algorithm run.

    Kernels call :meth:`add` once per parallel region; the MIS-2 drivers attach one
    counter per run so that the benchmark harness can convert the run into predicted
    device times. ``backend`` records which execution backend produced the measured
    kernels, so benchmark rows can attribute every measurement.
    """

    kernels: List[KernelTraffic] = field(default_factory=list)
    backend: Optional[str] = None

    def add(
        self,
        name: str,
        bytes_read: int,
        bytes_written: int,
        gather_bytes: int = 0,
        coalesced: bool = True,
    ) -> None:
        """Record one parallel region's traffic.

        ``gather_bytes`` is the random-access portion of ``bytes_read``;
        ``coalesced`` marks whether those gathers are issued with SIMD/team-level
        parallelism (coalesced transactions on GPUs).
        """
        if bytes_read < 0 or bytes_written < 0 or gather_bytes < 0:
            raise ValueError("traffic byte counts must be non-negative")
        if gather_bytes > bytes_read:
            raise ValueError("gather_bytes cannot exceed bytes_read")
        self.kernels.append(
            KernelTraffic(name, int(bytes_read), int(bytes_written), int(gather_bytes), coalesced)
        )

    # ------------------------------------------------------------------ aggregates
    @property
    def num_kernels(self) -> int:
        """Number of recorded parallel regions (kernel launches)."""
        return len(self.kernels)

    @property
    def total_bytes(self) -> int:
        """Total bytes moved."""
        return sum(k.total_bytes for k in self.kernels)

    @property
    def bytes_read(self) -> int:
        return sum(k.bytes_read for k in self.kernels)

    @property
    def bytes_written(self) -> int:
        return sum(k.bytes_written for k in self.kernels)

    def by_kernel(self) -> Dict[str, int]:
        """Total bytes grouped by kernel name."""
        out: Dict[str, int] = {}
        for k in self.kernels:
            out[k.name] = out.get(k.name, 0) + k.total_bytes
        return out

    def merge(self, other: "TrafficCounter") -> "TrafficCounter":
        """Return a new counter containing the kernels of both operands.

        The backend label survives only when both operands agree on it.
        """
        merged = TrafficCounter()
        merged.kernels = list(self.kernels) + list(other.kernels)
        if other.backend in (None, self.backend):
            merged.backend = self.backend
        elif self.backend is None:
            merged.backend = other.backend
        return merged


def scale_traffic(traffic: TrafficCounter, factor: float) -> TrafficCounter:
    """Scale every kernel's byte counts by ``factor`` (kernel count unchanged).

    Used to extrapolate traffic measured on a scaled-down stand-in graph to the
    paper's full problem size: the per-iteration traffic of Algorithm 1 is linear in
    the number of vertices/edges processed, while the number of kernel launches grows
    only with the (logarithmic) iteration count, so scaling bytes and keeping launches
    fixed is a faithful first-order extrapolation.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    scaled = TrafficCounter(backend=traffic.backend)
    for k in traffic.kernels:
        scaled.kernels.append(
            KernelTraffic(
                name=k.name,
                bytes_read=int(k.bytes_read * factor),
                bytes_written=int(k.bytes_written * factor),
                gather_bytes=int(k.gather_bytes * factor),
                coalesced=k.coalesced,
            )
        )
    return scaled


def predict_device_time(
    traffic: TrafficCounter,
    dev: DeviceSpec | str,
    threads: int | None = None,
) -> float:
    """Predicted execution time (seconds) of ``traffic`` on device ``dev``.

    GPUs: ``launches * latency + bytes / bandwidth``.
    CPUs: the same, evaluated at ``threads`` hardware threads through the
    strong-scaling model (defaults to the device's physical core count, which is how
    the paper configures Table II).
    """
    spec = device(dev) if isinstance(dev, str) else dev
    if spec.kind == "gpu":
        # Uncoalesced gathers waste transaction bandwidth on GPUs: each narrow access
        # still moves a full memory transaction, modelled as a 2x inflation of the
        # random-access read traffic (Section V-D motivates the SIMD optimization
        # precisely to avoid this).
        effective_bytes = 0
        for k in traffic.kernels:
            penalty = 1.0 if k.coalesced else 2.0
            effective_bytes += k.total_bytes + (penalty - 1.0) * k.gather_bytes
        return (
            traffic.num_kernels * spec.kernel_latency_s
            + effective_bytes / spec.memory_bandwidth_bytes
        )
    if threads is None:
        threads = spec.physical_cores
    times = strong_scaling_times(traffic, spec, [threads])
    return times[0]


def bandwidth_efficiency(
    traffic: TrafficCounter, dev: DeviceSpec | str, measured_time_s: float | None = None
) -> float:
    """The paper's Fig. 3 metric: MIS-2 instances per second divided by bandwidth.

    ``(1 / time) / bandwidth_GBs``. When ``measured_time_s`` is not given, the
    predicted device time is used. Higher is better; with perfect portability the
    value is identical across devices.
    """
    spec = device(dev) if isinstance(dev, str) else dev
    t = measured_time_s if measured_time_s is not None else predict_device_time(traffic, spec)
    if t <= 0:
        raise ValueError("time must be positive")
    return (1.0 / t) / spec.memory_bandwidth_gbs


def _effective_parallelism(spec: DeviceSpec, threads: int) -> float:
    """Effective parallel speedup factor for ``threads`` hardware threads on a CPU.

    Up to the physical core count parallelism is linear; the second hardware thread
    of each core adds only a small amount (and contention eventually makes it a net
    slowdown), matching the shape the paper observes in Figs. 4-5.
    """
    cores = spec.physical_cores
    if threads <= cores:
        return float(threads)
    extra = threads - cores
    # Each hyperthread adds a diminishing contribution and increases contention on
    # the shared core resources.
    gain = extra * 0.10
    contention = spec.hyperthread_penalty * (extra / cores) * cores
    return max(1.0, cores + gain - contention)


def strong_scaling_times(
    traffic: TrafficCounter,
    dev: DeviceSpec | str,
    thread_counts: Sequence[int],
) -> List[float]:
    """Predicted CPU times (seconds) for each entry of ``thread_counts``.

    The model combines (i) an Amdahl-style serial fraction, (ii) a smoothly saturating
    memory-bandwidth speedup ``S(p) = p (1 + f) / (1 + p f)`` where ``f`` is the
    device's bandwidth-contention coefficient (near-linear for small ``p``, bending
    over as the memory system saturates), and (iii) a hyperthreading penalty past the
    physical core count. The single-thread time is derived from the traffic and the
    fraction of peak bandwidth a single core can drive.
    """
    spec = device(dev) if isinstance(dev, str) else dev
    if spec.kind != "cpu":
        raise ValueError("strong_scaling_times applies to CPU devices")
    if any(t < 1 for t in thread_counts):
        raise ValueError("thread counts must be >= 1")
    single_core_bw = spec.memory_bandwidth_bytes * spec.single_core_bandwidth_fraction
    t1_mem = traffic.total_bytes / single_core_bw
    region_cost = traffic.num_kernels * spec.kernel_latency_s
    contention = spec.bandwidth_contention
    times = []
    for p in thread_counts:
        eff = _effective_parallelism(spec, int(p))
        speedup = eff * (1.0 + contention) / (1.0 + eff * contention)
        parallel_time = (1.0 - spec.serial_fraction) * t1_mem / speedup
        serial_time = spec.serial_fraction * t1_mem
        # Synchronisation overhead grows mildly with the number of threads.
        sync = region_cost * (1.0 + 0.02 * (int(p) - 1))
        times.append(parallel_time + serial_time + sync)
    return times


def scaling_efficiency(
    traffic: TrafficCounter,
    dev: DeviceSpec | str,
    thread_counts: Sequence[int],
) -> List[float]:
    """Strong-scaling efficiency ``t(1) / (p * t(p))`` for the given thread counts
    (1.0 is ideal), as plotted in the paper's Figs. 4 and 5."""
    spec = device(dev) if isinstance(dev, str) else dev
    t1 = strong_scaling_times(traffic, spec, [1])[0]
    times = strong_scaling_times(traffic, spec, thread_counts)
    return [t1 / (p * t) for p, t in zip(thread_counts, times)]

"""Device catalogue for the performance model.

The paper evaluates on four systems and states the algorithm is memory-bound, defining
"bandwidth efficiency" (Fig. 3) in terms of each device's theoretical global memory
bandwidth: 900 GB/s (NVIDIA V100), 1200 GB/s (AMD MI100), 238 GB/s (dual Intel Xeon
Platinum 8160 "Skylake"), 317 GB/s (dual Cavium ThunderX2). Those numbers, together
with core counts and per-kernel launch/barrier latencies, parameterise the roofline
cost model in :mod:`repro.parallel.costmodel` that substitutes for the hardware we do
not have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["DeviceSpec", "DEVICES", "device", "device_names"]


@dataclass(frozen=True)
class DeviceSpec:
    """Performance-model parameters for one device."""

    #: Short identifier used by the benchmark drivers (``v100``, ``mi100``, ...).
    key: str
    #: Human-readable name as used in the paper's tables.
    name: str
    #: ``"gpu"`` or ``"cpu"``.
    kind: str
    #: Theoretical global/main memory bandwidth in GB/s (as quoted in the paper).
    memory_bandwidth_gbs: float
    #: Fixed overhead per kernel launch (GPU) or per parallel region/barrier (CPU), seconds.
    kernel_latency_s: float
    #: Number of physical cores (CPUs) or SMs/CUs (GPUs); used by the scaling model.
    physical_cores: int
    #: Hardware threads per physical core (CPUs only; 1 for GPUs).
    threads_per_core: int = 1
    #: Fraction of peak bandwidth a single CPU core can drive (CPU scaling model).
    single_core_bandwidth_fraction: float = 0.12
    #: Serial (non-parallelisable) fraction of the MIS-2 iteration on this device.
    serial_fraction: float = 0.02
    #: Relative slowdown caused by using the second hardware thread of a core.
    hyperthread_penalty: float = 0.15
    #: Bandwidth-contention coefficient ``f`` of the saturating scaling model
    #: ``S(p) = p (1 + f) / (1 + p f)``; smaller means closer to linear scaling.
    bandwidth_contention: float = 0.02

    @property
    def memory_bandwidth_bytes(self) -> float:
        """Bandwidth in bytes/second."""
        return self.memory_bandwidth_gbs * 1e9

    @property
    def max_threads(self) -> int:
        """Total hardware threads (physical cores x threads per core)."""
        return self.physical_cores * self.threads_per_core


#: The four systems of the paper's evaluation (Section VI).
DEVICES: Dict[str, DeviceSpec] = {
    "v100": DeviceSpec(
        key="v100",
        name="NVIDIA V100",
        kind="gpu",
        memory_bandwidth_gbs=900.0,
        kernel_latency_s=6.0e-6,
        physical_cores=80,  # SMs
    ),
    "mi100": DeviceSpec(
        key="mi100",
        name="AMD MI100",
        kind="gpu",
        memory_bandwidth_gbs=1200.0,
        kernel_latency_s=10.0e-6,
        physical_cores=120,  # CUs
    ),
    "skylake": DeviceSpec(
        key="skylake",
        name="Intel Xeon Platinum 8160 (2s)",
        kind="cpu",
        memory_bandwidth_gbs=238.0,
        kernel_latency_s=2.0e-6,
        physical_cores=48,
        threads_per_core=2,
        # One Skylake core drives roughly 12 GB/s of the dual socket's 238 GB/s; the
        # contention coefficient is tuned so the 48-core speedup lands near the
        # paper's measured 26.9x geometric mean.
        single_core_bandwidth_fraction=0.05,
        serial_fraction=0.003,
        hyperthread_penalty=0.18,
        bandwidth_contention=0.016,
    ),
    "tx2": DeviceSpec(
        key="tx2",
        name="Cavium ThunderX2 (2s)",
        kind="cpu",
        memory_bandwidth_gbs=317.0,
        kernel_latency_s=2.5e-6,
        physical_cores=56,
        threads_per_core=2,
        # A single ThunderX2 core drives a smaller share of the socket bandwidth than
        # a Skylake core and contends less, which is why the paper observes a 43.9x
        # speedup on its 56 physical cores.
        single_core_bandwidth_fraction=0.03,
        serial_fraction=0.001,
        hyperthread_penalty=0.20,
        bandwidth_contention=0.004,
    ),
}


def device(key: str) -> DeviceSpec:
    """Look up a device by key (``v100``, ``mi100``, ``skylake``, ``tx2``)."""
    k = key.lower()
    if k not in DEVICES:
        raise KeyError(f"unknown device {key!r}; known: {sorted(DEVICES)}")
    return DEVICES[k]


def device_names() -> List[str]:
    """Device keys in the order used by the paper's Table II columns."""
    return ["v100", "mi100", "skylake", "tx2"]

"""Execution spaces: the Kokkos-like dispatch layer.

Kokkos lets one source target Serial, OpenMP and CUDA/HIP back-ends; here the
analogous choice is between

* :class:`SerialSpace` — an explicit Python loop per index. Slow but maximally
  transparent; used as the semantic reference in the determinism tests.
* :class:`VectorSpace` — NumPy array-level execution. The functor is called once with
  the full index array and must be written vectorised. This is the production
  backend for every kernel in the package (array-data-parallelism is the Python
  analogue of launching one GPU thread per index).
* :class:`ThreadSpace` — chunked execution on a :class:`concurrent.futures.ThreadPoolExecutor`.
  Useful to exercise the same kernels with real concurrency (NumPy releases the GIL
  for large array operations); results are still deterministic because each chunk writes
  disjoint output ranges and reductions are combined in chunk order.

All three spaces implement the same bulk-synchronous contract: a ``parallel_for`` is a
barrier — no iteration of the next parallel region starts before all iterations of the
previous one finish — which is exactly the structure Algorithm 1 relies on for
determinism.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

import numpy as np

from .primitives import exclusive_scan

__all__ = [
    "ExecutionSpace",
    "SerialSpace",
    "VectorSpace",
    "ThreadSpace",
    "default_space",
    "available_spaces",
]


class ExecutionSpace(ABC):
    """Abstract execution space with Kokkos-style data-parallel primitives."""

    #: Human-readable backend name.
    name: str = "abstract"

    @abstractmethod
    def parallel_for(self, n: int, functor: Callable) -> None:
        """Apply ``functor`` to every index in ``[0, n)``.

        For :class:`VectorSpace` the functor receives a single ``ndarray`` of indices;
        for the other spaces it receives scalar indices. Functors must not assume any
        particular execution order within the region.
        """

    @abstractmethod
    def parallel_reduce(
        self, values: np.ndarray, op: str = "sum"
    ) -> np.floating | np.integer:
        """Reduce ``values`` with ``op`` in {'sum', 'min', 'max'}."""

    def parallel_scan(self, values: np.ndarray) -> np.ndarray:
        """Exclusive prefix sum of ``values`` (length ``len(values) + 1``)."""
        return exclusive_scan(values)

    # Convenience shared by all spaces -------------------------------------------------
    def map_indices(self, n: int, fn: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        """Evaluate a vectorised function of the index array ``arange(n)``.

        ``fn`` must be a pure, vectorised function. The serial and threaded spaces
        evaluate it in chunks/elements and reassemble, so results are identical across
        spaces.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialSpace(ExecutionSpace):
    """Reference backend: plain Python loops, one index at a time."""

    name = "serial"

    def parallel_for(self, n: int, functor: Callable) -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        for i in range(n):
            functor(i)

    def parallel_reduce(self, values: np.ndarray, op: str = "sum"):
        arr = np.asarray(values)
        if op == "sum":
            total = arr.dtype.type(0) if arr.size else 0
            for v in arr:
                total = total + v
            return total
        if op == "min":
            if arr.size == 0:
                raise ValueError("min reduction of empty array")
            best = arr[0]
            for v in arr[1:]:
                if v < best:
                    best = v
            return best
        if op == "max":
            if arr.size == 0:
                raise ValueError("max reduction of empty array")
            best = arr[0]
            for v in arr[1:]:
                if v > best:
                    best = v
            return best
        raise ValueError(f"unknown reduction op {op!r}")

    def map_indices(self, n: int, fn: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        pieces = [np.asarray(fn(np.asarray([i]))) for i in range(n)]
        if not pieces:
            return np.zeros(0)
        return np.concatenate(pieces)


class VectorSpace(ExecutionSpace):
    """Production backend: one NumPy call over the whole index range."""

    name = "vector"

    def parallel_for(self, n: int, functor: Callable) -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        if n == 0:
            return
        functor(np.arange(n, dtype=np.int64))

    def parallel_reduce(self, values: np.ndarray, op: str = "sum"):
        arr = np.asarray(values)
        if op == "sum":
            return arr.sum()
        if op == "min":
            if arr.size == 0:
                raise ValueError("min reduction of empty array")
            return arr.min()
        if op == "max":
            if arr.size == 0:
                raise ValueError("max reduction of empty array")
            return arr.max()
        raise ValueError(f"unknown reduction op {op!r}")

    def map_indices(self, n: int, fn: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        return np.asarray(fn(np.arange(n, dtype=np.int64)))


class ThreadSpace(ExecutionSpace):
    """Chunked thread-pool backend.

    The index range is split into ``num_threads`` contiguous chunks; each chunk is
    processed with the vectorised functor on a worker thread. Reductions combine the
    per-chunk partial results in chunk order, so results match the other spaces
    bit-for-bit for the integer reductions used in this package.
    """

    name = "threads"

    def __init__(self, num_threads: Optional[int] = None) -> None:
        if num_threads is None:
            num_threads = max(1, os.cpu_count() or 1)
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.num_threads = int(num_threads)

    def _chunks(self, n: int) -> List[tuple[int, int]]:
        if n == 0:
            return []
        per = (n + self.num_threads - 1) // self.num_threads
        return [(start, min(n, start + per)) for start in range(0, n, per)]

    def parallel_for(self, n: int, functor: Callable) -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        chunks = self._chunks(n)
        if not chunks:
            return
        with ThreadPoolExecutor(max_workers=self.num_threads) as pool:
            futures = [
                pool.submit(functor, np.arange(lo, hi, dtype=np.int64)) for lo, hi in chunks
            ]
            for f in futures:
                f.result()

    def parallel_reduce(self, values: np.ndarray, op: str = "sum"):
        arr = np.asarray(values)
        if arr.size == 0:
            if op == "sum":
                return 0
            raise ValueError(f"{op} reduction of empty array")
        chunks = self._chunks(arr.size)
        with ThreadPoolExecutor(max_workers=self.num_threads) as pool:
            if op == "sum":
                partials = list(pool.map(lambda c: arr[c[0]: c[1]].sum(), chunks))
                return np.sum(partials)
            if op == "min":
                partials = list(pool.map(lambda c: arr[c[0]: c[1]].min(), chunks))
                return np.min(partials)
            if op == "max":
                partials = list(pool.map(lambda c: arr[c[0]: c[1]].max(), chunks))
                return np.max(partials)
        raise ValueError(f"unknown reduction op {op!r}")

    def map_indices(self, n: int, fn: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        chunks = self._chunks(n)
        if not chunks:
            return np.zeros(0)
        with ThreadPoolExecutor(max_workers=self.num_threads) as pool:
            pieces = list(
                pool.map(lambda c: np.asarray(fn(np.arange(c[0], c[1], dtype=np.int64))), chunks)
            )
        return np.concatenate(pieces)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadSpace(num_threads={self.num_threads})"


_DEFAULT = VectorSpace()


def default_space() -> ExecutionSpace:
    """The package-wide default execution space (the vectorised NumPy backend)."""
    return _DEFAULT


def available_spaces() -> List[ExecutionSpace]:
    """One instance of every execution space (for cross-backend determinism tests)."""
    return [SerialSpace(), VectorSpace(), ThreadSpace()]

"""Multi-host distributed execution: the ``ResidentSession`` over real sockets.

Everything below ``map_partitions_resident`` was already in its final wire
shape — per-part payloads keyed by ``PartitionLayout.token``, ``(positions,
values)`` changed-only halo deltas, worker-resident worklists. This module
takes that session protocol over *actual transport*: a coordinator process
connects to N long-lived **rank processes** through the byte-metered socket
seam in :mod:`repro.parallel.transport`, ships each part's payload once into a
per-rank payload cache, and runs every superstep phase as ``(token, session,
part, fn, delta)`` messages whose results return over the wire. The rank
processes run on localhost here (so CI exercises the full path), but nothing
in the protocol assumes it — the transport seam is where an MPI or multi-host
implementation drops in.

Protocol (one coordinator connection per rank, request/response, pipelined):

``("install", token, part, payload|None, session_key, state)``
    Session open. ``payload=None`` when the coordinator believes the rank
    already caches ``(token, part)``; the rank acks ``("ok", False)`` if it
    does not (restarted rank, LRU eviction) and the coordinator re-sends the
    payload. States always ship — they are per-session.
``("phase", seq, token, session_key, part, fn, delta)``
    One superstep phase for one part. The rank executes ``fn(payload, state,
    delta)`` against its resident part and replies ``("result", value)``.
    ``seq`` makes retries after a reconnect **exactly-once**: the rank caches
    the last ``(seq, result)`` per ``(session, part)`` and answers a replayed
    phase from the cache instead of re-running it (state is mutated once no
    matter how often the message is re-sent). A rank that lost the payload
    replies ``("miss",)`` — the coordinator restores it and retries, bounded;
    one that lost the *state* replies ``("error", ...)`` (states are not
    reconstructible — see the rank-death story below).
``("restore", token, part, payload)`` / ``("forget", session_key, parts)``
    Payload re-install after an LRU miss; session close (drops states and the
    phase dedup cache, payloads stay cached for reruns on the same layout).
``("ping",)`` / ``("shutdown",)``
    Liveness probe; orderly rank exit.

Every coordinator request normally ships wrapped as ``("req", rid, message)``
and is answered as ``("resp", rid, reply)`` — the **multiplexing layer** that
lets several phases stay in flight per rank at once (the overlap seam's
requirement): the coordinator collects replies by request id in any order,
parking early arrivals for their own collect, and a reconnect re-sends
exactly the unanswered backlog. Untagged messages remain understood for the
shutdown path and direct protocol probes.

Rank-side storage *is* the process-global resident store of
:mod:`repro.parallel.backends` (``_resident_install`` / ``_resident_phase`` /
``_resident_forget``), so the cache semantics — payloads keyed by ``(layout
token, part)`` surviving across sessions, states keyed by ``(session, part)``
living for exactly one, LRU bounded by ``_RESIDENT_PAYLOAD_CAPACITY`` — are
identical to the chunked backend's slot workers by construction.

Failure story, in two tiers:

* **Transient transport failures** (dropped connection, rank mid-accept):
  every request retries through :func:`transport.connect_with_retry` with
  exponential backoff while the rank *process* is alive; the rank's listening
  socket outlives client connections, the re-sent batch is deduplicated by
  ``seq``, and the run continues with bit-identical results.
* **Rank death** (process gone): the mutable session states on that rank are
  unrecoverable by design — reconstructing them would mean the coordinator
  shadowing every state mutation, which is exactly the traffic the resident
  protocol exists to avoid. The current run fails *loudly* with
  :class:`RankDeathError` (never silently wrong results), the cluster
  respawns a fresh rank with empty caches, and the next session — including
  an immediate rerun of the failed kernel — proceeds normally, re-shipping
  payloads as its install acks demand.

Byte accounting is two-ledger: the session's logical ``shipped_nbytes``
accounting (inherited from :class:`ResidentSession`, bit-identical across
backends) and the transport's **measured** socket-byte counters.
``DistributedBackend.measured_stats()`` exposes the latter, and the
distributed test suite gates measured against logical — same ordering,
bounded constant-factor overhead — which is what makes the logical meter an
honest model of real wire traffic.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from . import backends as _B
from .backends import ExecutionBackend, ResidentSession
from .transport import (
    Address,
    MessageConnection,
    MessageListener,
    TransportError,
    connect_with_retry,
)

__all__ = [
    "DistributedBackend",
    "RankCluster",
    "RankDeathError",
    "shutdown_rank_clusters",
]

#: Rank count when ``DistributedBackend(ranks=None)`` (CI runs two-rank
#: clusters; ``with_jobs`` / ``--jobs`` reconfigure it).
_DEFAULT_RANKS = 2


class RankDeathError(RuntimeError):
    """A rank process died (or stayed unreachable through the whole retry
    schedule) while a session needed it.

    The resident states that rank held are gone, so the current kernel run
    cannot continue — but the cluster has already respawned a replacement
    rank, so rerunning the kernel succeeds (payloads re-ship on demand).
    """


# --------------------------------------------------------------- rank process
#
# Each rank is a daemon child process running an accept/serve loop. The
# resident stores are the module globals of repro.parallel.backends, reused
# verbatim so rank-side cache behaviour is identical to a chunked slot worker.

#: Rank-side phase dedup: ``(session_key, part, seq) -> result``. A phase
#: message replayed after a reconnect is answered from here without re-running
#: fn — the exactly-once guarantee that makes blind re-sends safe. Keyed by
#: ``seq`` (not last-seq-per-part) because the multiplexed coordinator keeps
#: several phases per part in flight: a reconnect can replay an *older* phase
#: after a newer one already ran, and answering it from the cache is the only
#: correct response (re-running it against the mutated state would corrupt
#: the part).
_PHASE_DONE: "OrderedDict[Tuple[int, int, int], Any]" = OrderedDict()

#: LRU backstop for ``_PHASE_DONE``. A session's ``forget`` drops its entries
#: exactly, but forgets are best-effort (a coordinator can die mid-session),
#: so without a bound the cache grows for the rank's lifetime. Oldest-first
#: eviction is safe because only the most recently submitted phases per part
#: can still be replayed — the coordinator's pipelining depth (a handful of
#: in-flight phases per part) is orders of magnitude below this capacity.
_PHASE_DONE_CAPACITY = 4096


class _RankShutdown(Exception):
    """Raised inside the serve loop on an orderly ``shutdown`` message."""


def _rank_reply(msg: tuple) -> tuple:
    """Compute the reply to one coordinator message (pure dispatch, no I/O)."""
    kind = msg[0]
    if kind == "phase":
        _, seq, token, session_key, part, fn, delta = msg
        done_key = (session_key, part, seq)
        if done_key in _PHASE_DONE:
            _PHASE_DONE.move_to_end(done_key)
            return ("result", _PHASE_DONE[done_key])
        try:
            result = _B._resident_phase((token, session_key, part, fn, delta))
        except _B._ResidentPayloadMiss:
            return ("miss",)
        except Exception as exc:
            return ("error", f"{type(exc).__name__}: {exc}")
        _PHASE_DONE[done_key] = result
        while len(_PHASE_DONE) > _PHASE_DONE_CAPACITY:
            _PHASE_DONE.popitem(last=False)
        return ("result", result)
    if kind == "install":
        try:
            return ("ok", _B._resident_install(msg[1:]))
        except Exception as exc:
            return ("error", f"{type(exc).__name__}: {exc}")
    if kind == "restore":
        _B._resident_restore_payload(msg[1:])
        return ("ok", True)
    if kind == "forget":
        _, session_key, parts = msg
        _B._resident_forget((session_key, parts))
        for done_key in [k for k in _PHASE_DONE if k[0] == session_key]:
            del _PHASE_DONE[done_key]
        return ("ok", True)
    if kind == "ping":
        return ("pong", os.getpid())
    return ("error", f"unknown message kind {kind!r}")


def _rank_handle_message(conn: MessageConnection, msg: tuple) -> None:
    """Dispatch one coordinator message and send exactly one reply.

    ``("req", rid, inner)`` is the multiplexed form: the reply ships as
    ``("resp", rid, reply)`` so the coordinator can match out-of-order
    collections against in-flight request ids. Untagged messages (the
    shutdown path and direct protocol tests) are answered bare.
    """
    if msg[0] == "req":
        _, rid, inner = msg
        if inner[0] == "shutdown":
            conn.send(("resp", rid, ("ok", True)))
            raise _RankShutdown
        conn.send(("resp", rid, _rank_reply(inner)))
        return
    if msg[0] == "shutdown":
        conn.send(("ok", True))
        raise _RankShutdown
    conn.send(_rank_reply(msg))


def _rank_main(ready) -> None:
    """Entry point of one rank process: bind, report the address, serve.

    The listener outlives client connections: when the coordinator's
    connection drops (transient failure, coordinator-side reconnect) the rank
    returns to ``accept`` with all resident stores intact — which is exactly
    what makes the coordinator's reconnect path correct.
    """
    listener = MessageListener()
    ready.send(listener.address)  # analysis-ok: lock-guard -- listener is the transport MessageListener (same-named attribute); _RankHandle.address lives coordinator-side
    ready.close()
    try:
        while True:
            try:
                conn = listener.accept()
            except TransportError:  # pragma: no cover - listener torn down
                return
            try:
                while True:
                    _rank_handle_message(conn, conn.recv())
            except TransportError:
                # Client gone (EOF / reset): keep stores, await a reconnect.
                pass
            finally:
                conn.close()
    except _RankShutdown:
        return
    finally:
        listener.close()


# ------------------------------------------------------------ rank management
class _RankHandle:
    """Coordinator-side view of one rank: process, address, live connection,
    payload-cache mirror and the byte counters of retired connections."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[multiprocessing.Process] = None  # guarded-by: lock
        self.address: Optional[Address] = None  # guarded-by: lock
        self.conn: Optional[MessageConnection] = None  # guarded-by: lock
        self.lock = threading.Lock()
        #: Mirror of which ``(token, part)`` payloads the rank is believed to
        #: hold (LRU-bounded like the worker store; self-heals through the
        #: install ack in both directions — see the chunked slot mirror).
        self.known: "OrderedDict[Tuple[str, int], None]" = OrderedDict()  # guarded-by: lock
        #: Request-id source for the multiplexed request/response protocol.
        self.rids = itertools.count(1)  # guarded-by: lock
        #: Unanswered requests, ``rid -> message`` in submission order — the
        #: resend set after a reconnect (every protocol message is idempotent:
        #: installs/restores/forgets by content, phases by ``seq`` dedup).
        self.outstanding: "OrderedDict[int, tuple]" = OrderedDict()  # guarded-by: lock
        #: Request ids actually written to the *current* connection (cleared
        #: on retire, which is what marks the rest of ``outstanding`` for
        #: resend over the replacement connection).
        self.inflight: set = set()  # guarded-by: lock
        #: Responses received but not yet collected, ``rid -> reply`` — a
        #: collect for a later submission drains earlier responses here so an
        #: out-of-submission-order collect never loses them.
        self.arrived: Dict[int, tuple] = {}  # guarded-by: lock
        #: Bytes/messages accumulated by connections since closed or replaced.
        self.retired = {  # guarded-by: lock
            "bytes_sent": 0,
            "bytes_received": 0,
            "messages_sent": 0,
            "messages_received": 0,
        }

    def retire_connection(self) -> None:  # holds: lock
        """Fold the live connection's meters into the totals and drop it."""
        self.inflight.clear()
        conn = self.conn
        if conn is None:
            return
        self.conn = None
        self.retired["bytes_sent"] += conn.bytes_sent
        self.retired["bytes_received"] += conn.bytes_received
        self.retired["messages_sent"] += conn.messages_sent
        self.retired["messages_received"] += conn.messages_received
        conn.close()

    def stats(self) -> Dict[str, int]:  # holds: lock
        out = dict(self.retired)
        if self.conn is not None:
            out["bytes_sent"] += self.conn.bytes_sent
            out["bytes_received"] += self.conn.bytes_received
            out["messages_sent"] += self.conn.messages_sent
            out["messages_received"] += self.conn.messages_received
        return out


class RankCluster:
    """N localhost rank processes plus the coordinator-side request machinery.

    One cluster exists per rank count and is shared by every
    :class:`DistributedBackend` instance in the process (like the chunked
    backend's slot pools) — which is what lets payload caches survive across
    sessions and runs. Requests are batched per rank (send all, then receive
    all) so ranks compute concurrently while the coordinator drains replies.
    """

    def __init__(self, nranks: int, retry_attempts: int = 4, retry_delay: float = 0.05) -> None:
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = int(nranks)
        self.retry_attempts = int(retry_attempts)
        self.retry_delay = float(retry_delay)
        self._handles = [_RankHandle(i) for i in range(self.nranks)]
        for handle in self._handles:
            self._spawn(handle)

    # -------------------------------------------------------------- lifecycle
    def _spawn(self, handle: _RankHandle) -> None:  # holds: lock
        """Start (or replace) the rank process behind ``handle``.

        A replacement rank has empty stores, so the payload mirror is cleared
        — the next session's install acks re-ship whatever it needs.
        """
        ready_recv, ready_send = multiprocessing.Pipe(duplex=False)
        proc = multiprocessing.Process(
            target=_rank_main, args=(ready_send,), daemon=True,
            name=f"repro-rank-{handle.index}",
        )
        proc.start()
        ready_send.close()
        try:
            if not ready_recv.poll(30.0):
                raise RankDeathError(
                    f"rank {handle.index} did not report its address within 30s"
                )
            address = ready_recv.recv()
        finally:
            ready_recv.close()
        handle.process = proc
        handle.address = address
        handle.known.clear()
        # A replacement rank has empty stores and never saw the in-flight
        # requests; dropping them here keeps a later session's traffic from
        # replaying a dead session's phases against the fresh rank.
        handle.outstanding.clear()
        handle.arrived.clear()
        handle.retire_connection()

    def _alive(self, handle: _RankHandle) -> bool:  # holds: lock
        return handle.process is not None and handle.process.is_alive()

    def _connection(self, handle: _RankHandle) -> MessageConnection:  # holds: lock
        if handle.conn is None:
            handle.conn = connect_with_retry(
                handle.address,
                attempts=self.retry_attempts,
                delay=self.retry_delay,
                abort=lambda: not self._alive(handle),
            )
        return handle.conn

    def _declare_dead(self, handle: _RankHandle, cause: Exception) -> "RankDeathError":  # holds: lock
        """Respawn a replacement for a dead rank and build the caller's error."""
        handle.retire_connection()
        if handle.process is not None:
            handle.process.join(timeout=1.0)
            if handle.process.is_alive():  # pragma: no cover - unreachable in tests
                handle.process.terminate()
        self._spawn(handle)
        return RankDeathError(
            f"rank {handle.index} died mid-run ({cause}); its resident session "
            f"states are unrecoverable, so this kernel run cannot continue. A "
            f"replacement rank is already serving — rerun the kernel (payloads "
            f"re-ship automatically)."
        )

    # --------------------------------------------------------------- requests
    def _flush_locked(self, handle: _RankHandle, conn: MessageConnection) -> None:  # holds: lock
        """Write every outstanding request not yet on the current connection.

        After a reconnect ``inflight`` is empty, so this re-sends the whole
        unanswered backlog — safe because every message in the protocol is
        idempotent (installs/restores/forgets by content, phases by ``seq``
        dedup). Caller holds ``handle.lock``.
        """
        for rid, msg in handle.outstanding.items():
            if rid not in handle.inflight:
                conn.send(("req", rid, msg))
                handle.inflight.add(rid)

    def _unreachable(self, handle: _RankHandle, last: Optional[Exception]) -> RankDeathError:  # holds: lock
        """Terminal error once the retry schedule is exhausted."""
        if not self._alive(handle):
            return self._declare_dead(
                handle, last if last is not None else RuntimeError("process exited")
            )
        return RankDeathError(
            f"rank {handle.index} at {handle.address} stayed unreachable through "
            f"{self.retry_attempts} reconnect attempt(s): {last}"
        )

    def submit(self, rank: int, messages: Sequence[tuple]) -> List[int]:
        """Ship a batch to one rank without waiting; returns its request ids.

        The requests go on the wire tagged ``("req", rid, message)``; the rank
        answers each with ``("resp", rid, reply)`` in its own (FIFO) order.
        Pass the ids to :meth:`collect` — in any order relative to other
        in-flight submissions — to obtain the replies.
        """
        handle = self._handles[rank]
        with handle.lock:
            rids = []
            for msg in messages:
                rid = next(handle.rids)
                handle.outstanding[rid] = msg
                rids.append(rid)
            last: Optional[Exception] = None
            for _ in range(max(1, self.retry_attempts)):
                if not self._alive(handle):
                    raise self._declare_dead(
                        handle, last if last is not None else RuntimeError("process exited")
                    )
                try:
                    self._flush_locked(handle, self._connection(handle))
                    return rids
                except TransportError as exc:
                    last = exc
                    handle.retire_connection()
                    continue
            raise self._unreachable(handle, last)

    def collect(self, rank: int, rids: Sequence[int]) -> List[tuple]:
        """Block until every request in ``rids`` has a reply; return them in
        ``rids`` order.

        Responses for *other* in-flight requests that arrive meanwhile are
        parked in the handle's ``arrived`` buffer for their own collect, so
        collection order is free — the overlap seam's requirement. On a
        transient transport failure the unanswered backlog is re-sent over a
        fresh connection; a dead rank raises :class:`RankDeathError` after a
        replacement has been spawned for future sessions.
        """
        rids = list(rids)
        handle = self._handles[rank]
        with handle.lock:
            last: Optional[Exception] = None
            for _ in range(max(1, self.retry_attempts)):
                if all(rid in handle.arrived for rid in rids):
                    break
                if not self._alive(handle):
                    raise self._declare_dead(
                        handle, last if last is not None else RuntimeError("process exited")
                    )
                try:
                    conn = self._connection(handle)
                    self._flush_locked(handle, conn)
                    while not all(rid in handle.arrived for rid in rids):
                        frame = conn.recv()
                        if frame[0] != "resp":
                            raise TransportError(f"malformed rank frame {frame[:1]!r}")
                        _, rid, reply = frame
                        if handle.outstanding.pop(rid, None) is not None:
                            handle.inflight.discard(rid)
                            handle.arrived[rid] = reply
                    break
                except TransportError as exc:
                    last = exc
                    handle.retire_connection()
                    continue
            else:
                raise self._unreachable(handle, last)
            return [handle.arrived.pop(rid) for rid in rids]

    def request(self, rank: int, messages: Sequence[tuple]) -> List[tuple]:
        """Send a batch to one rank and wait for one reply per message
        (:meth:`submit` + :meth:`collect`)."""
        return self.collect(rank, self.submit(rank, list(messages)))

    def ping(self, timeout: float = 5.0) -> Dict[int, bool]:
        """Health-check every rank; returns ``{rank: responsive}``.

        Unlike the kernel paths this never respawns or retries: it answers
        "is the rank serving *right now*?" within ``timeout`` seconds per
        rank. A rank that is alive but wedged — process running, serve loop
        stuck — trips the transport's per-receive deadline instead of
        hanging the caller, which is exactly what the GraphService health
        endpoint needs. Responses for other in-flight requests that arrive
        while waiting are parked for their own collect, so a health probe is
        safe to interleave with running sessions.
        """
        health: Dict[int, bool] = {}
        for rank, handle in enumerate(self._handles):
            with handle.lock:
                if not self._alive(handle):
                    health[rank] = False
                    continue
                try:
                    conn = self._connection(handle)
                    self._flush_locked(handle, conn)
                    rid = next(handle.rids)
                    conn.send(("req", rid, ("ping",)))
                    deadline = time.monotonic() + timeout
                    while True:
                        frame = conn.recv(timeout=max(0.001, deadline - time.monotonic()))
                        if frame[0] != "resp":
                            raise TransportError(f"malformed rank frame {frame[:1]!r}")
                        _, got, reply = frame
                        if got == rid:
                            health[rank] = reply[0] == "pong"
                            break
                        if handle.outstanding.pop(got, None) is not None:
                            handle.inflight.discard(got)
                            handle.arrived[got] = reply
                except TransportError:
                    # Deadline expiry desyncs the frame stream (a late pong
                    # would be misattributed) — retire the connection so the
                    # next session traffic starts from a clean handshake.
                    handle.retire_connection()
                    health[rank] = False
        return health

    # ------------------------------------------------------------ cache mirror
    def known(self, rank: int, key: Tuple[str, int]) -> bool:
        handle = self._handles[rank]
        with handle.lock:
            return key in handle.known

    def mark(self, rank: int, key: Tuple[str, int], present: bool) -> None:
        handle = self._handles[rank]
        with handle.lock:
            if not present:
                handle.known.pop(key, None)
                return
            handle.known[key] = None
            handle.known.move_to_end(key)
            while len(handle.known) > _B._RESIDENT_PAYLOAD_CAPACITY:
                handle.known.popitem(last=False)

    # ------------------------------------------------------------------ meters
    def stats(self) -> Dict[str, int]:
        """Measured on-the-wire totals across all ranks (headers included),
        accumulated over the cluster's whole lifetime including retired and
        replaced connections."""
        totals = {
            "bytes_sent": 0,
            "bytes_received": 0,
            "messages_sent": 0,
            "messages_received": 0,
        }
        for handle in self._handles:
            with handle.lock:
                for key, value in handle.stats().items():
                    totals[key] += value
        return totals

    def shutdown(self) -> None:
        """Orderly stop: ask every rank to exit, then make sure it did."""
        for handle in self._handles:
            with handle.lock:
                if self._alive(handle):
                    try:
                        conn = self._connection(handle)
                        conn.send(("shutdown",))
                        conn.recv()
                    except TransportError:
                        pass
                handle.retire_connection()
                if handle.process is not None:
                    handle.process.join(timeout=2.0)
                    if handle.process.is_alive():
                        handle.process.terminate()
                        handle.process.join(timeout=2.0)
                    handle.process = None


#: Process-wide cluster registry, one per rank count — shared by every
#: DistributedBackend instance so payload caches persist across sessions.
_CLUSTERS: "Dict[int, RankCluster]" = {}  # guarded-by: _CLUSTER_LOCK
_CLUSTER_LOCK = threading.Lock()


def _get_cluster(nranks: int, retry_attempts: int, retry_delay: float) -> RankCluster:
    with _CLUSTER_LOCK:
        cluster = _CLUSTERS.get(nranks)
        if cluster is None:
            cluster = RankCluster(
                nranks, retry_attempts=retry_attempts, retry_delay=retry_delay
            )
            _CLUSTERS[nranks] = cluster
        return cluster


def shutdown_rank_clusters() -> None:
    """Stop every rank process started by this coordinator (idempotent)."""
    with _CLUSTER_LOCK:
        clusters = list(_CLUSTERS.values())
        _CLUSTERS.clear()
    for cluster in clusters:
        cluster.shutdown()


atexit.register(shutdown_rank_clusters)


def _drop_inherited_clusters() -> None:
    # A fork-started child inherits handle objects whose processes and socket
    # fds belong to the parent; drop the references so the child builds its
    # own cluster if it ever needs one (shutting them down here would kill
    # the parent's ranks).
    _CLUSTERS.clear()  # analysis-ok: lock-guard -- at-fork child is single-threaded; the inherited lock may be held by a parent thread that did not survive the fork, so taking it here could deadlock


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_drop_inherited_clusters)


# ------------------------------------------------------------------- sessions
class _DistributedResidentSession(ResidentSession):
    """Socket-transport session: part ``i`` resides on rank ``i % nranks``.

    Session open ships each part's payload (unless the rank's cache mirror
    says it already holds the layout token) and fresh state; every later
    superstep ships only ``(token, session, part, fn, delta)`` messages.
    Inherits the logical shipped-bytes accounting unchanged — the logical
    ledger must be bit-identical across backends — while the transport
    underneath meters the actual socket bytes (see ``measured_stats``).
    """

    def __init__(
        self,
        cluster: RankCluster,
        token: str,
        payloads: Sequence,
        states: Sequence,
        miss_attempts: int = _B._RESIDENT_MISS_ATTEMPTS,
    ) -> None:
        super().__init__(token, payloads, states, resident=True)
        self._cluster = cluster
        #: Retained so an LRU-evicted payload can be restored transparently.
        self._payloads = list(payloads)
        self._key = next(_B._RESIDENT_SESSION_KEYS)
        self._nranks = max(1, min(cluster.nranks, len(payloads)))
        self._miss_attempts = int(miss_attempts)
        self._seq = 0
        self._closed = False
        self._stats_open = cluster.stats()
        self._init_states = list(states)
        by_rank: Dict[int, List[int]] = {}
        for part in range(self.num_parts):
            by_rank.setdefault(part % self._nranks, []).append(part)
        # Pipelined install: the payload/state batches are *submitted* here but
        # their acks resolve at the first phase submission (_finish_install),
        # so the install latency overlaps the coordinator's superstep-0 prep.
        pending: Dict[int, Tuple[List[Tuple[int, bool]], List[int]]] = {}
        for rank, parts in by_rank.items():
            try:
                pending[rank] = self._submit_install(rank, parts)
            except RankDeathError:
                # Nothing of this session had landed on that rank yet, so a
                # session-open failure is recoverable: the cluster already
                # spawned a replacement (with empty caches — its mirror was
                # cleared), submit the installs again from scratch.
                pending[rank] = self._submit_install(rank, parts)
        self._pending_install: Optional[Dict] = pending

    def _submit_install(
        self, rank: int, parts: Sequence[int]
    ) -> Tuple[List[Tuple[int, bool]], List[int]]:
        """Ship one rank's install batch without waiting for the acks."""
        cluster = self._cluster
        entries = [(part, cluster.known(rank, (self.token, part))) for part in parts]
        rids = cluster.submit(
            rank,
            [
                ("install", self.token, part,
                 None if known else self._payloads[part], self._key,
                 self._init_states[part])
                for part, known in entries
            ],
        )
        return entries, rids

    def _finish_install(self) -> None:
        """Resolve the deferred install acks (idempotent).

        Must complete before any phase ships: a False ack means the rank
        holds *neither* the payload nor this session's state (the install
        installs nothing on a payload miss), so the full install re-ships
        synchronously here. Per-connection FIFO on the rank guarantees the
        installs themselves ran before any phase submitted after this call.
        A rank that died while the installs were in flight is retried once
        from scratch — nothing of this session had landed on the replacement
        yet, so a fresh synchronous install is safe.
        """
        pending, self._pending_install = self._pending_install, None
        if not pending:
            return
        for rank, (entries, rids) in pending.items():
            try:
                self._finish_install_on_rank(rank, entries, rids)
            except RankDeathError:
                self._install_on_rank(rank, [part for part, _ in entries], self._init_states)

    def _finish_install_on_rank(
        self, rank: int, entries: Sequence[Tuple[int, bool]], rids: Sequence[int]
    ) -> None:
        cluster = self._cluster
        replies = cluster.collect(rank, rids)
        resend = []
        for (part, known), reply in zip(entries, replies):
            if not self._expect_ok(reply, "install", part):
                # Stale mirror (rank restarted or evicted underneath us):
                # drop the entry and ship the payload after all.
                cluster.mark(rank, (self.token, part), present=False)
                resend.append(part)
        if resend:
            for part, reply in zip(
                resend,
                cluster.request(
                    rank,
                    [
                        ("install", self.token, part, self._payloads[part],
                         self._key, self._init_states[part])
                        for part in resend
                    ],
                ),
            ):
                self._expect_ok(reply, "install", part, required=True)
        for part, _ in entries:
            cluster.mark(rank, (self.token, part), present=True)

    def _install_on_rank(self, rank: int, parts: Sequence[int], states: Sequence) -> None:
        cluster = self._cluster
        entries = [(part, cluster.known(rank, (self.token, part))) for part in parts]
        replies = cluster.request(
            rank,
            [
                ("install", self.token, part,
                 None if known else self._payloads[part], self._key, states[part])
                for part, known in entries
            ],
        )
        resend = []
        for (part, known), reply in zip(entries, replies):
            if not self._expect_ok(reply, "install", part):
                # Stale mirror (rank restarted or evicted underneath us):
                # drop the entry and ship the payload after all.
                cluster.mark(rank, (self.token, part), present=False)
                resend.append(part)
        if resend:
            for part, reply in zip(
                resend,
                cluster.request(
                    rank,
                    [
                        ("install", self.token, part, self._payloads[part],
                         self._key, states[part])
                        for part in resend
                    ],
                ),
            ):
                self._expect_ok(reply, "install", part, required=True)
        for part in parts:
            cluster.mark(rank, (self.token, part), present=True)

    # ------------------------------------------------------------------ helpers
    def _expect_ok(self, reply: tuple, what: str, part: int, required: bool = False) -> bool:
        if reply[0] == "ok":
            if required and not reply[1]:
                raise RuntimeError(
                    f"rank rejected a full {what} of part {part} "
                    f"(token {self.token!r}) — rank-side store failure"
                )
            return bool(reply[1])
        raise RuntimeError(
            f"rank-side {what} of part {part} (token {self.token!r}) failed: "
            f"{reply[1] if len(reply) > 1 else reply!r}"
        )

    def _resolve_reply(
        self, rank: int, seq: int, part: int, fn: Callable, delta, reply: tuple
    ) -> Any:
        """Turn one phase reply into a result, recovering bounded payload misses."""
        for _ in range(self._miss_attempts):
            if reply[0] != "miss":
                break
            # The rank still holds this part's state but a concurrent
            # session's installs evicted the payload; restore it and retry
            # the phase (same seq — the phase never ran, and if a reconnect
            # replayed it meanwhile the dedup cache answers consistently).
            self._cluster.request(
                rank, [("restore", self.token, part, self._payloads[part])]
            )
            self._cluster.mark(rank, (self.token, part), present=True)
            reply = self._cluster.request(
                rank, [("phase", seq, self.token, self._key, part, fn, delta)]
            )[0]
        if reply[0] == "miss":
            raise RuntimeError(
                f"payload of part {part} (token {self.token!r}) was evicted "
                f"again after each of {self._miss_attempts} restore attempts — "
                f"rank {rank}'s payload cache is too crowded for the concurrent "
                f"sessions sharing it"
            )
        if reply[0] == "error":
            raise RuntimeError(
                f"rank-side phase of part {part} (token {self.token!r}) "
                f"failed: {reply[1]}"
            )
        if reply[0] != "result":
            raise RuntimeError(f"malformed rank reply {reply!r}")
        return reply[1]

    # --------------------------------------------------------------------- api
    def _submit(self, fn: Callable, tasks: Sequence[Tuple[int, Any]]) -> Callable[[], List]:
        if self._pending_install is not None:
            self._finish_install()
        self._seq += 1
        seq = self._seq
        by_rank: Dict[int, List[Tuple[int, Any]]] = {}
        for part, delta in tasks:
            by_rank.setdefault(part % self._nranks, []).append((part, delta))
        submitted = [
            (
                rank,
                entries,
                self._cluster.submit(
                    rank,
                    [
                        ("phase", seq, self.token, self._key, part, fn, delta)
                        for part, delta in entries
                    ],
                ),
            )
            for rank, entries in by_rank.items()
        ]

        def collect() -> List:
            replies_by_part: Dict[int, tuple] = {}
            for rank, entries, rids in submitted:
                for (part, _), reply in zip(entries, self._cluster.collect(rank, rids)):
                    replies_by_part[part] = reply
            return [
                self._resolve_reply(
                    part % self._nranks, seq, part, fn, delta, replies_by_part[part]
                )
                for part, delta in tasks
            ]

        return collect

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pending_install is not None:
            # A session closed before its first phase still owes the install
            # ack resolution (it makes the forget below exact); best effort.
            try:
                self._finish_install()
            except (RankDeathError, RuntimeError):
                pass
        by_rank: Dict[int, List[int]] = {}
        for part in range(self.num_parts):
            by_rank.setdefault(part % self._nranks, []).append(part)
        for rank, parts in by_rank.items():
            try:
                self._cluster.request(rank, [("forget", self._key, parts)])
            except (RankDeathError, RuntimeError):
                # Best effort: a dead/replaced rank has lost the states anyway.
                pass

    # ------------------------------------------------------------------ meters
    def measured_stats(self) -> Dict[str, int]:
        """Measured socket bytes/messages attributable to this session so far.

        Computed as the cluster-meter delta since session open — exact while
        sessions run sequentially (the drivers' usage pattern); concurrent
        sessions on the same cluster see a shared total.
        """
        now = self._cluster.stats()
        return {key: now[key] - self._stats_open[key] for key in now}


# -------------------------------------------------------------------- backend
class DistributedBackend(ExecutionBackend):
    """Socket-distributed backend: resident sessions over rank processes.

    Per-graph primitives are the NumPy reference (bit-identical by
    construction); what this backend changes is *where partitioned kernel
    runs live*: ``map_partitions_resident`` pins part ``i`` to rank process
    ``i % ranks`` and speaks the resident-session protocol over the
    :mod:`repro.parallel.transport` seam. Rank processes are localhost
    children here — the multi-host story is the same protocol with the
    transport pointed at remote addresses.

    Parameters
    ----------
    ranks:
        Rank-process count sessions fan over. ``None`` uses the default
        two-rank cluster; 1 executes in-process. (``with_jobs``/``--jobs``
        reconfigure it, mirroring the pooled backends.)
    retry_attempts / retry_delay:
        Transient-failure reconnect schedule (exponential backoff), forwarded
        to the cluster. See the module docstring for the failure story.
    """

    name = "distributed"

    def __init__(
        self,
        ranks: Optional[int] = None,
        retry_attempts: int = 4,
        retry_delay: float = 0.05,
    ) -> None:
        if ranks is not None and ranks < 1:
            raise ValueError("ranks must be >= 1")
        if retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")
        if retry_delay < 0:
            raise ValueError("retry_delay must be >= 0")
        self.ranks = ranks
        self.retry_attempts = int(retry_attempts)
        self.retry_delay = float(retry_delay)

    def _nranks(self) -> int:
        return self.ranks if self.ranks is not None else _DEFAULT_RANKS

    def cluster(self) -> RankCluster:
        """The (shared, lazily spawned) rank cluster this backend fans over."""
        return _get_cluster(self._nranks(), self.retry_attempts, self.retry_delay)

    def map_partitions_resident(
        self,
        token: str,
        payloads: Sequence,
        states: Sequence,
        resident: bool = True,
    ) -> ResidentSession:
        """Open a rank-pinned session over the socket transport.

        Single-rank configurations, single-part layouts and calls from inside
        a ``map_graphs`` pool worker fall back to the in-process session
        (mirroring the chunked backend); ``resident=False`` selects the
        non-resident accounting baseline, which re-ships payload+state every
        superstep through ``map_partitions``.
        """
        if self._nranks() <= 1 or len(payloads) <= 1 or _B._in_worker_process():
            return _B._LocalResidentSession(token, payloads, states, resident=resident)
        if not resident:
            return _B._UnpinnedResidentSession(self, token, payloads, states)
        return _DistributedResidentSession(self.cluster(), token, payloads, states)

    def with_jobs(self, jobs: Optional[int]) -> "DistributedBackend":
        if jobs is None:
            return self
        return DistributedBackend(
            ranks=jobs,
            retry_attempts=self.retry_attempts,
            retry_delay=self.retry_delay,
        )

    def measured_stats(self) -> Dict[str, int]:
        """Measured on-the-wire totals of this backend's cluster (zeros when
        no session has spawned it yet) — the CI byte-correspondence gate reads
        deltas of this around kernel runs."""
        with _CLUSTER_LOCK:
            cluster = _CLUSTERS.get(self._nranks())
        if cluster is None:
            return {
                "bytes_sent": 0,
                "bytes_received": 0,
                "messages_sent": 0,
                "messages_received": 0,
            }
        return cluster.stats()


_B.register_backend(DistributedBackend())

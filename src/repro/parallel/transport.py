"""Byte-metered message transport under the distributed resident backend.

This module is the *transport seam* of :mod:`repro.parallel.distributed`: the
coordinator/rank protocol is expressed entirely against the three names
exported here — :class:`MessageListener` (rank side), :func:`connect_with_retry`
(coordinator side) and the :class:`MessageConnection` both sides exchange
messages through — so an alternative inter-host transport (an MPI
implementation, a TLS-wrapped socket, a shared-memory ring) drops in by
providing the same duplex ``send(obj)`` / ``recv()`` surface and the same byte
counters.

The shipped implementation is a framed pickle protocol over TCP:

* every message is one frame — an 8-byte big-endian length header followed by
  the ``pickle.dumps`` of the object (``HIGHEST_PROTOCOL``, so NumPy arrays
  ship as zero-copy buffers rather than lists);
* connections count **every byte that crosses the socket**, headers included,
  in both directions (``bytes_sent`` / ``bytes_received`` plus message
  counts). These are the *measured* counterparts of the logical
  :func:`repro.parallel.backends.shipped_nbytes` meter — the distributed
  tests gate the two against each other, which is what makes the logical
  accounting an honest model of real wire traffic. Partial transfers are
  charged too: a ``send`` that dies mid-frame still counts the chunks that
  hit the wire, and a receive that fails mid-frame still counts the bytes
  already drained, so the measured meters cannot drift under the logical
  ones across reconnects;
* ``TCP_NODELAY`` is set on every connection: superstep phases are small
  latency-sensitive request/response rounds, exactly the workload Nagle's
  algorithm penalises.

The default bind address is localhost (CI runs the whole cluster on one
host); pointing :class:`MessageListener` and :func:`connect_with_retry` at a
routable address is all multi-host operation needs at this layer. The
transport carries no authentication — deploy it only on trusted networks (or
swap this seam for one that wraps the socket).
"""

from __future__ import annotations

import pickle
import socket
import struct
import time
from typing import Any, Callable, Optional, Tuple

__all__ = [
    "Address",
    "MessageConnection",
    "MessageListener",
    "TransportError",
    "connect_with_retry",
]

#: ``(host, port)`` — the only address shape the socket transport speaks.
Address = Tuple[str, int]

#: Frame header: one unsigned 64-bit big-endian payload length.
_HEADER = struct.Struct(">Q")

#: Refuse absurd frames instead of attempting a huge allocation — a desynced
#: or hostile peer would otherwise turn a corrupt header into an OOM.
_MAX_FRAME_BYTES = 1 << 40

#: How often an interruptible backoff sleep re-polls ``abort()``.
_ABORT_POLL_SECONDS = 0.02


class TransportError(ConnectionError):
    """A message could not cross the transport (peer gone, socket failed).

    Deliberately a :class:`ConnectionError` subclass: callers that already
    handle socket-level failures handle this one for free, while the
    coordinator's retry machinery can catch exactly this type to trigger its
    reconnect path.
    """


class MessageConnection:
    """One framed, byte-metered, pickling duplex connection.

    Not thread-safe by itself — the distributed coordinator serialises access
    per rank with its own lock, and each rank process serves one connection at
    a time.
    """

    def __init__(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        #: Measured on-the-wire bytes, headers included.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.closed = False

    def send(self, obj: Any) -> None:
        """Pickle ``obj`` and ship it as one length-prefixed frame.

        The frame is written chunk by chunk so that a connection that dies
        mid-frame still charges the bytes that actually hit the wire: the
        measured meter must stay an upper bound on delivered traffic even
        across error paths, or the measured-vs-logical gate could drift on
        reconnects.
        """
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        frame = memoryview(_HEADER.pack(len(data)) + data)
        sent = 0
        try:
            while sent < len(frame):
                try:
                    n = self._sock.send(frame[sent:])
                except OSError as exc:
                    raise TransportError(f"send failed: {exc}") from exc
                if n == 0:  # pragma: no cover - blocking sockets raise instead
                    raise TransportError("send made no progress (socket wedged)")
                sent += n
        finally:
            # Charged even when an exception unwinds: partial traffic crossed
            # the socket and the peer's receive meter will see those bytes.
            self.bytes_sent += sent
        self.messages_sent += 1

    def _deadline_remaining(self, deadline: Optional[float]) -> Optional[float]:
        """Seconds left before ``deadline``; raises once it has passed."""
        if deadline is None:
            return None
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TransportError("receive deadline expired (peer alive but silent?)")
        return remaining

    def _recv_exact(self, nbytes: int, deadline: Optional[float] = None) -> bytes:
        buf = bytearray()
        try:
            while len(buf) < nbytes:
                remaining = self._deadline_remaining(deadline)
                try:
                    self._sock.settimeout(remaining)
                    chunk = self._sock.recv(nbytes - len(buf))
                except socket.timeout as exc:
                    raise TransportError(
                        "receive deadline expired (peer alive but silent?)"
                    ) from exc
                except OSError as exc:
                    raise TransportError(f"recv failed: {exc}") from exc
                if not chunk:
                    raise TransportError("connection closed by peer")
                buf.extend(chunk)
        finally:
            # Mid-frame failures still drained these bytes off the wire — they
            # mirror whatever fraction of the peer's send meter got through.
            self.bytes_received += len(buf)
            if not self.closed:
                try:
                    self._sock.settimeout(None)
                except OSError:  # pragma: no cover - socket torn down under us
                    pass
        return bytes(buf)

    def recv(self, timeout: Optional[float] = None) -> Any:
        """Receive one frame and unpickle it; raises TransportError on EOF.

        ``timeout`` (seconds) is a per-receive deadline covering the whole
        frame: when the peer is alive but wedged — connected, not sending —
        the call raises :class:`TransportError` instead of hanging the
        coordinator forever. ``None`` (default) blocks indefinitely, the
        right mode for rank serve loops that legitimately idle between
        requests. The service layer's health checks rely on the deadline.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        (length,) = _HEADER.unpack(self._recv_exact(_HEADER.size, deadline))
        if length > _MAX_FRAME_BYTES:
            raise TransportError(f"refusing {length}-byte frame (desynced peer?)")
        body = self._recv_exact(int(length), deadline)
        self.messages_received += 1
        return pickle.loads(body)

    def close(self) -> None:
        """Close the socket (idempotent); counters remain readable."""
        if not self.closed:
            self.closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close never usefully fails
                pass

    def __enter__(self) -> "MessageConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class MessageListener:
    """Rank-side accept loop: bind, report the bound address, accept clients.

    Binding port 0 lets the OS pick a free port — the rank process reports
    ``listener.address`` back to the coordinator, which is how the cluster
    wires itself up without port configuration. The listening socket outlives
    individual client connections, which is what makes coordinator
    *reconnects* (after a transient network failure) possible while the rank
    process is alive.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, backlog: int = 16) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)

    @property
    def address(self) -> Address:
        """The bound ``(host, port)`` clients should connect to."""
        host, port = self._sock.getsockname()[:2]
        return (host, port)

    def accept(self) -> MessageConnection:
        """Block until a client connects; returns the metered connection."""
        try:
            sock, _ = self._sock.accept()
        except OSError as exc:
            raise TransportError(f"accept failed: {exc}") from exc
        return MessageConnection(sock)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass


def _interruptible_sleep(seconds: float, abort: Optional[Callable[[], bool]]) -> bool:
    """Sleep up to ``seconds``, re-polling ``abort()`` throughout.

    Returns ``True`` the moment ``abort()`` does — a caller that learns
    mid-backoff that the peer is gone for good (its process object died)
    must not sleep through the rest of the schedule.
    """
    if abort is None:
        time.sleep(seconds)
        return False
    end = time.monotonic() + seconds
    while True:
        if abort():
            return True
        left = end - time.monotonic()
        if left <= 0:
            return False
        time.sleep(min(left, _ABORT_POLL_SECONDS))


def connect_with_retry(
    address: Address,
    attempts: int = 5,
    delay: float = 0.05,
    backoff: float = 2.0,
    timeout: float = 5.0,
    abort: Optional[Callable[[], bool]] = None,
) -> MessageConnection:
    """Connect to ``address``, retrying with exponential backoff.

    Transient failures (the rank is mid-restart, the accept queue hiccuped)
    are retried up to ``attempts`` times, sleeping ``delay * backoff**i``
    between tries. ``abort()`` is consulted before each retry *and
    repeatedly inside each backoff sleep* so a caller that learns the peer
    is gone for good (its process object is dead) stops within
    ``_ABORT_POLL_SECONDS`` instead of sleeping through the remaining
    schedule. The returned connection is blocking (the connect ``timeout``
    applies only to the handshake).
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    last: Optional[Exception] = None
    for attempt in range(attempts):
        if attempt and abort is not None and abort():
            break
        try:
            sock = socket.create_connection(address, timeout=timeout)
            sock.settimeout(None)
            return MessageConnection(sock)
        except OSError as exc:
            last = exc
            if attempt + 1 < attempts:
                if _interruptible_sleep(delay * (backoff ** attempt), abort):
                    break
    raise TransportError(
        f"could not connect to rank at {address} after {attempts} attempt(s): {last}"
    ) from last

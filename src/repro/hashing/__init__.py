"""Deterministic hashing, pseudo-random priority schemes and compressed status-tuple
packing (Sections V-A and V-C of the paper)."""

from __future__ import annotations

from .xorshift import (
    xorshift64,
    xorshift64star,
    hash_iter_vertex,
    XORSHIFT64_STAR_MULTIPLIER,
)
from .priorities import (
    PriorityScheme,
    fixed_priorities,
    iteration_priorities,
    priority_scheme_names,
)
from .packing import (
    TuplePacking,
    packed_in,
    packed_out,
    priority_bits,
)

__all__ = [
    "xorshift64",
    "xorshift64star",
    "hash_iter_vertex",
    "XORSHIFT64_STAR_MULTIPLIER",
    "PriorityScheme",
    "fixed_priorities",
    "iteration_priorities",
    "priority_scheme_names",
    "TuplePacking",
    "packed_in",
    "packed_out",
    "priority_bits",
]

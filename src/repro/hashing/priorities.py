"""Pseudo-random priority schemes for the MIS-2 algorithms (Section V-A, Table I).

Three schemes are reproduced:

* ``fixed`` — priorities chosen once before the first iteration and reused in every
  iteration. This is what Bell/Dalton/Olson (and hence CUSP and ViennaCL) do, and it
  is prone to dependency chains.
* ``xor`` — per-iteration priorities from the plain xorshift hash of
  ``(iteration, vertex)``. Included because the paper shows it is surprisingly *bad*
  (correlated across iterations).
* ``xorstar`` — per-iteration priorities from the xorshift* hash; the scheme used by
  the Kokkos Kernels implementation and by this reproduction's Algorithm 1.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Union

import numpy as np

from .xorshift import hash_iter_vertex, xorshift64star

__all__ = [
    "PriorityScheme",
    "fixed_priorities",
    "iteration_priorities",
    "priority_scheme_names",
]


class PriorityScheme(str, Enum):
    """Priority-refresh scheme used by an MIS algorithm."""

    #: Priorities drawn once and reused every iteration (Bell et al.).
    FIXED = "fixed"
    #: Refreshed each iteration with the plain xorshift hash.
    XOR = "xor"
    #: Refreshed each iteration with the xorshift* hash (the paper's choice).
    XORSTAR = "xorstar"

    @classmethod
    def coerce(cls, value: Union[str, "PriorityScheme"]) -> "PriorityScheme":
        """Accept either an enum member or its string value."""
        if isinstance(value, PriorityScheme):
            return value
        try:
            return PriorityScheme(str(value).lower())
        except ValueError as exc:
            raise ValueError(
                f"unknown priority scheme {value!r}; expected one of "
                f"{[m.value for m in PriorityScheme]}"
            ) from exc


def priority_scheme_names() -> List[str]:
    """Names of the supported schemes, in Table I column order."""
    return [PriorityScheme.FIXED.value, PriorityScheme.XOR.value, PriorityScheme.XORSTAR.value]


def fixed_priorities(num_vertices: int, seed: int = 0) -> np.ndarray:
    """Priorities chosen once for all iterations (Bell's scheme).

    Each vertex gets ``xorshift64star(seed_hash ^ xorshift64star(v + 1))`` — i.e. a
    deterministic pseudo-random value that does not change between iterations.
    """
    if num_vertices < 0:
        raise ValueError("num_vertices must be >= 0")
    vertices = np.arange(num_vertices, dtype=np.uint64)
    seed_hash = xorshift64star(np.uint64(seed) + np.uint64(0x9E3779B97F4A7C15))
    return xorshift64star(seed_hash ^ xorshift64star(vertices + np.uint64(1)))


def iteration_priorities(
    scheme: Union[str, PriorityScheme],
    iteration: int,
    num_vertices: int,
    seed: int = 0,
) -> np.ndarray:
    """Priorities for one iteration of the MIS-2 main loop under ``scheme``.

    For the ``fixed`` scheme the result is independent of ``iteration``; for the hash
    schemes it is ``h(iteration, v)`` per Section V-A.
    """
    scheme = PriorityScheme.coerce(scheme)
    if scheme is PriorityScheme.FIXED:
        return fixed_priorities(num_vertices, seed=seed)
    vertices = np.arange(num_vertices, dtype=np.uint64)
    return hash_iter_vertex(iteration, vertices, star=(scheme is PriorityScheme.XORSTAR))

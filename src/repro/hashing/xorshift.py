"""Marsaglia xorshift hash functions (Section V-A).

The paper derives per-iteration pseudo-random priorities from a deterministic hash of
the iteration number and the vertex id::

    h(iter, v) = f(f(iter) XOR f(v))

where ``f`` is either 64-bit xorshift (the "Xor Hash" column of Table I) or 64-bit
xorshift* — xorshift followed by a multiplicative (linear congruential) step — which is
the scheme actually used by the implementation because plain xorshift turns out to be
correlated between iterations and *increases* the iteration count.

All functions operate element-wise on ``uint64`` NumPy arrays so that a whole vertex
worklist can be hashed in one vectorised call, and are pure functions of their inputs
(no global RNG state), which is what makes the MIS-2 algorithm deterministic across
backends and runs.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "xorshift64",
    "xorshift64star",
    "hash_iter_vertex",
    "XORSHIFT64_STAR_MULTIPLIER",
]

#: Multiplier of Marsaglia's xorshift64* generator.
XORSHIFT64_STAR_MULTIPLIER = np.uint64(0x2545F4914F6CDD1D)

_U64 = np.uint64
ArrayLike = Union[int, np.ndarray]


def _as_u64(x: ArrayLike) -> np.ndarray:
    arr = np.asarray(x, dtype=np.uint64)
    return arr


def xorshift64(x: ArrayLike) -> np.ndarray:
    """64-bit xorshift hash (shifts 13, 7, 17), applied element-wise.

    Note that 0 is a fixed point of xorshift; callers that hash ids should offset
    them by one (as :func:`hash_iter_vertex` does) to avoid the degenerate value.
    """
    v = _as_u64(x).copy()
    v ^= v << _U64(13)
    v ^= v >> _U64(7)
    v ^= v << _U64(17)
    return v


def xorshift64star(x: ArrayLike) -> np.ndarray:
    """64-bit xorshift* hash: xorshift (shifts 12, 25, 27) followed by a
    multiplicative step with Marsaglia's constant."""
    v = _as_u64(x).copy()
    v ^= v >> _U64(12)
    v ^= v << _U64(25)
    v ^= v >> _U64(27)
    return v * XORSHIFT64_STAR_MULTIPLIER


def hash_iter_vertex(
    iteration: int,
    vertices: ArrayLike,
    star: bool = True,
) -> np.ndarray:
    """The paper's ``h(iter, v) = f(f(iter) ^ f(v))`` combined hash.

    Parameters
    ----------
    iteration:
        Iteration counter of the MIS-2 main loop (>= 0).
    vertices:
        Vertex ids (scalar or array).
    star:
        Use xorshift* (default, the paper's choice) or plain xorshift
        (the "Xor Hash" column of Table I).

    Returns
    -------
    ``uint64`` array of pseudo-random values, one per vertex.
    """
    if iteration < 0:
        raise ValueError("iteration must be >= 0")
    f = xorshift64star if star else xorshift64
    # Offset the two inputs differently (golden-ratio constant for the iteration,
    # +1 for the vertex) so that neither hits the generators' zero fixed point and so
    # that ``iteration == vertex`` does not collapse the XOR to zero.
    iter_hash = f(np.uint64(iteration) + _U64(0x9E3779B97F4A7C15))
    vert_hash = f(_as_u64(vertices) + _U64(1))
    return f(iter_hash ^ vert_hash)

"""Compressed status tuples (Section V-C).

Bell's algorithm stores a 3-element tuple ``(status, priority, id)`` per vertex. The
paper's Algorithm 1 compresses the whole tuple into a single unsigned integer of the
same width as the vertex ids:

* ``IN``  is the special value 0,
* ``OUT`` is the special value ``UINT_MAX`` (all ones),
* an UNDECIDED vertex packs ``(priority << b) | (id + 1)`` where
  ``b = ceil(log2(|V| + 2))`` bits hold the id component and the remaining bits hold
  the (truncated) pseudo-random priority.

The packing preserves the required ordering ``IN < UNDECIDED < OUT`` (Equation 1 of
the paper shows no packed undecided value can collide with 0 or UINT_MAX), lets the
lexicographic 3-way tuple comparison become a single integer comparison, and reduces
memory traffic by 3x — one of the four key optimizations isolated in Fig. 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

__all__ = ["TuplePacking", "priority_bits", "packed_in", "packed_out"]


def priority_bits(num_vertices: int, word_bits: int = 64) -> Tuple[int, int]:
    """Return ``(id_bits, priority_bits)`` for a graph of ``num_vertices`` vertices.

    ``id_bits`` is the paper's ``b = ceil(log2(|V| + 2))``; the remaining
    ``word_bits - b`` bits hold the priority.
    """
    if num_vertices < 0:
        raise ValueError("num_vertices must be >= 0")
    if word_bits not in (32, 64):
        raise ValueError("word_bits must be 32 or 64")
    b = max(1, math.ceil(math.log2(num_vertices + 2)))
    if b >= word_bits:
        raise ValueError(
            f"graph too large for {word_bits}-bit packed tuples "
            f"({num_vertices} vertices needs {b} id bits)"
        )
    return b, word_bits - b


def packed_in(word_bits: int = 64) -> int:
    """The packed representation of the IN status (always 0)."""
    if word_bits not in (32, 64):
        raise ValueError("word_bits must be 32 or 64")
    return 0


def packed_out(word_bits: int = 64) -> int:
    """The packed representation of the OUT status (all ones / UINT_MAX)."""
    if word_bits not in (32, 64):
        raise ValueError("word_bits must be 32 or 64")
    return (1 << word_bits) - 1


@dataclass(frozen=True)
class TuplePacking:
    """Packs and unpacks ``(priority, id)`` tuples for a fixed vertex count.

    Parameters
    ----------
    num_vertices:
        Number of vertices in the graph (determines the id-field width ``b``).
    word_bits:
        Width of the packed word; 32 matches the paper's typical configuration, 64 is
        the default here so that arbitrarily large Python test graphs never saturate
        the priority field.
    """

    num_vertices: int
    word_bits: int = 64

    def __post_init__(self) -> None:
        id_bits, prio_bits = priority_bits(self.num_vertices, self.word_bits)
        object.__setattr__(self, "_id_bits", id_bits)
        object.__setattr__(self, "_prio_bits", prio_bits)

    # ------------------------------------------------------------------ properties
    @property
    def dtype(self) -> np.dtype:
        """NumPy dtype of packed words."""
        return np.dtype(np.uint32 if self.word_bits == 32 else np.uint64)

    @property
    def id_bits(self) -> int:
        """Number of bits holding the ``id + 1`` component (paper's ``b``)."""
        return self._id_bits  # type: ignore[attr-defined]

    @property
    def prio_bits(self) -> int:
        """Number of bits holding the truncated priority."""
        return self._prio_bits  # type: ignore[attr-defined]

    @property
    def in_value(self) -> np.integer:
        """Packed IN marker (0)."""
        return self.dtype.type(0)

    @property
    def out_value(self) -> np.integer:
        """Packed OUT marker (UINT_MAX for the word width)."""
        return self.dtype.type(packed_out(self.word_bits))

    # ------------------------------------------------------------------ packing
    def pack(self, priority: Union[int, np.ndarray], vertex: Union[int, np.ndarray]) -> np.ndarray:
        """Pack priorities and vertex ids into undecided-status words.

        The priority is truncated to :attr:`prio_bits` bits (the id acts as the
        tiebreak exactly as in the paper); the vertex id is stored as ``id + 1``.
        """
        dt = self.dtype.type
        prio = np.asarray(priority, dtype=self.dtype)
        vid = np.asarray(vertex, dtype=self.dtype)
        if np.any(np.asarray(vertex) < 0) or np.any(np.asarray(vertex) >= max(1, self.num_vertices)):
            raise ValueError("vertex id outside [0, num_vertices)")
        prio_mask = dt((1 << self.prio_bits) - 1)
        packed = ((prio & prio_mask) << dt(self.id_bits)) | (vid + dt(1))
        return packed

    def unpack(self, packed: Union[int, np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`pack` for undecided words: returns ``(priority, vertex)``.

        Calling this on IN/OUT markers is an error (they carry no id/priority).
        """
        arr = np.asarray(packed, dtype=self.dtype)
        if np.any(arr == self.in_value) or np.any(arr == self.out_value):
            raise ValueError("cannot unpack IN/OUT status markers")
        dt = self.dtype.type
        id_mask = dt((1 << self.id_bits) - 1)
        vertex = (arr & id_mask) - dt(1)
        priority = arr >> dt(self.id_bits)
        return priority.astype(self.dtype), vertex.astype(np.int64)

    # ------------------------------------------------------------------ predicates
    def is_in(self, packed: np.ndarray) -> np.ndarray:
        """Element-wise test for the IN marker."""
        return np.asarray(packed) == self.in_value

    def is_out(self, packed: np.ndarray) -> np.ndarray:
        """Element-wise test for the OUT marker."""
        return np.asarray(packed) == self.out_value

    def is_undecided(self, packed: np.ndarray) -> np.ndarray:
        """Element-wise test for packed undecided tuples."""
        arr = np.asarray(packed)
        return (arr != self.in_value) & (arr != self.out_value)

    def vertex_of(self, packed: np.ndarray) -> np.ndarray:
        """Vertex id stored in undecided words (undefined for IN/OUT markers)."""
        dt = self.dtype.type
        id_mask = dt((1 << self.id_bits) - 1)
        arr = np.asarray(packed, dtype=self.dtype)
        return ((arr & id_mask).astype(np.int64)) - 1

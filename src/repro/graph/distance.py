"""Distance queries used for verification: BFS distances, k-hop neighbourhoods, and
enumeration of all vertex pairs within a given distance.

These are reference implementations (clarity over speed); the MIS verification in
:mod:`repro.mis.verify` uses the vectorised sparse-matrix forms for large graphs and
these routines to cross-check on small graphs and in property-based tests.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, List, Set, Tuple

import numpy as np

from .csr import CSRGraph

__all__ = ["bfs_distances", "k_hop_neighborhood", "all_pairs_within"]


def bfs_distances(graph: CSRGraph, source: int, max_distance: int | None = None) -> np.ndarray:
    """Breadth-first-search distances from ``source``.

    Unreachable vertices (or vertices further than ``max_distance``) get ``-1``.
    """
    if not (0 <= source < graph.num_vertices):
        raise IndexError(f"source {source} out of range")
    dist = -np.ones(graph.num_vertices, dtype=np.int64)
    dist[source] = 0
    frontier = deque([source])
    while frontier:
        v = frontier.popleft()
        d = dist[v]
        if max_distance is not None and d >= max_distance:
            continue
        for w in graph.neighbors(v):
            w = int(w)
            if dist[w] < 0:
                dist[w] = d + 1
                frontier.append(w)
    return dist


def k_hop_neighborhood(graph: CSRGraph, v: int, k: int, include_self: bool = True) -> np.ndarray:
    """All vertices within distance ``k`` of ``v`` (sorted)."""
    if k < 0:
        raise ValueError("k must be >= 0")
    dist = bfs_distances(graph, v, max_distance=k)
    mask = (dist >= 0) & (dist <= k)
    if not include_self:
        mask[v] = False
    return np.nonzero(mask)[0].astype(np.int64)


def all_pairs_within(graph: CSRGraph, k: int) -> Iterator[Tuple[int, int]]:
    """Yield every unordered pair ``(u, v)``, ``u < v``, with ``dist(u, v) <= k``.

    Intended for small graphs in tests (quadratic in the neighbourhood sizes).
    """
    if k < 1:
        return
    for u in range(graph.num_vertices):
        nbrs = k_hop_neighborhood(graph, u, k, include_self=False)
        for v in nbrs:
            if u < int(v):
                yield (u, int(v))

"""Builders converting edge lists, SciPy sparse matrices, dense arrays and NetworkX
graphs to and from :class:`~repro.graph.csr.CSRGraph`.

All builders produce *symmetric, self-loop-free, duplicate-free* CSR structure, which
is the canonical input form for the MIS / coloring / coarsening kernels (matching what
Kokkos Kernels expects of its CRS graphs).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from .csr import CSRGraph

__all__ = [
    "from_edges",
    "from_scipy",
    "from_dense",
    "from_networkx",
    "to_scipy",
    "symmetrize",
    "remove_self_loops",
]


def _csr_from_coo(
    num_vertices: int, src: np.ndarray, dst: np.ndarray
) -> CSRGraph:
    """Build a CSRGraph from COO edge arrays, deduplicating entries per row."""
    if src.size == 0:
        return CSRGraph.empty(num_vertices)
    mat = sp.coo_matrix(
        (np.ones(src.size, dtype=np.int8), (src, dst)),
        shape=(num_vertices, num_vertices),
    ).tocsr()
    mat.sum_duplicates()
    mat.sort_indices()
    return CSRGraph(mat.indptr.astype(np.int64), mat.indices.astype(np.int32), validate=False)


def from_edges(
    num_vertices: int,
    edges: Iterable[Tuple[int, int]],
    symmetric: bool = True,
    allow_self_loops: bool = False,
) -> CSRGraph:
    """Build a graph from an iterable of ``(u, v)`` pairs.

    Parameters
    ----------
    num_vertices:
        Total vertex count; every edge endpoint must lie in ``[0, num_vertices)``.
    edges:
        Iterable of vertex pairs. Duplicates are collapsed.
    symmetric:
        When true (default), both directions of every edge are stored.
    allow_self_loops:
        When false (default), self-loops are dropped.
    """
    edge_arr = np.asarray(list(edges), dtype=np.int64)
    if edge_arr.size == 0:
        return CSRGraph.empty(num_vertices)
    if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
        raise ValueError("edges must be an iterable of (u, v) pairs")
    if edge_arr.min() < 0 or edge_arr.max() >= num_vertices:
        raise ValueError("edge endpoint outside [0, num_vertices)")
    src = edge_arr[:, 0]
    dst = edge_arr[:, 1]
    if not allow_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    if symmetric:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return _csr_from_coo(num_vertices, src, dst)


def from_scipy(matrix: sp.spmatrix, drop_self_loops: bool = True) -> CSRGraph:
    """Build a graph from the sparsity pattern of a SciPy sparse matrix.

    The matrix is symmetrized (pattern-wise) so the result is undirected, matching how
    the paper treats its (symmetric) test matrices.
    """
    mat = sp.csr_matrix(matrix)
    if mat.shape[0] != mat.shape[1]:
        raise ValueError(f"adjacency matrix must be square, got shape {mat.shape}")
    pattern = sp.csr_matrix(
        (np.ones(mat.nnz, dtype=np.int8), mat.indices, mat.indptr), shape=mat.shape
    )
    pattern = pattern + pattern.T
    if drop_self_loops:
        pattern = sp.csr_matrix(pattern)
        pattern.setdiag(0)
    pattern.eliminate_zeros()
    pattern.sort_indices()
    return CSRGraph(
        pattern.indptr.astype(np.int64),
        pattern.indices.astype(np.int32),
        validate=False,
    )


def from_dense(matrix: np.ndarray, drop_self_loops: bool = True) -> CSRGraph:
    """Build a graph from a dense 0/1 (or weighted) adjacency matrix."""
    arr = np.asarray(matrix)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError("dense adjacency matrix must be square")
    return from_scipy(sp.csr_matrix(arr), drop_self_loops=drop_self_loops)


def from_networkx(graph) -> CSRGraph:
    """Build a graph from a :class:`networkx.Graph` (nodes relabelled to ``0..n-1``)."""
    import networkx as nx  # local import: networkx is a test/benchmark dependency

    relabelled = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    n = relabelled.number_of_nodes()
    return from_edges(n, relabelled.edges(), symmetric=True)


def to_scipy(graph: CSRGraph, dtype=np.float64) -> sp.csr_matrix:
    """Return the 0/1 adjacency matrix of ``graph`` as a SciPy CSR matrix."""
    data = np.ones(graph.num_edge_slots, dtype=dtype)
    return sp.csr_matrix(
        (data, graph.entries.astype(np.int64), graph.rowmap),
        shape=(graph.num_vertices, graph.num_vertices),
    )


def symmetrize(graph: CSRGraph) -> CSRGraph:
    """Return an undirected version of ``graph`` (union of the pattern and its transpose)."""
    return from_scipy(to_scipy(graph), drop_self_loops=False)


def remove_self_loops(graph: CSRGraph) -> CSRGraph:
    """Return a copy of ``graph`` without self-loops."""
    if not graph.has_self_loops():
        return graph.copy()
    mat = to_scipy(graph).tolil()
    mat.setdiag(0)
    return from_scipy(mat.tocsr(), drop_self_loops=True)

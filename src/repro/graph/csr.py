"""Compressed-row-storage (CRS/CSR) graph container.

The paper's implementation operates on the Kokkos Kernels CRS graph: a ``rowmap``
(offsets) array of length ``|V|+1`` and an ``entries`` array of column indices of
length ``|E|`` (directed edge slots; an undirected edge is stored twice).
:class:`CSRGraph` is the exact Python analogue, backed by NumPy arrays so that all
kernels can operate on it with vectorised, data-parallel operations.

The container is deliberately *structure only* — edge weights live in the sparse
matrices handled by :mod:`repro.solvers`; graph algorithms in this package only need
adjacency structure, matching how the paper's MIS-2 treats its input.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """An undirected graph in compressed-row-storage form.

    Parameters
    ----------
    rowmap:
        Integer array of length ``num_vertices + 1`` with non-decreasing offsets into
        ``entries``. ``rowmap[0]`` must be 0 and ``rowmap[-1] == len(entries)``.
    entries:
        Integer array of neighbor ids, concatenated row by row. For an undirected
        graph each edge ``(u, v)`` appears both in row ``u`` and row ``v``
        (use :func:`repro.graph.build.symmetrize` to enforce this).
    validate:
        When true (default), structural invariants are checked at construction.

    Notes
    -----
    * Self-loops are permitted in storage but the generators and builders strip them;
      the MIS kernels treat every vertex as implicitly adjacent to itself (as the
      paper's Fig. 1 does), so explicit self-loops are redundant.
    * The arrays are stored read-only to guarantee that algorithms cannot mutate a
      shared graph in place — determinism across runs relies on this.
    """

    __slots__ = ("_rowmap", "_entries", "_num_vertices")

    def __init__(
        self,
        rowmap: np.ndarray,
        entries: np.ndarray,
        validate: bool = True,
    ) -> None:
        rowmap = np.asarray(rowmap)
        entries = np.asarray(entries)
        if not np.issubdtype(rowmap.dtype, np.integer):
            raise TypeError(f"rowmap must be integer-typed, got {rowmap.dtype}")
        if not np.issubdtype(entries.dtype, np.integer):
            raise TypeError(f"entries must be integer-typed, got {entries.dtype}")
        if rowmap.ndim != 1 or entries.ndim != 1:
            raise ValueError("rowmap and entries must be one-dimensional")
        if rowmap.size == 0:
            raise ValueError("rowmap must have at least one element (got empty array)")
        rowmap = rowmap.astype(np.int64, copy=True)
        entries = entries.astype(np.int32, copy=True)
        n = rowmap.size - 1
        if validate:
            if rowmap[0] != 0:
                raise ValueError("rowmap[0] must be 0")
            if rowmap[-1] != entries.size:
                raise ValueError(
                    f"rowmap[-1] ({rowmap[-1]}) must equal len(entries) ({entries.size})"
                )
            if n > 0 and np.any(np.diff(rowmap) < 0):
                raise ValueError("rowmap must be non-decreasing")
            if entries.size and (entries.min() < 0 or entries.max() >= n):
                raise ValueError("entries contain vertex ids outside [0, num_vertices)")
        rowmap.setflags(write=False)
        entries.setflags(write=False)
        self._rowmap = rowmap
        self._entries = entries
        self._num_vertices = int(n)

    # ------------------------------------------------------------------ accessors
    @property
    def rowmap(self) -> np.ndarray:
        """Read-only offsets array of length ``num_vertices + 1`` (int64)."""
        return self._rowmap

    @property
    def entries(self) -> np.ndarray:
        """Read-only concatenated adjacency lists (int32)."""
        return self._entries

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self._num_vertices

    @property
    def num_edge_slots(self) -> int:
        """Number of stored directed edge slots, i.e. ``len(entries)``.

        For a symmetric graph without self-loops this is ``2 * |E|``.
        """
        return int(self._entries.size)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|`` (edge slots divided by two, self-loops
        counted once)."""
        loops = int(np.count_nonzero(self._entries == self._vertex_of_slot()))
        return (self.num_edge_slots - loops) // 2 + loops

    def _vertex_of_slot(self) -> np.ndarray:
        """Return, for every entry slot, the row (source vertex) it belongs to."""
        return np.repeat(np.arange(self._num_vertices, dtype=np.int32), self.degrees())

    # ------------------------------------------------------------------ degrees
    def degrees(self) -> np.ndarray:
        """Per-vertex degree (length of each adjacency list), int64."""
        return np.diff(self._rowmap)

    def degree(self, v: int) -> int:
        """Degree of a single vertex ``v``."""
        self._check_vertex(v)
        return int(self._rowmap[v + 1] - self._rowmap[v])

    def average_degree(self) -> float:
        """Mean adjacency-list length (``0.0`` for an empty graph)."""
        if self._num_vertices == 0:
            return 0.0
        return self.num_edge_slots / self._num_vertices

    def max_degree(self) -> int:
        """Maximum adjacency-list length (``0`` for an empty graph)."""
        if self._num_vertices == 0:
            return 0
        degs = self.degrees()
        return int(degs.max()) if degs.size else 0

    # ------------------------------------------------------------------ adjacency
    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of the adjacency list of ``v``."""
        self._check_vertex(v)
        return self._entries[self._rowmap[v]: self._rowmap[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """True when ``v`` appears in ``u``'s adjacency list."""
        self._check_vertex(u)
        self._check_vertex(v)
        return bool(np.any(self.neighbors(u) == v))

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over undirected edges ``(u, v)`` with ``u <= v``, each once."""
        for u in range(self._num_vertices):
            for v in self.neighbors(u):
                if u <= int(v):
                    yield (u, int(v))

    def edge_array(self) -> np.ndarray:
        """Return an ``(m, 2)`` array of undirected edges with ``u <= v``."""
        src = self._vertex_of_slot()
        dst = self._entries
        mask = src <= dst
        return np.stack([src[mask], dst[mask]], axis=1).astype(np.int64)

    # ------------------------------------------------------------------ comparisons
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self._num_vertices == other._num_vertices
            and np.array_equal(self._rowmap, other._rowmap)
            and np.array_equal(self._entries, other._entries)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._num_vertices,
                self._rowmap.tobytes(),
                self._entries.tobytes(),
            )
        )

    def is_symmetric(self) -> bool:
        """True when every stored edge ``(u, v)`` also appears as ``(v, u)``."""
        src = self._vertex_of_slot().astype(np.int64)
        dst = self._entries.astype(np.int64)
        n = self._num_vertices
        forward = np.sort(src * n + dst)
        backward = np.sort(dst * n + src)
        return bool(np.array_equal(forward, backward))

    def has_self_loops(self) -> bool:
        """True when any vertex appears in its own adjacency list."""
        return bool(np.any(self._entries == self._vertex_of_slot()))

    def copy(self) -> "CSRGraph":
        """Return an independent copy of the graph."""
        return CSRGraph(self._rowmap.copy(), self._entries.copy(), validate=False)

    # ------------------------------------------------------------------ misc
    def memory_bytes(self, index_bytes: int = 4, offset_bytes: int = 8) -> int:
        """Approximate storage footprint of the CRS arrays, used by the cost model."""
        return offset_bytes * self._rowmap.size + index_bytes * self._entries.size

    def _check_vertex(self, v: int) -> None:
        if not (0 <= int(v) < self._num_vertices):
            raise IndexError(f"vertex {v} out of range [0, {self._num_vertices})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(num_vertices={self._num_vertices}, "
            f"num_edge_slots={self.num_edge_slots}, "
            f"avg_degree={self.average_degree():.2f})"
        )

    # ------------------------------------------------------------------ constructors
    @staticmethod
    def empty(num_vertices: int) -> "CSRGraph":
        """Graph with ``num_vertices`` vertices and no edges."""
        if num_vertices < 0:
            raise ValueError("num_vertices must be >= 0")
        return CSRGraph(
            np.zeros(num_vertices + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int32),
            validate=False,
        )

"""Basic structural properties: connected components and degree histograms."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from .build import to_scipy
from .csr import CSRGraph

__all__ = ["connected_components", "is_connected", "degree_histogram"]


def connected_components(graph: CSRGraph) -> Tuple[int, np.ndarray]:
    """Number of connected components and the per-vertex component label array."""
    if graph.num_vertices == 0:
        return 0, np.zeros(0, dtype=np.int64)
    n_comp, labels = csgraph.connected_components(
        to_scipy(graph), directed=False, return_labels=True
    )
    return int(n_comp), labels.astype(np.int64)


def is_connected(graph: CSRGraph) -> bool:
    """True when the graph has exactly one connected component (empty graph: False)."""
    n_comp, _ = connected_components(graph)
    return n_comp == 1


def degree_histogram(graph: CSRGraph) -> Dict[int, int]:
    """Mapping ``degree -> number of vertices with that degree``."""
    degs = graph.degrees()
    unique, counts = np.unique(degs, return_counts=True)
    return {int(d): int(c) for d, c in zip(unique, counts)}

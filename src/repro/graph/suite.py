"""The 17-matrix evaluation suite.

The paper evaluates on 15 SuiteSparse matrices plus two Trilinos/Galeri problems
(Laplace3D_100 and Elasticity3D_60). The SuiteSparse files are not available in this
offline environment, so every matrix has a **synthetic stand-in** generated to match
its published degree profile (Table II of the paper): 2-D 5-point grids for the
low-degree problems, 3-D 7-point and 27-point stencil grids for the FEM problems, and
random near-regular graphs for the high-degree irregular problems. The stand-ins are
generated at a configurable ``scale`` (fraction of the paper's vertex count); the
benchmark default keeps each graph in the tens of thousands of vertices so the whole
suite runs in seconds on two CPU cores.

Every :class:`MatrixRecord` also carries the *published* reference numbers used by the
experiment drivers (Table I iteration counts, Table II statistics and per-device
times, Table IV MIS-2 sizes) so EXPERIMENTS.md can print paper-vs-measured rows
without hard-coding the data in several places.

If real SuiteSparse ``.mtx`` files are available locally, pass ``mtx_dir`` to
:func:`load_suite_graph` and the real matrix is used instead of the stand-in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from . import generators
from .build import from_scipy, to_scipy
from .csr import CSRGraph
from .io import read_matrix_market

__all__ = [
    "MatrixRecord",
    "SUITE",
    "suite_names",
    "load_suite_graph",
    "load_suite_matrix",
    "paper_statistics",
    "DEFAULT_SCALE",
]

#: Default fraction of the paper's vertex count used for the synthetic stand-ins.
DEFAULT_SCALE = 0.02


@dataclass(frozen=True)
class MatrixRecord:
    """Metadata and published reference data for one suite matrix."""

    #: Matrix name as used in the paper.
    name: str
    #: Generator family used for the synthetic stand-in
    #: (one of ``grid2d``, ``laplace3d``, ``stencil27``, ``stencil27_thin``,
    #: ``elasticity3d``, ``random_regular``).
    kind: str
    #: Published number of vertices (millions), Table II.
    paper_nv_millions: float
    #: Published number of stored nonzeros/edge slots (millions), Table II.
    paper_ne_millions: float
    #: Published average degree, Table II.
    paper_avg_degree: float
    #: Published maximum degree, Table II.
    paper_max_degree: int
    #: Published mean MIS-2 times in milliseconds per device, Table II
    #: (keys: ``v100``, ``mi100``, ``skylake``, ``tx2``).
    paper_times_ms: Dict[str, float] = field(default_factory=dict)
    #: Published iteration counts, Table I (keys: ``fixed``, ``xor``, ``xorstar``).
    paper_iterations: Dict[str, int] = field(default_factory=dict)
    #: Published MIS-2 sizes, Table IV (keys: ``kk``, ``cusp``, ``viennacl``).
    paper_mis2_sizes: Dict[str, int] = field(default_factory=dict)
    #: Extra generator parameters (e.g. target degree for random_regular).
    params: Dict[str, float] = field(default_factory=dict)
    #: Whether this matrix is one of the paper's 17 (bodyy5 from Table VI is not).
    in_main_suite: bool = True

    @property
    def paper_num_vertices(self) -> int:
        return int(round(self.paper_nv_millions * 1e6))


def _rec(
    name: str,
    kind: str,
    nv: float,
    ne: float,
    avg: float,
    mx: int,
    times: Tuple[float, float, float, float] | None = None,
    iters: Tuple[int, int, int] | None = None,
    mis2: Tuple[int, int, int] | None = None,
    params: Optional[Dict[str, float]] = None,
    in_main_suite: bool = True,
) -> MatrixRecord:
    return MatrixRecord(
        name=name,
        kind=kind,
        paper_nv_millions=nv,
        paper_ne_millions=ne,
        paper_avg_degree=avg,
        paper_max_degree=mx,
        paper_times_ms=(
            {"v100": times[0], "mi100": times[1], "skylake": times[2], "tx2": times[3]}
            if times
            else {}
        ),
        paper_iterations=(
            {"fixed": iters[0], "xor": iters[1], "xorstar": iters[2]} if iters else {}
        ),
        paper_mis2_sizes=(
            {"kk": mis2[0], "cusp": mis2[1], "viennacl": mis2[2]} if mis2 else {}
        ),
        params=params or {},
        in_main_suite=in_main_suite,
    )


#: The evaluation suite, in the order of the paper's Table II (plus bodyy5 from Table VI).
SUITE: Dict[str, MatrixRecord] = {
    r.name: r
    for r in [
        _rec("af_shell7", "stencil27_thin", 0.505, 9.047, 17.92, 35,
             (3.55, 4.75, 4.90, 6.47), (11, 23, 8), (9708, 9742, 9772)),
        _rec("apache2", "grid2d", 0.715, 2.767, 3.87, 4,
             (2.71, 3.44, 4.37, 4.73), (13, 21, 10), (67750, 67802, 67884)),
        _rec("audikw_1", "random_regular", 0.944, 39.298, 41.64, 114,
             (8.42, 16.3, 49.6, 57.7), (14, 22, 10), (4263, 4201, 4186),
             params={"degree": 42}),
        _rec("ecology2", "grid2d", 1.000, 2.998, 3.0, 3,
             (2.95, 3.05, 4.84, 5.09), (12, 11, 8), (139431, 140110, 139813)),
        _rec("Elasticity3D_60", "elasticity3d", 0.648, 50.758, 78.33, 81,
             (5.90, 11.3, 14.3, 20.2), (13, 23, 10), (4833, 4791, 4784)),
        _rec("Emilia_923", "stencil27", 0.923, 20.964, 22.71, 48,
             (6.84, 9.44, 18.7, 17.8), (13, 20, 11), (11445, 11420, 11427)),
        _rec("Fault_639", "stencil27", 0.639, 14.627, 22.9, 114,
             (5.07, 7.05, 9.18, 13.3), (13, 26, 10), (7901, 7835, 7877)),
        _rec("Geo_1438", "stencil27", 1.438, 32.297, 22.46, 48,
             (9.95, 13.2, 32.0, 27.9), (14, 26, 11), (18168, 18218, 18161)),
        _rec("Hook_1498", "stencil27", 1.498, 31.208, 20.83, 57,
             (10.1, 13.9, 19.0, 29.5), (14, 26, 11), (21469, 20966, 21077)),
        _rec("Laplace3D_100", "laplace3d", 1.0, 6.94, 6.94, 7,
             (3.34, 4.21, 6.21, 6.71), (14, 20, 10), (90041, 90198, 90180)),
        _rec("ldoor", "stencil27", 0.952, 23.737, 24.93, 49,
             (6.18, 11.7, 19.2, 18.8), (11, 16, 8), (12464, 12326, 12369)),
        _rec("parabolic_fem", "grid2d", 0.526, 2.1, 3.99, 7,
             (2.18, 3.02, 4.44, 4.07), (11, 9, 9), (50396, 50526, 50530)),
        _rec("PFlow_742", "stencil27", 0.743, 18.941, 25.5, 58,
             (6.16, 12.5, 11.4, 17.7), (14, 39, 12), (64880, 64763, 64767)),
        _rec("Serena", "stencil27", 1.391, 32.962, 23.69, 201,
             (9.96, 13.4, 33.1, 32.1), (14, 22, 11), (16575, 16451, 16439)),
        _rec("StocF-1465", "laplace3d", 1.465, 11.235, 7.67, 80,
             (6.48, 10.5, 13.4, 17.0), (14, 28, 10), (83419, 83401, 83274)),
        _rec("thermal2", "grid2d", 1.228, 4.904, 3.99, 10,
             (3.94, 4.40, 12.3, 13.5), (12, 17, 9), (118217, 118426, 118327)),
        _rec("tmt_sym", "grid2d", 0.727, 2.904, 4.0, 5,
             (2.45, 2.98, 4.54, 4.97), (12, 18, 8), (68827, 68769, 68835)),
        # bodyy5 appears only in Table VI (cluster Gauss-Seidel comparison).
        _rec("bodyy5", "grid2d", 0.0186, 0.111, 5.96, 8, in_main_suite=False),
    ]
}


def suite_names(main_only: bool = True) -> List[str]:
    """Names of the suite matrices, in Table II order."""
    return [n for n, r in SUITE.items() if r.in_main_suite or not main_only]


def paper_statistics(name: str) -> MatrixRecord:
    """Return the :class:`MatrixRecord` (published reference data) for ``name``."""
    if name not in SUITE:
        raise KeyError(f"unknown suite matrix {name!r}; known: {sorted(SUITE)}")
    return SUITE[name]


# ----------------------------------------------------------------------- stand-ins
def _grid_dims_2d(target_nv: int) -> Tuple[int, int]:
    side = max(2, int(round(np.sqrt(target_nv))))
    return side, side


def _grid_dims_3d(target_nv: int) -> Tuple[int, int, int]:
    side = max(2, int(round(target_nv ** (1.0 / 3.0))))
    return side, side, side


def _generate_matrix(record: MatrixRecord, scale: float, seed: int) -> sp.csr_matrix:
    """Generate the synthetic stand-in matrix for ``record`` at ``scale``."""
    target_nv = max(64, int(round(record.paper_num_vertices * scale)))
    kind = record.kind
    if kind == "grid2d":
        nx, ny = _grid_dims_2d(target_nv)
        return generators.laplace2d(nx, ny)
    if kind == "laplace3d":
        nx, ny, nz = _grid_dims_3d(target_nv)
        return generators.laplace3d_matrix(nx, ny, nz)
    if kind == "stencil27":
        nx, ny, nz = _grid_dims_3d(target_nv)
        graph = generators.elasticity3d_matrix(nx, ny, nz, dofs_per_node=1, seed=seed)
        return graph
    if kind == "stencil27_thin":
        # Layered (shell-like) problem: thin third dimension.
        nz = 5
        side = max(2, int(round(np.sqrt(target_nv / nz))))
        return generators.elasticity3d_matrix(side, side, nz, dofs_per_node=1, seed=seed)
    if kind == "elasticity3d":
        # 3 dofs per node: pick the node grid so total dofs ~= target.
        nodes = max(27, target_nv // 3)
        nx, ny, nz = _grid_dims_3d(nodes)
        return generators.elasticity3d_matrix(nx, ny, nz, dofs_per_node=3, seed=seed)
    if kind == "random_regular":
        degree = int(record.params.get("degree", 16))
        graph = generators.random_regular(target_nv, degree, seed=seed)
        A = to_scipy(graph)
        # Laplacian-like SPD matrix on the random graph so solver benches can use it.
        degs = np.asarray(A.sum(axis=1)).ravel()
        return sp.csr_matrix(sp.diags(degs + 1.0) - A)
    raise ValueError(f"unknown generator kind {kind!r} for matrix {record.name!r}")


def load_suite_matrix(
    name: str,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    mtx_dir: Optional[str] = None,
) -> sp.csr_matrix:
    """Load (or synthesise) the suite matrix ``name`` as a SciPy CSR matrix.

    Parameters
    ----------
    name:
        Suite matrix name (see :func:`suite_names`).
    scale:
        Fraction of the paper's vertex count to generate for the stand-in.
        Ignored when a real ``.mtx`` file is found in ``mtx_dir``.
    seed:
        Seed for the random generators (deterministic per (name, scale, seed)).
    mtx_dir:
        Optional directory containing real SuiteSparse files named ``<name>.mtx``
        or ``<name>.mtx.gz``; when present the real matrix is used.
    """
    record = paper_statistics(name)
    if mtx_dir is not None:
        base = Path(mtx_dir)
        for suffix in (".mtx", ".mtx.gz"):
            candidate = base / f"{name}{suffix}"
            if candidate.exists():
                return read_matrix_market(candidate)
    if scale <= 0:
        raise ValueError("scale must be positive")
    return _generate_matrix(record, scale, seed)


def load_suite_graph(
    name: str,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    mtx_dir: Optional[str] = None,
) -> CSRGraph:
    """Load (or synthesise) the suite matrix ``name`` as a :class:`CSRGraph`."""
    return from_scipy(load_suite_matrix(name, scale=scale, seed=seed, mtx_dir=mtx_dir))

"""Structural graph operations: boolean squaring (distance-2 adjacency), induced
subgraphs, unions and degree statistics.

The boolean square ``G^2`` implements Lemma IV.1/IV.2 of the paper: with self-loops,
``(G^2)_{ij} != 0`` iff a path of length <= 2 joins ``i`` and ``j``, so an MIS-1 of
``G^2`` is an MIS-2 of ``G``. The reduction is used for verification and theory tests,
not by Algorithm 1 itself (which never forms ``G^2`` explicitly — that is the point of
Bell's and the paper's direct approach).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .build import from_scipy, to_scipy
from .csr import CSRGraph

__all__ = [
    "square",
    "distance_k_graph",
    "induced_subgraph",
    "union",
    "complement_mask",
    "degree_statistics",
    "DegreeStatistics",
]


def square(graph: CSRGraph, include_self: bool = False) -> CSRGraph:
    """Return the distance-2 closure graph of ``graph``.

    Vertices ``u != v`` are adjacent in the result iff there is a path of length 1 or
    2 between them in ``graph`` (i.e. the boolean product ``(A + I)^2`` with the
    diagonal dropped unless ``include_self``).
    """
    A = to_scipy(graph, dtype=np.int8)
    A_loops = A + sp.identity(graph.num_vertices, dtype=np.int8, format="csr")
    sq = A_loops @ A_loops
    return from_scipy(sq, drop_self_loops=not include_self)


def distance_k_graph(graph: CSRGraph, k: int) -> CSRGraph:
    """Graph whose edges join all vertex pairs at distance ``1..k`` in ``graph``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    A = to_scipy(graph, dtype=np.int8)
    closure = A + sp.identity(graph.num_vertices, dtype=np.int8, format="csr")
    power = closure.copy()
    for _ in range(k - 1):
        power = power @ closure
        # Keep entries boolean to bound memory/intermediate growth.
        power.data[:] = 1
    return from_scipy(power, drop_self_loops=True)


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices``.

    Returns ``(subgraph, mapping)`` where ``mapping[i]`` is the original id of the
    ``i``-th vertex in the subgraph. Vertex order follows the (deduplicated, sorted)
    input order to keep the operation deterministic.
    """
    verts = np.unique(np.asarray(vertices, dtype=np.int64))
    if verts.size and (verts.min() < 0 or verts.max() >= graph.num_vertices):
        raise ValueError("vertices outside the graph's vertex range")
    keep = np.zeros(graph.num_vertices, dtype=bool)
    keep[verts] = True
    new_id = -np.ones(graph.num_vertices, dtype=np.int64)
    new_id[verts] = np.arange(verts.size, dtype=np.int64)
    A = to_scipy(graph, dtype=np.int8)
    sub = A[verts][:, verts]
    return from_scipy(sub), verts


def union(a: CSRGraph, b: CSRGraph) -> CSRGraph:
    """Union of two graphs on the same vertex set."""
    if a.num_vertices != b.num_vertices:
        raise ValueError("graphs must have the same number of vertices")
    return from_scipy(to_scipy(a, dtype=np.int8) + to_scipy(b, dtype=np.int8))


def complement_mask(num_vertices: int, vertices: np.ndarray) -> np.ndarray:
    """Boolean mask that is True for vertices *not* in ``vertices``."""
    mask = np.ones(num_vertices, dtype=bool)
    verts = np.asarray(vertices, dtype=np.int64)
    if verts.size and (verts.min() < 0 or verts.max() >= num_vertices):
        raise ValueError("vertices outside range")
    mask[verts] = False
    return mask


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary statistics of a graph's degree distribution (as in the paper's Table II)."""

    num_vertices: int
    num_edge_slots: int
    average_degree: float
    max_degree: int
    min_degree: int

    @property
    def num_edges_millions(self) -> float:
        """Edge-slot count in millions (paper's |E| column counts stored nonzeros)."""
        return self.num_edge_slots / 1e6

    @property
    def num_vertices_millions(self) -> float:
        return self.num_vertices / 1e6


def degree_statistics(graph: CSRGraph) -> DegreeStatistics:
    """Compute the Table II-style summary statistics for ``graph``."""
    degs = graph.degrees()
    return DegreeStatistics(
        num_vertices=graph.num_vertices,
        num_edge_slots=graph.num_edge_slots,
        average_degree=float(graph.average_degree()),
        max_degree=int(degs.max()) if degs.size else 0,
        min_degree=int(degs.min()) if degs.size else 0,
    )

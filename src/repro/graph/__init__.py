"""Graph substrate: compressed-row-storage graphs, builders, generators, I/O and the
17-matrix evaluation suite.

Everything downstream (MIS, coloring, coarsening, the solvers) operates on
:class:`~repro.graph.csr.CSRGraph`, the Python analogue of the Kokkos Kernels CRS
graph the paper's implementation uses.
"""

from __future__ import annotations

from .csr import CSRGraph
from .build import (
    from_edges,
    from_scipy,
    from_dense,
    from_networkx,
    symmetrize,
    remove_self_loops,
    to_scipy,
)
from .generators import (
    path_graph,
    cycle_graph,
    star_graph,
    complete_graph,
    empty_graph,
    grid2d,
    laplace2d,
    laplace3d,
    laplace3d_matrix,
    elasticity3d,
    elasticity3d_matrix,
    anisotropic3d,
    random_regular,
    random_gnp,
    rmat,
    paper_example_graph,
)
from .ops import (
    square,
    distance_k_graph,
    induced_subgraph,
    degree_statistics,
    DegreeStatistics,
    union,
    complement_mask,
)
from .distance import bfs_distances, k_hop_neighborhood, all_pairs_within
from .io import read_matrix_market, write_matrix_market
from .suite import (
    MatrixRecord,
    SUITE,
    suite_names,
    load_suite_graph,
    load_suite_matrix,
    paper_statistics,
)
from .properties import connected_components, is_connected, degree_histogram

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_scipy",
    "from_dense",
    "from_networkx",
    "symmetrize",
    "remove_self_loops",
    "to_scipy",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "empty_graph",
    "grid2d",
    "laplace2d",
    "laplace3d",
    "laplace3d_matrix",
    "elasticity3d",
    "elasticity3d_matrix",
    "anisotropic3d",
    "random_regular",
    "random_gnp",
    "rmat",
    "paper_example_graph",
    "square",
    "distance_k_graph",
    "induced_subgraph",
    "degree_statistics",
    "DegreeStatistics",
    "union",
    "complement_mask",
    "bfs_distances",
    "k_hop_neighborhood",
    "all_pairs_within",
    "read_matrix_market",
    "write_matrix_market",
    "MatrixRecord",
    "SUITE",
    "suite_names",
    "load_suite_graph",
    "load_suite_matrix",
    "paper_statistics",
    "connected_components",
    "is_connected",
    "degree_histogram",
]

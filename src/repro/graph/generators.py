"""Graph and matrix generators.

These provide the structured problems the paper evaluates on (Galeri-style Laplace3D
with a 7-point stencil and Elasticity3D with a 27-point stencil, 3 degrees of freedom
per grid point), small canonical graphs used throughout the test-suite, and the random
generators used to synthesise stand-ins for the SuiteSparse matrices (see
:mod:`repro.graph.suite`).

Matrix generators return SciPy CSR matrices (for the solver experiments); the graph
variants return :class:`~repro.graph.csr.CSRGraph` structure only.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .build import from_edges, from_scipy
from .csr import CSRGraph

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "empty_graph",
    "grid2d",
    "laplace2d",
    "laplace3d",
    "laplace3d_matrix",
    "elasticity3d",
    "elasticity3d_matrix",
    "anisotropic3d",
    "random_regular",
    "random_gnp",
    "rmat",
    "paper_example_graph",
]


# --------------------------------------------------------------------------- canonical
def empty_graph(n: int) -> CSRGraph:
    """Graph with ``n`` vertices and no edges."""
    return CSRGraph.empty(n)


def path_graph(n: int) -> CSRGraph:
    """Path ``0 - 1 - ... - (n-1)``."""
    if n < 0:
        raise ValueError("n must be >= 0")
    return from_edges(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> CSRGraph:
    """Cycle on ``n`` vertices (``n >= 3``)."""
    if n < 3:
        raise ValueError("cycle_graph requires n >= 3")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return from_edges(n, edges)


def star_graph(n_leaves: int) -> CSRGraph:
    """Star with a hub (vertex 0) and ``n_leaves`` leaves."""
    if n_leaves < 0:
        raise ValueError("n_leaves must be >= 0")
    return from_edges(n_leaves + 1, [(0, i) for i in range(1, n_leaves + 1)])


def complete_graph(n: int) -> CSRGraph:
    """Complete graph on ``n`` vertices."""
    if n < 0:
        raise ValueError("n must be >= 0")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return from_edges(n, edges)


def paper_example_graph() -> CSRGraph:
    """The 6-vertex graph of the paper's Fig. 1 worked example.

    Vertices are numbered 1..6 in the figure; here they are 0..5. The structure is a
    path 0-1-2-3 with two extra leaves 4 and 5 attached to vertex 3, which reproduces
    the figure's minimum-tuple propagation pattern (vertices {0, 3} = paper {1, 4}
    form the MIS-2).
    """
    return from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (3, 5)])


# --------------------------------------------------------------------------- stencils
def _grid_index_2d(nx: int, ny: int) -> np.ndarray:
    return np.arange(nx * ny).reshape(nx, ny)


def grid2d(nx: int, ny: int, diagonal: bool = False) -> CSRGraph:
    """2-D structured grid graph (5-point stencil, or 9-point when ``diagonal``)."""
    if nx < 1 or ny < 1:
        raise ValueError("grid dimensions must be >= 1")
    idx = _grid_index_2d(nx, ny)
    edges = []
    edges.append(np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1))
    edges.append(np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1))
    if diagonal:
        edges.append(np.stack([idx[:-1, :-1].ravel(), idx[1:, 1:].ravel()], axis=1))
        edges.append(np.stack([idx[1:, :-1].ravel(), idx[:-1, 1:].ravel()], axis=1))
    all_edges = np.concatenate(edges, axis=0)
    return from_edges(nx * ny, all_edges)


def laplace2d(nx: int, ny: int) -> sp.csr_matrix:
    """2-D 5-point Laplacian matrix on an ``nx x ny`` grid (Dirichlet boundaries)."""
    ex = np.ones(nx)
    ey = np.ones(ny)
    tx = sp.diags([-ex[:-1], 2 * ex, -ex[:-1]], [-1, 0, 1])
    ty = sp.diags([-ey[:-1], 2 * ey, -ey[:-1]], [-1, 0, 1])
    A = sp.kron(sp.identity(ny), tx) + sp.kron(ty, sp.identity(nx))
    return sp.csr_matrix(A)


def laplace3d_matrix(nx: int, ny: int, nz: int) -> sp.csr_matrix:
    """3-D 7-point Laplacian on an ``nx x ny x nz`` grid (Galeri "Laplace3D")."""
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be >= 1")

    def lap1d(n: int) -> sp.csr_matrix:
        e = np.ones(n)
        return sp.diags([-e[:-1], 2 * e, -e[:-1]], [-1, 0, 1], format="csr")

    Ix, Iy, Iz = sp.identity(nx), sp.identity(ny), sp.identity(nz)
    A = (
        sp.kron(Iz, sp.kron(Iy, lap1d(nx)))
        + sp.kron(Iz, sp.kron(lap1d(ny), Ix))
        + sp.kron(lap1d(nz), sp.kron(Iy, Ix))
    )
    return sp.csr_matrix(A)


def laplace3d(nx: int, ny: int, nz: int) -> CSRGraph:
    """Graph of the 3-D 7-point Laplacian (each interior vertex has 6 neighbors)."""
    return from_scipy(laplace3d_matrix(nx, ny, nz))


def anisotropic3d(
    nx: int, ny: int, nz: int, epsilon_y: float = 1.0, epsilon_z: float = 1.0
) -> sp.csr_matrix:
    """3-D 7-point Laplacian with anisotropic coefficients in y and z.

    Used to synthesise stand-ins for thin-shell / layered SuiteSparse problems where
    coupling strength varies by direction.
    """

    def lap1d(n: int) -> sp.csr_matrix:
        e = np.ones(n)
        return sp.diags([-e[:-1], 2 * e, -e[:-1]], [-1, 0, 1], format="csr")

    Ix, Iy, Iz = sp.identity(nx), sp.identity(ny), sp.identity(nz)
    A = (
        sp.kron(Iz, sp.kron(Iy, lap1d(nx)))
        + epsilon_y * sp.kron(Iz, sp.kron(lap1d(ny), Ix))
        + epsilon_z * sp.kron(lap1d(nz), sp.kron(Iy, Ix))
    )
    return sp.csr_matrix(A)


def _structured_grid_graph_27pt(nx: int, ny: int, nz: int) -> sp.csr_matrix:
    """0/1 adjacency of a 27-point-stencil grid (all neighbours within a unit cube)."""
    idx = np.arange(nx * ny * nz).reshape(nx, ny, nz)
    rows = []
    cols = []
    # Enumerate the 13 forward offsets of the 27-point stencil (the other 13 come from
    # symmetrization; the center is the vertex itself).
    offsets = [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
        if (dx, dy, dz) > (0, 0, 0)
    ]
    for dx, dy, dz in offsets:
        sx = slice(max(0, -dx), nx - max(0, dx))
        sy = slice(max(0, -dy), ny - max(0, dy))
        sz = slice(max(0, -dz), nz - max(0, dz))
        tx = slice(max(0, dx), nx - max(0, -dx))
        ty = slice(max(0, dy), ny - max(0, -dy))
        tz = slice(max(0, dz), nz - max(0, -dz))
        rows.append(idx[sx, sy, sz].ravel())
        cols.append(idx[tx, ty, tz].ravel())
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    n = nx * ny * nz
    A = sp.coo_matrix((np.ones(r.size), (r, c)), shape=(n, n)).tocsr()
    return sp.csr_matrix(A + A.T)


def elasticity3d_matrix(
    nx: int, ny: int, nz: int, dofs_per_node: int = 3, seed: int = 0
) -> sp.csr_matrix:
    """Synthetic 3-D elasticity-like operator (Galeri "Elasticity3D").

    A 27-point stencil grid is expanded to ``dofs_per_node`` degrees of freedom per
    grid point with a small dense coupling block per stencil entry, and made
    symmetric positive definite by diagonal dominance. This matches the structure the
    paper generates (60^3 grid, 27-point stencil, 3 dof/node -> average degree ~81)
    without requiring Trilinos.
    """
    adj = _structured_grid_graph_27pt(nx, ny, nz)
    n_nodes = adj.shape[0]
    rng = np.random.default_rng(seed)
    coo = adj.tocoo()
    b = dofs_per_node
    # Off-diagonal blocks: small negative couplings, symmetric by construction below.
    block = -np.abs(rng.normal(0.5, 0.1, size=(b, b)))
    block = 0.5 * (block + block.T)
    rows = []
    cols = []
    vals = []
    for bi in range(b):
        for bj in range(b):
            rows.append(coo.row * b + bi)
            cols.append(coo.col * b + bj)
            vals.append(np.full(coo.nnz, block[bi, bj]))
    rows_a = np.concatenate(rows)
    cols_a = np.concatenate(cols)
    vals_a = np.concatenate(vals)
    n = n_nodes * b
    A = sp.coo_matrix((vals_a, (rows_a, cols_a)), shape=(n, n)).tocsr()
    A = sp.csr_matrix(0.5 * (A + A.T))
    # Make strictly diagonally dominant => SPD.
    rowsum = np.abs(A).sum(axis=1).A1
    A = A + sp.diags(rowsum + 1.0)
    return sp.csr_matrix(A)


def elasticity3d(nx: int, ny: int, nz: int, dofs_per_node: int = 3) -> CSRGraph:
    """Graph of the Elasticity3D operator (27-point stencil, ``dofs_per_node`` dofs)."""
    return from_scipy(elasticity3d_matrix(nx, ny, nz, dofs_per_node=dofs_per_node))


# --------------------------------------------------------------------------- random
def random_regular(n: int, degree: int, seed: int = 0) -> CSRGraph:
    """Random (approximately) ``degree``-regular graph on ``n`` vertices.

    Uses a deterministic configuration-model style pairing with rejection of
    self-loops and duplicates; the realised degree can be slightly below the target
    for a few vertices, which is fine for degree-profile matching in the suite.
    """
    if degree < 0 or degree >= n:
        raise ValueError("degree must satisfy 0 <= degree < n")
    rng = np.random.default_rng(seed)
    stubs = np.repeat(np.arange(n, dtype=np.int64), degree)
    rng.shuffle(stubs)
    if stubs.size % 2 == 1:
        stubs = stubs[:-1]
    src = stubs[0::2]
    dst = stubs[1::2]
    keep = src != dst
    edges = np.stack([src[keep], dst[keep]], axis=1)
    return from_edges(n, edges)


def random_gnp(n: int, p: float, seed: int = 0) -> CSRGraph:
    """Erdős–Rényi ``G(n, p)`` graph (dense sampling; intended for small ``n``)."""
    if not (0.0 <= p <= 1.0):
        raise ValueError("p must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    mask = np.triu(rng.random((n, n)) < p, k=1)
    src, dst = np.nonzero(mask)
    return from_edges(n, np.stack([src, dst], axis=1))


def rmat(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> CSRGraph:
    """Recursive-matrix (R-MAT / Graph500-style) power-law graph generator.

    Produces ``2**scale`` vertices and approximately ``edge_factor * 2**scale``
    undirected edges with a skewed degree distribution. Used for stand-ins of the
    irregular SuiteSparse matrices with large maximum degree.
    """
    n = 1 << scale
    m = edge_factor * n
    d = 1.0 - (a + b + c)
    if d < 0:
        raise ValueError("a + b + c must be <= 1")
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random((m, 2))
        go_right_src = r[:, 0] < (b + d) / 1.0
        # Standard RMAT quadrant selection: choose quadrant with probs a, b, c, d.
        u = rng.random(m)
        quad_b = (u >= a) & (u < a + b)
        quad_c = (u >= a + b) & (u < a + b + c)
        quad_d = u >= a + b + c
        bit = 1 << level
        src += bit * (quad_c | quad_d)
        dst += bit * (quad_b | quad_d)
    keep = src != dst
    return from_edges(n, np.stack([src[keep], dst[keep]], axis=1))

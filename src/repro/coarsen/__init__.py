"""Graph coarsening / aggregation.

This package contains the paper's two MIS-2-based aggregation algorithms and the
baselines they are compared against in the MueLu experiment (Table V), plus the
machinery that turns an aggregation into multigrid transfer operators and coarse
graphs:

* :func:`mis2_basic_aggregation` — Algorithm 2 (Bell's simple coarsening, the
  ViennaCL scheme; "MIS2 Basic" in Table V).
* :func:`mis2_aggregation` — Algorithm 3, the paper's contribution ("MIS2 Agg").
* :func:`d2c_aggregation` — distance-2-coloring seeded aggregation ("Serial D2C" /
  "NB D2C" baselines).
* :func:`serial_aggregation` — MueLu's sequential host aggregation ("Serial Agg").
* :func:`tentative_prolongation` / :func:`smoothed_prolongation` /
  :func:`galerkin_operator` — smoothed-aggregation transfer operators.
* :func:`coarse_graph` / :func:`coarsen_recursive` — structural coarsening used by the
  cluster Gauss-Seidel preconditioner and multilevel partitioning workflows.
"""

from __future__ import annotations

from .aggregation import Aggregation, join_by_max_coupling
from .basic import mis2_basic_aggregation
from .mis2_agg import mis2_aggregation
from .d2c_agg import d2c_aggregation
from .serial_agg import serial_aggregation
from .quality import AggregateQuality, aggregate_quality
from .prolongation import (
    tentative_prolongation,
    smoothed_prolongation,
    estimate_spectral_radius,
)
from .coarse import galerkin_operator, coarse_graph
from .multilevel import CoarseningLevel, MultilevelHierarchy, coarsen_recursive

__all__ = [
    "Aggregation",
    "join_by_max_coupling",
    "mis2_basic_aggregation",
    "mis2_aggregation",
    "d2c_aggregation",
    "serial_aggregation",
    "AggregateQuality",
    "aggregate_quality",
    "tentative_prolongation",
    "smoothed_prolongation",
    "estimate_spectral_radius",
    "galerkin_operator",
    "coarse_graph",
    "CoarseningLevel",
    "MultilevelHierarchy",
    "coarsen_recursive",
]

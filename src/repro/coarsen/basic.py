"""Algorithm 2: basic MIS-2 coarsening (Bell/Dalton/Olson, also used by ViennaCL).

Every MIS-2 vertex becomes the root of an aggregate containing the root and its
direct neighbours; any leftover vertex (necessarily within distance 2 of a root) joins
an adjacent aggregate. The paper notes — and Table V reproduces — that this simple
scheme tends to produce irregular aggregates on structured problems and therefore more
solver iterations than Algorithm 3.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..mis.kk import kk_mis2
from ..mis.result import MISResult
from ..parallel.primitives import expand_rows
from .aggregation import Aggregation, join_by_max_coupling

__all__ = ["mis2_basic_aggregation"]


def mis2_basic_aggregation(
    graph: CSRGraph,
    mis: Optional[MISResult] = None,
    seed: int = 0,
) -> Aggregation:
    """Coarsen ``graph`` with Algorithm 2.

    Parameters
    ----------
    graph:
        Undirected input graph.
    mis:
        Optionally, a precomputed MIS-2 of ``graph`` (any valid MIS-2 works); when
        omitted, Algorithm 1 computes one.
    seed:
        Seed forwarded to the MIS-2 computation.

    Returns
    -------
    :class:`~repro.coarsen.aggregation.Aggregation`
        A complete aggregation with one aggregate per MIS-2 root.
    """
    n = graph.num_vertices
    if mis is None:
        mis = kk_mis2(graph, seed=seed)
    roots = np.asarray(mis.in_set, dtype=np.int64)
    labels = -np.ones(n, dtype=np.int64)
    if n == 0:
        return Aggregation(labels, 0, roots, algorithm="mis2_basic")

    # Roots and their direct neighbours form the initial aggregates. Because roots are
    # pairwise at distance > 2, a vertex can neighbour at most one root, so the
    # parallel scatter below is conflict-free (and order-independent).
    labels[roots] = np.arange(roots.size, dtype=np.int64)
    slots, seg = expand_rows(graph.rowmap, roots)
    labels[graph.entries[slots].astype(np.int64)] = np.repeat(
        np.arange(roots.size, dtype=np.int64), np.diff(seg)
    )
    phase1 = int(np.count_nonzero(labels >= 0))

    # Leftovers join an adjacent aggregate. The paper's wording is "arbitrarily"; this
    # implementation uses the deterministic max-coupling rule so results are
    # reproducible (which only improves the baseline's aggregate quality slightly).
    labels = join_by_max_coupling(graph, labels, roots.size)
    agg = Aggregation(
        labels=labels,
        num_aggregates=int(roots.size),
        roots=roots,
        algorithm="mis2_basic",
        deterministic=True,
        phase_vertex_counts={"phase1": phase1, "cleanup": n - phase1},
    )
    return agg

"""Distance-2-coloring based aggregation (the MueLu "Serial D2C" / "NB D2C" baselines).

MueLu's coloring-based aggregation computes a distance-2 greedy coloring of the graph;
the vertices of each color class form a distance-2 independent set, so they can be
used as aggregate roots in the same way MIS-2 vertices are. Colors are processed in
order; a root only forms an aggregate when it still has enough unaggregated
neighbours, and leftover vertices are finally joined to adjacent aggregates.

In MueLu the way leftovers are joined makes the scheme non-deterministic (Table V
marks both D2C variants accordingly); this reproduction joins leftovers with the same
deterministic max-coupling rule as Algorithm 3, which only affects tie-breaking. The
"Serial" and "NB" (net-based, on-device) variants of the paper differ in where the
coloring is computed, not in the aggregates produced, so both map to this function;
the benchmark driver models their different setup costs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..coloring.distance2 import distance2_color
from ..coloring.greedy import ColoringResult
from ..graph.csr import CSRGraph
from ..parallel.backends import ExecutionBackend, resolve_backend
from .aggregation import Aggregation, join_by_max_coupling

__all__ = ["d2c_aggregation"]


def d2c_aggregation(
    graph: CSRGraph,
    coloring: Optional[ColoringResult] = None,
    min_root_neighbors: int = 2,
    backend: "Optional[str | ExecutionBackend]" = None,
) -> Aggregation:
    """Coarsen ``graph`` using a distance-2 coloring to seed aggregate roots.

    Parameters
    ----------
    graph:
        Undirected input graph.
    coloring:
        Optional precomputed distance-2 coloring; computed on demand otherwise.
    min_root_neighbors:
        Minimum number of unaggregated neighbours a root needs to form an aggregate
        (matching Algorithm 3's phase-2 rule).
    backend:
        Execution backend (name or instance) used for the aggregation's own
        primitives and the on-demand coloring; ``None`` uses the default.
    """
    B = resolve_backend(backend)
    n = graph.num_vertices
    labels = -np.ones(n, dtype=np.int64)
    if n == 0:
        return Aggregation(labels, 0, algorithm="d2c_agg", backend=B.name)
    if coloring is None:
        coloring = distance2_color(graph, backend=B)

    next_aggregate = 0
    roots_list = []
    unagg_mask = np.ones(n, dtype=bool)
    for color in range(coloring.num_colors):
        members = np.nonzero((coloring.colors == color) & unagg_mask)[0]
        if members.size == 0:
            continue
        slots, seg = B.expand_rows(graph.rowmap, members)
        nbrs = graph.entries[slots].astype(np.int64)
        free_counts = B.segmented_sum(unagg_mask[nbrs].astype(np.int64), seg)
        qualifies = free_counts >= min_root_neighbors
        roots = B.stream_compact(members, qualifies)
        if roots.size == 0:
            continue
        # Same-color vertices are pairwise at distance > 2, so no two roots of this
        # color share an unaggregated neighbour: the scatter is conflict-free.
        new_ids = next_aggregate + np.arange(roots.size, dtype=np.int64)
        labels[roots] = new_ids
        unagg_mask[roots] = False
        rslots, rseg = B.expand_rows(graph.rowmap, roots)
        rnbrs = graph.entries[rslots].astype(np.int64)
        rids = np.repeat(new_ids, np.diff(rseg))
        free = unagg_mask[rnbrs]
        labels[rnbrs[free]] = rids[free]
        unagg_mask[rnbrs[free]] = False
        next_aggregate += int(roots.size)
        roots_list.append(roots)

    phase1 = int(np.count_nonzero(labels >= 0))

    # Unlike the MIS-2 phase-1 sweep, the >= min_root_neighbors filter does not
    # guarantee that every leftover vertex touches an aggregate, so leftovers with no
    # aggregated neighbour seed small aggregates of their own (this is the part MueLu
    # implements non-deterministically; processing vertices in id order keeps it
    # deterministic here).
    rowmap, entries = graph.rowmap, graph.entries
    for v in range(n):
        if labels[v] >= 0:
            continue
        nbrs = entries[rowmap[v]: rowmap[v + 1]].astype(np.int64)
        if nbrs.size and np.any(labels[nbrs] >= 0):
            continue  # handled by the max-coupling cleanup below
        labels[v] = next_aggregate
        free = nbrs[labels[nbrs] < 0]
        labels[free] = next_aggregate
        next_aggregate += 1

    labels = join_by_max_coupling(graph, labels, next_aggregate)
    all_roots = np.concatenate(roots_list) if roots_list else np.zeros(0, dtype=np.int64)
    return Aggregation(
        labels=labels,
        num_aggregates=next_aggregate,
        roots=all_roots,
        algorithm="d2c_agg",
        deterministic=True,
        phase_vertex_counts={"phase1": phase1, "cleanup": n - phase1},
        backend=B.name,
    )

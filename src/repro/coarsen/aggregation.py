"""Aggregation result container and shared helpers.

An *aggregation* (the paper's "graph coarsening") partitions the vertices of a graph
into disjoint aggregates; every aggregate becomes one vertex of the coarse graph. All
aggregation algorithms in this package return an :class:`Aggregation`, which also
carries the root vertices and phase statistics used by the quality analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["Aggregation", "join_by_max_coupling"]


@dataclass
class Aggregation:
    """A partition of a graph's vertices into aggregates.

    Attributes
    ----------
    labels:
        Per-vertex aggregate id (dense, 0-based). ``-1`` marks an unaggregated vertex
        and only appears in intermediate phases — completed algorithms always return
        fully-aggregated labelings.
    num_aggregates:
        Number of distinct aggregates.
    roots:
        Vertex ids used as aggregate seeds (one per aggregate created from a root;
        cleanup-phase singleton aggregates may have no root).
    algorithm:
        Name of the algorithm that produced the aggregation.
    deterministic:
        Whether the algorithm is deterministic (all schemes in this reproduction are;
        the flag records what the *paper* says about the corresponding MueLu scheme).
    phase_vertex_counts:
        Number of vertices aggregated by each phase, for quality reporting.
    backend:
        Name of the execution backend that ran the aggregation kernels.
    """

    labels: np.ndarray
    num_aggregates: int
    roots: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    algorithm: str = ""
    deterministic: bool = True
    phase_vertex_counts: Dict[str, int] = field(default_factory=dict)
    backend: str = "numpy"

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.roots = np.asarray(self.roots, dtype=np.int64)

    # ------------------------------------------------------------------ properties
    @property
    def num_vertices(self) -> int:
        return int(self.labels.size)

    def is_complete(self) -> bool:
        """True when every vertex belongs to an aggregate."""
        return bool(np.all(self.labels >= 0)) if self.labels.size else True

    def sizes(self) -> np.ndarray:
        """Aggregate sizes indexed by aggregate id."""
        if self.num_aggregates == 0:
            return np.zeros(0, dtype=np.int64)
        labeled = self.labels[self.labels >= 0]
        return np.bincount(labeled, minlength=self.num_aggregates).astype(np.int64)

    def members(self, aggregate: int) -> np.ndarray:
        """Vertex ids belonging to ``aggregate``."""
        if not (0 <= aggregate < self.num_aggregates):
            raise IndexError(f"aggregate {aggregate} out of range")
        return np.nonzero(self.labels == aggregate)[0].astype(np.int64)

    def aggregate_lists(self) -> List[np.ndarray]:
        """All aggregates as a list of member arrays (ordered by aggregate id)."""
        order = np.argsort(self.labels, kind="stable")
        sorted_labels = self.labels[order]
        valid = sorted_labels >= 0
        order = order[valid]
        sorted_labels = sorted_labels[valid]
        boundaries = np.searchsorted(sorted_labels, np.arange(self.num_aggregates + 1, dtype=np.int64))
        return [order[boundaries[a]: boundaries[a + 1]] for a in range(self.num_aggregates)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Aggregation(algorithm={self.algorithm!r}, vertices={self.num_vertices}, "
            f"aggregates={self.num_aggregates})"
        )


def join_by_max_coupling(
    graph: CSRGraph,
    labels: np.ndarray,
    num_aggregates: int,
) -> np.ndarray:
    """Phase-3 cleanup of Algorithm 3: join every unaggregated vertex to the adjacent
    aggregate with the largest coupling.

    Coupling of vertex ``v`` to aggregate ``a`` is the number of neighbours of ``v``
    whose *tentative* label is ``a`` (the labels passed in, which stay constant during
    the cleanup — that is what keeps the phase deterministic). Ties are broken first by
    the smaller tentative aggregate size, then by the smaller aggregate id.

    Returns a new label array; raises if some unaggregated vertex has no aggregated
    neighbour (which cannot happen after a phase-1 MIS-2 sweep).
    """
    labels = np.asarray(labels, dtype=np.int64)
    n = graph.num_vertices
    unagg = np.nonzero(labels < 0)[0]
    new_labels = labels.copy()
    if unagg.size == 0:
        return new_labels
    tentative_sizes = np.bincount(labels[labels >= 0], minlength=max(num_aggregates, 1))

    rowmap, entries = graph.rowmap, graph.entries
    # Gather the tentative labels of all neighbours of all unaggregated vertices.
    lens = rowmap[unagg + 1] - rowmap[unagg]
    owner = np.repeat(np.arange(unagg.size, dtype=np.int64), lens)
    starts = rowmap[unagg]
    within = np.arange(int(lens.sum()), dtype=np.int64) - np.repeat(np.cumsum(lens) - lens, lens)
    slots = starts[owner] + within
    nbr_labels = labels[entries[slots].astype(np.int64)]
    keep = nbr_labels >= 0
    owner = owner[keep]
    nbr_labels = nbr_labels[keep]
    if np.unique(owner).size != unagg.size:
        missing = np.setdiff1d(np.arange(unagg.size, dtype=np.int64), np.unique(owner))
        raise ValueError(
            f"{missing.size} unaggregated vertices have no aggregated neighbour; "
            "phase-1 aggregation did not cover the graph"
        )
    # Count couplings per (vertex, aggregate) pair.
    pair_keys = owner.astype(np.int64) * np.int64(num_aggregates) + nbr_labels
    uniq_keys, counts = np.unique(pair_keys, return_counts=True)
    pair_owner = uniq_keys // num_aggregates
    pair_label = uniq_keys % num_aggregates
    pair_size = tentative_sizes[pair_label]
    # Pick, per vertex, the pair with (max coupling, min aggregate size, min label).
    order = np.lexsort((pair_label, pair_size, -counts, pair_owner))
    sorted_owner = pair_owner[order]
    first_of_owner = np.unique(sorted_owner, return_index=True)[1]
    chosen = order[first_of_owner]
    new_labels[unagg[pair_owner[chosen]]] = pair_label[chosen]
    return new_labels

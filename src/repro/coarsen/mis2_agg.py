"""Algorithm 3: the paper's MIS-2 based aggregation (Kokkos Kernels / "MIS2 Agg").

Three phases, all deterministic:

1. **Initial aggregates** — an MIS-2 of the graph seeds one aggregate per root,
   containing the root and its direct neighbours (exactly Algorithm 2's first step).
2. **Secondary aggregates** — a second MIS-2 is computed on the subgraph induced by
   the still-unaggregated vertices; each of its vertices becomes a root only if it has
   at least two unaggregated neighbours (smaller aggregates would increase fill-in in
   the multigrid smoother), in which case it aggregates itself with those neighbours.
3. **Cleanup** — every remaining vertex joins the adjacent aggregate with the highest
   coupling (number of neighbours in the aggregate), ties broken by smaller tentative
   aggregate size; couplings and sizes are evaluated against the *tentative* labels
   from the end of phase 2, which keeps the phase order-independent and deterministic.

This is the parallel, portable re-formulation of ML's sequential MIS-2 aggregation
(Tuminaro & Tong); Table V shows it matches the serial scheme's quality while running
entirely on the device.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.ops import induced_subgraph
from ..mis.kk import kk_mis2
from ..mis.result import MISResult
from ..parallel.backends import ExecutionBackend, resolve_backend
from .aggregation import Aggregation, join_by_max_coupling

__all__ = ["mis2_aggregation"]


def mis2_aggregation(
    graph: CSRGraph,
    mis: Optional[MISResult] = None,
    min_secondary_neighbors: int = 2,
    seed: int = 0,
    backend: "Optional[str | ExecutionBackend]" = None,
    partitions=None,
    resident: bool = True,
    changed_deltas: bool = True,
    overlap: bool = True,
) -> Aggregation:
    """Coarsen ``graph`` with Algorithm 3 (the paper's "MIS2 Agg" scheme).

    Parameters
    ----------
    graph:
        Undirected input graph.
    mis:
        Optional precomputed MIS-2 used for phase 1.
    min_secondary_neighbors:
        Minimum number of unaggregated neighbours a phase-2 root needs to form an
        aggregate (the paper uses 2).
    seed:
        Seed forwarded to the MIS-2 computations.
    backend:
        Execution backend (name or instance) used for the aggregation's own
        primitives and forwarded to the MIS-2 computations; ``None`` uses the
        default.
    partitions:
        When not ``None``, run both MIS-2 computations partition-parallel
        (part count, label array or layout); the phase-2 sub-MIS inherits the
        labels restricted to the unaggregated subgraph. Because the
        partitioned MIS driver is bit-identical to the unpartitioned kernel,
        the aggregation is too.
    resident:
        Only meaningful with ``partitions``: forwarded to the partitioned
        MIS-2 computations (rank-resident execution by default; the
        re-ship-everything baseline with ``False``).
    changed_deltas:
        Only meaningful with ``partitions``: forwarded to the partitioned
        MIS-2 computations (changed-only halo deltas by default; the
        full-halo wire format with ``False``).
    overlap:
        Only meaningful with ``partitions``: forwarded to the partitioned
        MIS-2 computations (overlapped boundary/interior schedule by
        default; the barrier schedule with ``False``).
    """
    B = resolve_backend(backend)
    n = graph.num_vertices
    layout = None
    if partitions is not None:
        from ..parallel.partitioned import build_partition_layout

        layout = build_partition_layout(graph, partitions)
    if mis is None:
        mis = kk_mis2(
            graph,
            seed=seed,
            backend=B,
            partitions=layout,
            resident=resident,
            changed_deltas=changed_deltas,
            overlap=overlap,
        )
    roots = np.asarray(mis.in_set, dtype=np.int64)
    labels = -np.ones(n, dtype=np.int64)
    if n == 0:
        return Aggregation(labels, 0, roots, algorithm="mis2_agg", backend=B.name)

    # ------------------------------------------------------------------ phase 1
    labels[roots] = np.arange(roots.size, dtype=np.int64)
    slots1, seg1 = B.expand_rows(graph.rowmap, roots)
    labels[graph.entries[slots1].astype(np.int64)] = np.repeat(
        np.arange(roots.size, dtype=np.int64), np.diff(seg1)
    )
    next_aggregate = int(roots.size)
    phase1 = int(np.count_nonzero(labels >= 0))

    # ------------------------------------------------------------------ phase 2
    unagg = np.nonzero(labels < 0)[0]
    phase2 = 0
    secondary_roots = np.zeros(0, dtype=np.int64)
    if unagg.size:
        sub, mapping = induced_subgraph(graph, unagg)
        sub_mis = kk_mis2(
            sub,
            seed=seed,
            backend=B,
            partitions=None if layout is None else layout.labels[mapping],
            resident=resident,
            changed_deltas=changed_deltas,
            overlap=overlap,
        )
        candidates = mapping[sub_mis.in_set]
        # Count each candidate root's unaggregated neighbours against the phase-1
        # labels. Phase-2 roots are pairwise at distance > 2 in the induced subgraph,
        # so no two of them share an unaggregated neighbour and the parallel scatter
        # below is conflict-free.
        unagg_mask = labels < 0
        cslots, cseg = B.expand_rows(graph.rowmap, candidates)
        cnbrs = graph.entries[cslots].astype(np.int64)
        free_counts = B.segmented_sum(unagg_mask[cnbrs].astype(np.int64), cseg)
        qualifies = free_counts >= min_secondary_neighbors
        secondary_roots = B.stream_compact(candidates, qualifies)
        if secondary_roots.size:
            new_ids = next_aggregate + np.arange(secondary_roots.size, dtype=np.int64)
            labels[secondary_roots] = new_ids
            qslots, qseg = B.expand_rows(graph.rowmap, secondary_roots)
            qnbrs = graph.entries[qslots].astype(np.int64)
            nbr_new_ids = np.repeat(new_ids, np.diff(qseg))
            free = unagg_mask[qnbrs]
            labels[qnbrs[free]] = nbr_new_ids[free]
            next_aggregate += int(secondary_roots.size)
        phase2 = int(np.count_nonzero(labels >= 0)) - phase1

    # ------------------------------------------------------------------ phase 3
    labels = join_by_max_coupling(graph, labels, max(next_aggregate, 1))
    cleanup = n - phase1 - phase2

    return Aggregation(
        labels=labels,
        num_aggregates=next_aggregate,
        roots=np.concatenate([roots, secondary_roots]) if secondary_roots.size else roots,
        algorithm="mis2_agg",
        deterministic=True,
        phase_vertex_counts={"phase1": phase1, "phase2": phase2, "cleanup": cleanup},
        backend=B.name,
    )

"""Coarse-operator and coarse-graph construction.

* :func:`galerkin_operator` forms the multigrid coarse matrix ``A_c = P^T A P``.
* :func:`coarse_graph` builds the graph whose vertices are aggregates and whose edges
  join aggregates containing adjacent fine vertices — the graph the cluster multicolor
  Gauss-Seidel preconditioner colors (Algorithm 4, line 5) and the graph recursive
  multilevel coarsening descends to.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from ..graph.build import from_scipy, to_scipy
from ..graph.csr import CSRGraph
from .aggregation import Aggregation

__all__ = ["galerkin_operator", "coarse_graph"]


def galerkin_operator(A: sp.spmatrix, P: sp.spmatrix) -> sp.csr_matrix:
    """Galerkin triple product ``A_c = P^T A P``."""
    A = sp.csr_matrix(A)
    P = sp.csr_matrix(P)
    if A.shape[0] != A.shape[1]:
        raise ValueError("A must be square")
    if P.shape[0] != A.shape[0]:
        raise ValueError("P's row count must match A's dimension")
    coarse = P.T @ A @ P
    return sp.csr_matrix(coarse)


def coarse_graph(graph: CSRGraph, aggregation: Aggregation) -> CSRGraph:
    """Graph of aggregate adjacency induced by ``aggregation`` on ``graph``.

    Aggregates ``a != b`` are adjacent iff some fine edge joins a vertex of ``a`` to a
    vertex of ``b``.
    """
    if not aggregation.is_complete():
        raise ValueError("aggregation must be complete")
    if aggregation.num_vertices != graph.num_vertices:
        raise ValueError("aggregation and graph vertex counts differ")
    n_coarse = aggregation.num_aggregates
    if n_coarse == 0:
        return CSRGraph.empty(0)
    # Indicator matrix Q (n_fine x n_coarse); the pattern of Q^T A Q is the coarse
    # adjacency (diagonal dropped by from_scipy).
    rows = np.arange(graph.num_vertices, dtype=np.int64)
    Q = sp.csr_matrix(
        (np.ones(graph.num_vertices, dtype=np.int8), (rows, aggregation.labels)),
        shape=(graph.num_vertices, n_coarse),
    )
    A = to_scipy(graph, dtype=np.int8)
    coarse = Q.T @ A @ Q
    return from_scipy(coarse)

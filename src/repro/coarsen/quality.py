"""Aggregate-quality metrics.

The paper evaluates aggregation quality indirectly (through multigrid iteration
counts, Table V); these metrics expose the underlying structural differences — number
of aggregates, size distribution, and coarsening rate — which the ablation benches and
tests use to compare Algorithm 2, Algorithm 3 and the baselines directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..graph.csr import CSRGraph
from .aggregation import Aggregation

__all__ = ["AggregateQuality", "aggregate_quality"]


@dataclass(frozen=True)
class AggregateQuality:
    """Summary statistics of an aggregation."""

    num_vertices: int
    num_aggregates: int
    mean_size: float
    min_size: int
    max_size: int
    std_size: float
    #: Fraction of vertices per aggregate relative to the fine graph (1/coarsening rate).
    coarsening_factor: float
    #: Number of singleton aggregates (undesirable for smoothed aggregation).
    singletons: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_vertices": self.num_vertices,
            "num_aggregates": self.num_aggregates,
            "mean_size": self.mean_size,
            "min_size": self.min_size,
            "max_size": self.max_size,
            "std_size": self.std_size,
            "coarsening_factor": self.coarsening_factor,
            "singletons": self.singletons,
        }


def aggregate_quality(aggregation: Aggregation) -> AggregateQuality:
    """Compute size-distribution statistics for a completed aggregation."""
    if not aggregation.is_complete():
        raise ValueError("aggregation has unaggregated vertices")
    sizes = aggregation.sizes()
    n = aggregation.num_vertices
    if sizes.size == 0:
        return AggregateQuality(n, 0, 0.0, 0, 0, 0.0, 0.0, 0)
    return AggregateQuality(
        num_vertices=n,
        num_aggregates=int(sizes.size),
        mean_size=float(sizes.mean()),
        min_size=int(sizes.min()),
        max_size=int(sizes.max()),
        std_size=float(sizes.std()),
        coarsening_factor=float(n / sizes.size) if sizes.size else 0.0,
        singletons=int(np.count_nonzero(sizes == 1)),
    )

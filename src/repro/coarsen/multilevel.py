"""Recursive multilevel coarsening.

Multilevel methods (multigrid, graph partitioning, graph drawing — the applications
the paper's introduction motivates) apply coarsening recursively until the graph is
smaller than a threshold. This module provides that driver for the structural use
case (the matrix/AMG use case lives in :mod:`repro.solvers.multigrid`): given any
aggregation function it produces the chain of coarse graphs plus the per-level
aggregations, which is exactly the substrate Gilbert et al.'s multilevel partitioning
experiments (cited by the paper as future work) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..graph.csr import CSRGraph
from .aggregation import Aggregation
from .coarse import coarse_graph
from .mis2_agg import mis2_aggregation

__all__ = ["CoarseningLevel", "MultilevelHierarchy", "coarsen_recursive"]

AggregationFn = Callable[[CSRGraph], Aggregation]


@dataclass
class CoarseningLevel:
    """One level of a multilevel hierarchy."""

    #: Level index (0 = finest).
    level: int
    #: The graph at this level.
    graph: CSRGraph
    #: Aggregation used to produce the next (coarser) level; None on the coarsest level.
    aggregation: Optional[Aggregation] = None


@dataclass
class MultilevelHierarchy:
    """The chain of graphs/aggregations produced by recursive coarsening."""

    levels: List[CoarseningLevel] = field(default_factory=list)

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def coarsest(self) -> CSRGraph:
        return self.levels[-1].graph

    def vertex_counts(self) -> List[int]:
        """Number of vertices per level, finest first."""
        return [lvl.graph.num_vertices for lvl in self.levels]

    def project_to_finest(self, coarse_labels: np.ndarray) -> np.ndarray:
        """Project per-vertex labels on the coarsest graph back to the finest graph.

        This is the standard uncoarsening step of multilevel partitioning: a label
        (e.g. a partition id) assigned to a coarse vertex applies to every fine vertex
        that was aggregated into it.
        """
        labels = np.asarray(coarse_labels)
        if labels.size != self.coarsest.num_vertices:
            raise ValueError("labels must match the coarsest graph's vertex count")
        for lvl in reversed(self.levels[:-1]):
            assert lvl.aggregation is not None
            labels = labels[lvl.aggregation.labels]
        return labels


def coarsen_recursive(
    graph: CSRGraph,
    aggregation_fn: AggregationFn = mis2_aggregation,
    target_size: int = 128,
    max_levels: int = 20,
    min_reduction: float = 0.9,
) -> MultilevelHierarchy:
    """Recursively coarsen ``graph`` until it has at most ``target_size`` vertices.

    Parameters
    ----------
    graph:
        The finest-level graph.
    aggregation_fn:
        Aggregation used at every level (Algorithm 3 by default).
    target_size:
        Stop once the coarse graph has at most this many vertices.
    max_levels:
        Hard cap on the number of levels.
    min_reduction:
        Stop early when a level shrinks the vertex count by less than this factor
        (guards against stagnation on pathological graphs).
    """
    if target_size < 1:
        raise ValueError("target_size must be >= 1")
    hierarchy = MultilevelHierarchy()
    current = graph
    for level in range(max_levels):
        if current.num_vertices <= target_size:
            break
        agg = aggregation_fn(current)
        next_graph = coarse_graph(current, agg)
        hierarchy.levels.append(CoarseningLevel(level, current, agg))
        if next_graph.num_vertices >= min_reduction * current.num_vertices:
            current = next_graph
            break
        current = next_graph
    hierarchy.levels.append(CoarseningLevel(len(hierarchy.levels), current, None))
    return hierarchy

"""Prolongation (interpolation) operators for smoothed-aggregation AMG.

Given an aggregation of the matrix graph, the *tentative* prolongation interpolates
each coarse unknown as a constant over its aggregate (columns normalised so that
``P_tent`` has orthonormal columns for the constant near-nullspace). Smoothed
aggregation then applies one damped-Jacobi step to the tentative operator,

    ``P = (I - omega * D^{-1} A) P_tent``,  ``omega = 4/3 / rho(D^{-1} A)``,

which is what MueLu's SA preconditioner (the Table V experiment) does on every level.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .aggregation import Aggregation

__all__ = ["tentative_prolongation", "smoothed_prolongation", "estimate_spectral_radius"]


def tentative_prolongation(
    aggregation: Aggregation, normalize: bool = True
) -> sp.csr_matrix:
    """Piecewise-constant tentative prolongation ``P_tent`` (n_fine x n_coarse).

    With ``normalize`` (default) each column is scaled to unit 2-norm, which keeps the
    Galerkin coarse operator well-scaled for the constant near-nullspace.
    """
    if not aggregation.is_complete():
        raise ValueError("aggregation must be complete to build a prolongation")
    n = aggregation.num_vertices
    n_coarse = aggregation.num_aggregates
    if n_coarse == 0:
        raise ValueError("aggregation has no aggregates")
    cols = aggregation.labels
    rows = np.arange(n, dtype=np.int64)
    if normalize:
        sizes = aggregation.sizes().astype(np.float64)
        data = 1.0 / np.sqrt(sizes[cols])
    else:
        data = np.ones(n, dtype=np.float64)
    return sp.csr_matrix((data, (rows, cols)), shape=(n, n_coarse))


def estimate_spectral_radius(
    A: sp.spmatrix, iterations: int = 15, seed: int = 0
) -> float:
    """Estimate ``rho(D^{-1} A)`` with power iteration (deterministic seed)."""
    A = sp.csr_matrix(A)
    n = A.shape[0]
    diag = A.diagonal()
    diag = np.where(np.abs(diag) > 0, diag, 1.0)
    Dinv = sp.diags(1.0 / diag)
    DinvA = Dinv @ A
    rng = np.random.default_rng(seed)
    x = rng.random(n)
    x /= np.linalg.norm(x)
    rho = 1.0
    for _ in range(max(1, iterations)):
        y = DinvA @ x
        norm = np.linalg.norm(y)
        if norm == 0:
            return 0.0
        rho = float(norm)
        x = y / norm
    return rho


def smoothed_prolongation(
    A: sp.spmatrix,
    aggregation: Aggregation,
    omega: Optional[float] = None,
    normalize: bool = True,
) -> Tuple[sp.csr_matrix, sp.csr_matrix]:
    """Smoothed-aggregation prolongation for matrix ``A``.

    Returns ``(P, P_tent)``. ``omega`` defaults to the standard
    ``4/3 / rho(D^{-1} A)`` damping.
    """
    A = sp.csr_matrix(A)
    P_tent = tentative_prolongation(aggregation, normalize=normalize)
    if omega is None:
        rho = estimate_spectral_radius(A)
        omega = (4.0 / 3.0) / rho if rho > 0 else 0.0
    diag = A.diagonal()
    diag = np.where(np.abs(diag) > 0, diag, 1.0)
    Dinv_A = sp.diags(1.0 / diag) @ A
    P = P_tent - omega * (Dinv_A @ P_tent)
    return sp.csr_matrix(P), P_tent

"""Serial (host-side) aggregation baseline — the MueLu "Serial Agg" scheme.

MueLu's original aggregation runs sequentially on the host CPU: a greedy sweep over
the vertices creates an aggregate from every vertex whose entire neighbourhood is
still unaggregated, a second sweep attaches leftover vertices to the adjacent
aggregate they are most strongly coupled to, and a final sweep turns any remaining
vertices into small aggregates with their unaggregated neighbours. The quality is
good, but Table V of the paper shows the sequential execution makes its setup more
than an order of magnitude slower than the device-resident schemes — which this pure
Python loop implementation naturally reproduces.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .aggregation import Aggregation

__all__ = ["serial_aggregation"]


def serial_aggregation(graph: CSRGraph, min_aggregate_size: int = 2) -> Aggregation:
    """Coarsen ``graph`` with the sequential greedy aggregation of MueLu/ML.

    Parameters
    ----------
    graph:
        Undirected input graph.
    min_aggregate_size:
        Phase-1 aggregates smaller than this are not created (their vertices are left
        to the later phases).
    """
    n = graph.num_vertices
    labels = -np.ones(n, dtype=np.int64)
    if n == 0:
        return Aggregation(labels, 0, algorithm="serial_agg")
    rowmap, entries = graph.rowmap, graph.entries
    next_aggregate = 0
    roots = []

    # Phase 1: greedy root selection in vertex order — a vertex roots an aggregate if
    # it and all of its neighbours are unaggregated.
    for v in range(n):
        if labels[v] >= 0:
            continue
        nbrs = entries[rowmap[v]: rowmap[v + 1]]
        if np.any(labels[nbrs] >= 0):
            continue
        if 1 + nbrs.size < min_aggregate_size:
            continue
        labels[v] = next_aggregate
        labels[nbrs] = next_aggregate
        roots.append(v)
        next_aggregate += 1
    phase1 = int(np.count_nonzero(labels >= 0))

    # Phase 2: attach leftover vertices to the adjacent aggregate with the most
    # connections (sequentially, so later decisions see earlier ones).
    for v in range(n):
        if labels[v] >= 0:
            continue
        nbrs = entries[rowmap[v]: rowmap[v + 1]]
        nbr_labels = labels[nbrs]
        nbr_labels = nbr_labels[nbr_labels >= 0]
        if nbr_labels.size == 0:
            continue
        counts = np.bincount(nbr_labels)
        labels[v] = int(np.argmax(counts))
    phase2 = int(np.count_nonzero(labels >= 0)) - phase1

    # Phase 3: any vertices still unaggregated (isolated clusters of leftovers) form
    # new aggregates with their unaggregated neighbours.
    for v in range(n):
        if labels[v] >= 0:
            continue
        nbrs = entries[rowmap[v]: rowmap[v + 1]]
        free = nbrs[labels[nbrs] < 0]
        labels[v] = next_aggregate
        labels[free] = next_aggregate
        roots.append(v)
        next_aggregate += 1
    cleanup = n - phase1 - phase2

    return Aggregation(
        labels=labels,
        num_aggregates=next_aggregate,
        roots=np.asarray(roots, dtype=np.int64),
        algorithm="serial_agg",
        deterministic=True,
        phase_vertex_counts={"phase1": phase1, "phase2": phase2, "cleanup": cleanup},
    )

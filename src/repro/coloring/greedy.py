"""Speculative parallel greedy distance-1 coloring (Deveci et al. style).

Every round, each still-uncolored vertex picks the smallest color not used by any of
its already-colored neighbours (the speculation happens in parallel, so two adjacent
uncolored vertices can pick the same color); a conflict-resolution pass then uncolors
the higher-id endpoint of every conflicting edge. The rounds repeat until no vertex is
uncolored. Because ties are always broken by vertex id the result is deterministic and
identical across execution backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.backends import ExecutionBackend, resolve_backend
from ..parallel.costmodel import TrafficCounter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (partitioned imports us)
    from ..parallel.partitioned import PartitionStats

__all__ = ["greedy_color", "ColoringResult"]


@dataclass
class ColoringResult:
    """Output of a coloring algorithm."""

    #: Per-vertex color ids, 0-based, dense in ``[0, num_colors)``.
    colors: np.ndarray
    #: Number of distinct colors used.
    num_colors: int
    #: Number of speculative rounds executed.
    rounds: int
    #: Memory-traffic counter (for the cost model).
    traffic: TrafficCounter = field(default_factory=TrafficCounter)
    #: Distance of the coloring (1 or 2).
    distance: int = 1
    #: Name of the execution backend that ran the kernels.
    backend: str = "numpy"
    #: Number of intra-graph partitions the run was sharded into (1 = unpartitioned).
    partitions: int = 1
    #: Partitioning measurables when the partition-parallel driver ran.
    partition_stats: "Optional[PartitionStats]" = None

    def color_classes(self) -> List[np.ndarray]:
        """Vertices grouped by color, ordered by color id."""
        return [np.nonzero(self.colors == c)[0].astype(np.int64) for c in range(self.num_colors)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColoringResult(num_colors={self.num_colors}, rounds={self.rounds}, "
            f"distance={self.distance}, vertices={self.colors.size})"
        )


def _speculative_assign(
    graph: CSRGraph,
    colors: np.ndarray,
    worklist: np.ndarray,
    max_colors: int,
    B: ExecutionBackend,
) -> np.ndarray:
    """Smallest color not used by any colored neighbour, for each worklist vertex."""
    slots, seg = B.expand_rows(graph.rowmap, worklist)
    nbr_colors = colors[graph.entries[slots].astype(np.int64)]
    lens = np.diff(seg)
    owner = np.repeat(np.arange(worklist.size, dtype=np.int64), lens)
    forbidden = np.zeros((worklist.size, max_colors + 1), dtype=bool)
    valid = nbr_colors >= 0
    clipped = np.minimum(nbr_colors[valid], max_colors)
    forbidden[owner[valid], clipped] = True
    # First available color per row (there is always one because a vertex has at most
    # max_colors-1 <= degree neighbours).
    return np.argmin(forbidden, axis=1).astype(np.int64)


def greedy_color(
    graph: CSRGraph,
    max_rounds: Optional[int] = None,
    backend: "Optional[str | ExecutionBackend]" = None,
    partitions=None,
    resident: bool = True,
    changed_deltas: bool = True,
    overlap: bool = True,
) -> ColoringResult:
    """Distance-1 greedy coloring of ``graph``.

    Parameters
    ----------
    graph:
        Undirected input graph.
    max_rounds:
        Safety cap on speculative rounds (defaults to ``num_vertices + 2``; the
        algorithm terminates far sooner in practice).
    backend:
        Execution backend (name or instance); ``None`` uses the default. All
        backends produce bit-identical colorings.
    partitions:
        When not ``None``, shard the run within the graph (part count, label
        array or layout); the partition-parallel driver is bit-identical to
        the unpartitioned kernel.
    resident:
        Only meaningful with ``partitions``: rank-resident execution
        (default) vs the re-ship-everything baseline; results are
        bit-identical either way.
    changed_deltas:
        Only meaningful with ``partitions``: changed-only halo deltas with
        once-per-round worklist shipment (default) vs the full-halo wire
        format; results are bit-identical either way.
    overlap:
        Only meaningful with ``partitions`` and ``resident=True``: the
        overlapped boundary/interior schedule (default) vs the barrier
        schedule; results and shipped-byte counts are identical either way.

    Returns
    -------
    :class:`ColoringResult` with a proper distance-1 coloring: adjacent vertices never
    share a color.
    """
    if partitions is not None:
        from ..parallel.partitioned import partitioned_greedy_color

        return partitioned_greedy_color(
            graph,
            partitions,
            max_rounds=max_rounds,
            backend=backend,
            resident=resident,
            changed_deltas=changed_deltas,
            overlap=overlap,
        )
    B = resolve_backend(backend)
    n = graph.num_vertices
    traffic = TrafficCounter(backend=B.name)
    if n == 0:
        return ColoringResult(np.zeros(0, dtype=np.int64), 0, 0, traffic, backend=B.name)
    colors = -np.ones(n, dtype=np.int64)
    worklist = np.arange(n, dtype=np.int64)
    max_colors = graph.max_degree() + 1
    rounds = 0
    cap = max_rounds if max_rounds is not None else n + 2

    while worklist.size > 0:
        if rounds >= cap:
            raise RuntimeError("greedy coloring did not converge (conflict loop)")
        # Speculative assignment.
        proposal = _speculative_assign(graph, colors, worklist, max_colors, B)
        colors[worklist] = proposal
        slots, seg = B.expand_rows(graph.rowmap, worklist)
        nbrs = graph.entries[slots].astype(np.int64)
        lens = np.diff(seg)
        owners = np.repeat(worklist, lens)
        traffic.add(
            "color_assign",
            bytes_read=4 * worklist.size + 8 * worklist.size + 4 * slots.size + 8 * slots.size,
            bytes_written=8 * worklist.size,
        )
        # Conflict detection: an edge whose endpoints share a color uncolors the
        # higher-id endpoint (deterministic tie-break).
        conflict_mask = (colors[owners] == colors[nbrs]) & (owners > nbrs)
        losers = np.unique(owners[conflict_mask])
        colors[losers] = -1
        traffic.add(
            "color_conflicts",
            bytes_read=8 * 2 * slots.size,
            bytes_written=8 * losers.size,
        )
        worklist = losers
        rounds += 1

    used = np.unique(colors)
    # Compact color ids to a dense range (greedy first-fit already yields dense ids,
    # but renumber defensively so downstream color-class loops are simple).
    remap = -np.ones(int(used.max()) + 1, dtype=np.int64)
    remap[used] = np.arange(used.size, dtype=np.int64)
    colors = remap[colors]
    return ColoringResult(colors, int(used.size), rounds, traffic, distance=1, backend=B.name)

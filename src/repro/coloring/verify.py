"""Coloring verification helpers."""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.ops import square

__all__ = ["is_valid_coloring", "num_colors", "color_class_sizes"]


def is_valid_coloring(graph: CSRGraph, colors: np.ndarray, distance: int = 1) -> bool:
    """True when no two vertices within ``distance`` of each other share a color.

    All vertices must be colored (color >= 0).
    """
    colors = np.asarray(colors)
    if colors.shape != (graph.num_vertices,):
        raise ValueError("colors must have one entry per vertex")
    if graph.num_vertices == 0:
        return True
    if np.any(colors < 0):
        return False
    target = graph if distance == 1 else square(graph)
    src = np.repeat(np.arange(target.num_vertices, dtype=np.int64), target.degrees())
    dst = target.entries.astype(np.int64)
    off_diag = src != dst
    return not bool(np.any(colors[src[off_diag]] == colors[dst[off_diag]]))


def num_colors(colors: np.ndarray) -> int:
    """Number of distinct colors in a full coloring."""
    colors = np.asarray(colors)
    if colors.size == 0:
        return 0
    return int(np.unique(colors[colors >= 0]).size)


def color_class_sizes(colors: np.ndarray) -> Dict[int, int]:
    """Mapping ``color -> class size``."""
    colors = np.asarray(colors)
    uniq, counts = np.unique(colors[colors >= 0], return_counts=True)
    return {int(c): int(k) for c, k in zip(uniq, counts)}

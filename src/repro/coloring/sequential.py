"""Sequential (host-side) greedy coloring.

MueLu's "Serial D2C" aggregation computes its distance-2 coloring with a sequential
implementation on the host and only parallelises the aggregation step; this module
provides that serial first-fit coloring (both distance-1 and distance-2), used by the
Table V benchmark to model the Serial-D2C baseline's setup cost and by the tests as an
independent reference for the parallel speculative coloring.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.ops import square
from .greedy import ColoringResult

__all__ = ["sequential_greedy_color", "sequential_distance2_color"]


def sequential_greedy_color(graph: CSRGraph) -> ColoringResult:
    """First-fit greedy coloring in vertex order (one vertex at a time)."""
    n = graph.num_vertices
    colors = -np.ones(n, dtype=np.int64)
    if n == 0:
        return ColoringResult(colors, 0, 0, distance=1)
    max_color = -1
    rowmap, entries = graph.rowmap, graph.entries
    for v in range(n):
        nbr_colors = colors[entries[rowmap[v]: rowmap[v + 1]]]
        nbr_colors = set(int(c) for c in nbr_colors if c >= 0)
        c = 0
        while c in nbr_colors:
            c += 1
        colors[v] = c
        max_color = max(max_color, c)
    return ColoringResult(colors, max_color + 1, rounds=1, distance=1)


def sequential_distance2_color(graph: CSRGraph) -> ColoringResult:
    """Sequential first-fit distance-2 coloring (via the boolean square)."""
    if graph.num_vertices == 0:
        return ColoringResult(np.zeros(0, dtype=np.int64), 0, 0, distance=2)
    result = sequential_greedy_color(square(graph))
    return ColoringResult(result.colors, result.num_colors, result.rounds, result.traffic, distance=2)

"""Parallel greedy graph coloring.

Graph coloring plays two roles in the paper:

* **Baseline aggregation** — MueLu's "Serial D2C" and "NB D2C" aggregation schemes
  (Table V) seed aggregates from the color classes of a *distance-2* coloring, each of
  which is a distance-2 independent set.
* **Point multicolor Gauss-Seidel** — the preconditioner the cluster method of
  Algorithm 4 is compared against (Table VI) uses a distance-1 coloring of the matrix
  graph to find rows that can be updated in parallel, and the cluster method colors
  the *coarsened* graph instead.

Both colorings here are deterministic speculative greedy algorithms in the style of
Deveci et al. (IPDPS 2016): every uncolored vertex speculatively picks the smallest
color not used by its (distance-1 or distance-2) neighbourhood, conflicts are detected,
and the lower-id endpoint keeps its color.
"""

from __future__ import annotations

from .greedy import greedy_color, ColoringResult
from .distance2 import distance2_color
from .sequential import sequential_greedy_color, sequential_distance2_color
from .verify import is_valid_coloring, num_colors, color_class_sizes

__all__ = [
    "greedy_color",
    "distance2_color",
    "sequential_greedy_color",
    "sequential_distance2_color",
    "ColoringResult",
    "is_valid_coloring",
    "num_colors",
    "color_class_sizes",
]

"""Distance-2 greedy coloring.

A distance-2 coloring assigns colors such that any two vertices within distance 2
receive different colors; each color class is therefore a distance-2 independent set
(not necessarily maximal), which is what MueLu's D2C aggregation schemes seed their
aggregates from (Table V of the paper).

The implementation colors the boolean square ``G^2`` with the distance-1 speculative
greedy algorithm — the net-based algorithm of Taş et al. the paper cites avoids
materialising ``G^2``, but produces a coloring with the same validity property; the
SpGEMM cost is acceptable at reproduction scale and is charged to the "Serial D2C" /
"NB D2C" baselines, not to the paper's contribution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.ops import square
from ..parallel.backends import ExecutionBackend, resolve_backend
from .greedy import ColoringResult, greedy_color

__all__ = ["distance2_color"]


def distance2_color(
    graph: CSRGraph,
    max_rounds: Optional[int] = None,
    backend: "Optional[str | ExecutionBackend]" = None,
) -> ColoringResult:
    """Distance-2 greedy coloring of ``graph`` (via distance-1 coloring of ``G^2``)."""
    B = resolve_backend(backend)
    if graph.num_vertices == 0:
        return ColoringResult(np.zeros(0, dtype=np.int64), 0, 0, distance=2, backend=B.name)
    sq = square(graph)
    result = greedy_color(sq, max_rounds=max_rounds, backend=B)
    return ColoringResult(
        colors=result.colors,
        num_colors=result.num_colors,
        rounds=result.rounds,
        traffic=result.traffic,
        distance=2,
        backend=result.backend,
    )

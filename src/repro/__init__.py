"""repro — reproduction of Kelley & Rajamanickam, *Parallel, Portable Algorithms for
Distance-2 Maximal Independent Set and Graph Coarsening* (IPDPS 2022).

The package is organised as a small stack:

* :mod:`repro.util` — timers, tables, validation helpers.
* :mod:`repro.graph` — compressed-row-storage graphs, generators, the 17-matrix suite.
* :mod:`repro.parallel` — a Kokkos-like portable execution substrate plus device cost models.
* :mod:`repro.hashing` — xorshift/xorshift* hashing and compressed status-tuple packing.
* :mod:`repro.mis` — the paper's Algorithm 1 (distance-2 MIS) and all baselines.
* :mod:`repro.coloring` — parallel greedy distance-1/2 coloring.
* :mod:`repro.coarsen` — MIS-2 based aggregation (Algorithms 2 and 3) and baselines.
* :mod:`repro.solvers` — smoothed-aggregation AMG, CG, GMRES.
* :mod:`repro.gs` — point and cluster multicolor Gauss-Seidel preconditioners (Algorithm 4).
* :mod:`repro.partition` — multilevel graph partitioning built on MIS-2 coarsening (the paper's future-work application).
* :mod:`repro.bench` — drivers that regenerate every table and figure of the paper.

Quickstart::

    import repro
    G = repro.graph.laplace3d(20, 20, 20)
    result = repro.mis.kk_mis2(G)
    assert repro.mis.verify_mis(G, result.in_set, k=2)
"""

from __future__ import annotations

from . import util  # noqa: F401
from . import graph  # noqa: F401
from . import parallel  # noqa: F401
from . import hashing  # noqa: F401
from . import mis  # noqa: F401
from . import coloring  # noqa: F401
from . import coarsen  # noqa: F401
from . import solvers  # noqa: F401
from . import gs  # noqa: F401
from . import partition  # noqa: F401
from . import bench  # noqa: F401

__version__ = "1.0.0"

__all__ = [
    "util",
    "graph",
    "parallel",
    "hashing",
    "mis",
    "coloring",
    "coarsen",
    "solvers",
    "gs",
    "partition",
    "bench",
    "__version__",
]

"""Parsed-module model shared by every rule.

:class:`ModuleInfo` wraps one source file with everything a rule visitor
needs: the AST, a child→parent map (stdlib ``ast`` has no parent links), the
dotted module name derived from the ``src/`` layout, per-line suppressions,
and the set of modules this one *explicitly* imports.

Import edges follow explicit ``import``/``from ... import`` statements only —
deliberately **not** the parent-package ``__init__`` chain.  Reachability is
used to scope the determinism rules, and ``repro.parallel.partitioned`` must
not inherit ``repro.parallel.transport``'s legitimate deadline timing just
because both live under the same package ``__init__``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .findings import Suppression, parse_suppressions


def module_name_for_path(path: str) -> str:
    """Derive the dotted module name from a repo-relative or absolute path."""
    parts = [p for p in path.replace("\\", "/").split("/") if p not in ("", ".")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    elif "repro" in parts:
        parts = parts[parts.index("repro") :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class ModuleInfo:
    """One parsed source file plus the derived metadata rules consume."""

    path: str
    module: str
    source: str
    tree: ast.Module
    is_package: bool
    suppressions: List[Suppression] = field(default_factory=list)
    _parents: Optional[Dict[int, ast.AST]] = None

    @classmethod
    def from_source(cls, source: str, path: str, module: Optional[str] = None) -> "ModuleInfo":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            module=module if module is not None else module_name_for_path(path),
            source=source,
            tree=tree,
            is_package=path.endswith("__init__.py"),
            suppressions=parse_suppressions(source),
        )

    @classmethod
    def from_path(cls, path: str, module: Optional[str] = None) -> "ModuleInfo":
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return cls.from_source(source, path=path, module=module)

    # ------------------------------------------------------------- structure
    def parent_map(self) -> Dict[int, ast.AST]:
        """Map ``id(child)`` → parent node, built once per module."""
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[id(child)] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ``node``'s ancestors, innermost first."""
        parents = self.parent_map()
        current = parents.get(id(node))
        while current is not None:
            yield current
            current = parents.get(id(current))

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    # --------------------------------------------------------------- imports
    def import_edges(self) -> List[Tuple[str, Tuple[str, ...]]]:
        """Explicit import statements as ``(base, names)`` pairs.

        ``import x.y`` yields ``("x.y", ())``; ``from .mod import a, b``
        (relative level resolved) yields ``("pkg.mod", ("a", "b"))``.  The
        engine resolves each pair against the analyzed corpus: ``base.name``
        when that is a real module (``from . import primitives`` depends on
        the submodule, not the package ``__init__``), else ``base``.
        """
        own_parts = self.module.split(".") if self.module else []
        package = own_parts if self.is_package else own_parts[:-1]
        edges: List[Tuple[str, Tuple[str, ...]]] = []
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    edges.append((alias.name, ()))
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    base = node.module.split(".") if node.module else []
                else:
                    anchor = package[: len(package) - (node.level - 1)]
                    base = anchor + (node.module.split(".") if node.module else [])
                names = tuple(a.name for a in node.names if a.name != "*")
                edges.append((".".join(base), names))
        return edges

    # ----------------------------------------------------------- suppression
    def suppressed_rules_at(self, line: int) -> Tuple[str, ...]:
        for sup in self.suppressions:
            if sup.line == line and sup.justified:
                return sup.rules
        return ()

"""NumPy dtype-flow analysis.

The stack's determinism guarantee is *bit*-identity, and NumPy has two dtype
behaviours that silently break it:

* **Size-dependent / platform-default promotion.**  ``np.cumsum`` /
  ``np.sum`` and friends promote ``bool`` and sub-64-bit integer inputs to
  the *platform default* integer (``np.int_``: int64 on Linux, int32 on
  Windows), and blocked implementations that pick a fixed output dtype flip
  results exactly when the input crosses a block boundary — the PR 4
  ``inclusive_scan`` uint64→int64 bug.  ``np.arange`` without ``dtype=`` and
  ``dtype=int`` / ``astype(int)`` are the same trap spelled differently.
* **Seam divergence.**  An :class:`ExecutionBackend` primitive override whose
  returned dtype is pinned (``dtype=np.int64``) while the NumPy reference's
  output dtype follows its input can agree on one platform/size and diverge
  on another, poisoning the cross-backend equivalence matrix.

This rule propagates a small dtype lattice through each function with the
:mod:`~repro.analysis.dataflow` framework (assignments, arithmetic that
preserves dtype, ``astype``/constructor calls, the ``np.cumsum(x[:0]).dtype``
probing idiom) and reports:

* ``dtype-size-dependent``  — a promotion-prone reduction/scan without an
  explicit ``dtype=`` whose operand is known to be ``bool`` or a sub-64-bit
  integer; ``np.arange`` without ``dtype=``; ``dtype=int`` / ``astype(int)``.
  Scoped to the determinism closure (the modules whose outputs are gated
  bit-identical).
* ``dtype-seam-divergence`` — a ``return`` in an ``ExecutionBackend``
  primitive override whose inferred dtype cannot match the reference
  implementation's output dtype for every input.

The lattice is deliberately conservative: an operand whose dtype the
analysis cannot prove stays ``unknown`` and is never flagged, so the rule
has no false positives at the price of known false negatives (documented in
the README).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .cfg import CFG, Step, build_cfg
from .dataflow import ForwardAnalysis, run_forward
from .determinism import DETERMINISM_SEEDS
from .engine import AnalysisContext, Rule
from .findings import Finding
from .modules import ModuleInfo

# ------------------------------------------------------------------- lattice
#: Lattice values are tagged tuples:
#: ``("concrete", name)`` a known dtype; ``("param", p)`` same dtype as
#: parameter ``p``; ``("promo", p)`` NumPy scan/sum promotion of parameter
#: ``p``'s dtype; ``("platform",)`` the platform default int; ``("pyscalar",)``
#: a Python numeric literal (transparent in arithmetic); ``("unknown",)`` ⊤.
Value = Tuple[str, ...]

UNKNOWN: Value = ("unknown",)
PLATFORM: Value = ("platform",)
PYSCALAR: Value = ("pyscalar",)

#: dtypes that NumPy reductions/scans promote to the platform default int.
PROMOTABLE = frozenset(
    {"bool", "int8", "int16", "int32", "uint8", "uint16", "uint32"}
)

#: Stable under reduction/scan promotion.
_PROMO_FIXED = frozenset({"int64", "uint64", "float32", "float64", "complex64", "complex128"})

#: ``np.<name>`` / ``<arr>.<name>()`` reductions and scans that promote.
PROMOTING_CALLS = frozenset({"cumsum", "cumprod", "sum", "prod"})

#: NumPy dtype attribute names → lattice value.
_DTYPE_ATTRS: Dict[str, Value] = {
    "bool_": ("concrete", "bool"),
    "int8": ("concrete", "int8"),
    "int16": ("concrete", "int16"),
    "int32": ("concrete", "int32"),
    "int64": ("concrete", "int64"),
    "uint8": ("concrete", "uint8"),
    "uint16": ("concrete", "uint16"),
    "uint32": ("concrete", "uint32"),
    "uint64": ("concrete", "uint64"),
    "float32": ("concrete", "float32"),
    "float64": ("concrete", "float64"),
    "complex64": ("concrete", "complex64"),
    "complex128": ("concrete", "complex128"),
    "int_": PLATFORM,
    "intp": PLATFORM,
    "uint": PLATFORM,
    "uintp": PLATFORM,
}

#: Reference output-dtype contract per ExecutionBackend primitive, derived
#: from ``repro.parallel.primitives``:
#: ``input``  — preserves the input array's dtype;
#: ``promote``— NumPy scan/sum promotion of the input's dtype;
#: ``int64``  — pinned 64-bit (index arrays; exclusive_scan's integer path);
#: ``bool``   — boolean mask output.
PRIMITIVE_CONTRACTS: Dict[str, str] = {
    "inclusive_scan": "promote",
    "exclusive_scan": "int64",
    "stream_compact": "input",
    "row_lengths": "int64",
    "expand_rows": "int64",
    "segmented_min": "input",
    "segmented_max": "input",
    "segmented_sum": "input",
    "segmented_all_equal": "bool",
    "segmented_any_equal": "bool",
    "segmented_lexmin": "input",
}

#: Class names that mark an ExecutionBackend subclass (direct or via a
#: known concrete backend base).
BACKEND_BASES = frozenset(
    {"ExecutionBackend", "NumpyBackend", "ChunkedBackend", "ThreadedBackend",
     "NumbaBackend", "DistributedBackend"}
)


def join_values(a: Value, b: Value) -> Value:
    if a == b:
        return a
    if a == PYSCALAR:
        return b
    if b == PYSCALAR:
        return a
    return UNKNOWN


def promo_value(v: Value) -> Value:
    """Result dtype of an unqualified NumPy reduction/scan over ``v``."""
    if v[0] == "concrete":
        if v[1] in PROMOTABLE:
            return PLATFORM
        if v[1] in _PROMO_FIXED:
            return v
        return UNKNOWN
    if v[0] == "param":
        return ("promo", v[1])
    if v[0] == "promo" or v == PLATFORM:
        return v
    return UNKNOWN


def _np_attr_name(func: ast.expr) -> Optional[str]:
    """``np.<name>`` / ``numpy.<name>`` → name."""
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    ):
        return func.attr
    return None


def _dtype_kw(call: ast.Call) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == "dtype":
            return kw.value
    return None


# --------------------------------------------------------------- environment
Env = Dict[str, Value]
State = Tuple[Tuple[str, Value], ...]  # hashable, order-stable rendering


def _freeze(env: Env) -> State:
    return tuple(sorted((k, v) for k, v in env.items() if v != UNKNOWN))


def _thaw(state: State) -> Env:
    return dict(state)


class _DtypeInference:
    """Expression-level dtype inference against an environment."""

    def __init__(self, params: FrozenSet[str]) -> None:
        self.params = params

    # ------------------------------------------------------------- dtype args
    def dtype_of_expr(self, node: ast.expr, env: Env) -> Value:
        """The dtype a ``dtype=…`` argument denotes (not an array's dtype)."""
        if isinstance(node, ast.Attribute):
            if node.attr == "dtype":
                # <arr>.dtype — the probing idiom: dtype follows the array.
                return self.infer(node.value, env)
            if node.attr in _DTYPE_ATTRS and isinstance(node.value, ast.Name):
                if node.value.id in ("np", "numpy"):
                    return _DTYPE_ATTRS[node.attr]
            return UNKNOWN
        if isinstance(node, ast.Name):
            if node.id == "int":
                return PLATFORM
            if node.id == "float":
                return ("concrete", "float64")
            if node.id == "bool":
                return ("concrete", "bool")
            return UNKNOWN
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = node.value
            if name in _DTYPE_ATTRS:
                return _DTYPE_ATTRS[name]
            if name in PROMOTABLE or name in _PROMO_FIXED or name == "bool":
                return ("concrete", name)
            return UNKNOWN
        if isinstance(node, ast.Call):
            np_name = _np_attr_name(node.func)
            if np_name == "dtype" and node.args:
                return self.dtype_of_expr(node.args[0], env)
            # np.cumsum(x[:0]).dtype reached via Attribute above; a bare
            # promoting call used as a dtype is its result dtype.
            return self.infer(node, env)
        return UNKNOWN

    # ---------------------------------------------------------------- arrays
    def infer(self, node: ast.expr, env: Env) -> Value:
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in self.params:
                return ("param", node.id)
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            return self.infer(node.value, env)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand, env)
        if isinstance(node, ast.BinOp):
            return join_values(self.infer(node.left, env), self.infer(node.right, env))
        if isinstance(node, ast.IfExp):
            return join_values(self.infer(node.body, env), self.infer(node.orelse, env))
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(node.value, bool):
                return PYSCALAR
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._infer_call(node, env)
        return UNKNOWN

    def _infer_call(self, node: ast.Call, env: Env) -> Value:
        func = node.func
        dtype_arg = _dtype_kw(node)
        np_name = _np_attr_name(func)
        if np_name is not None:
            if np_name in ("asarray", "array", "ascontiguousarray", "asfortranarray"):
                if dtype_arg is not None:
                    return self.dtype_of_expr(dtype_arg, env)
                return self.infer(node.args[0], env) if node.args else UNKNOWN
            if np_name in ("zeros", "ones", "empty"):
                if dtype_arg is not None:
                    return self.dtype_of_expr(dtype_arg, env)
                if len(node.args) >= 2:
                    return self.dtype_of_expr(node.args[1], env)
                return ("concrete", "float64")
            if np_name == "full":
                if dtype_arg is not None:
                    return self.dtype_of_expr(dtype_arg, env)
                return UNKNOWN
            if np_name in ("zeros_like", "ones_like", "empty_like", "full_like"):
                if dtype_arg is not None:
                    return self.dtype_of_expr(dtype_arg, env)
                return self.infer(node.args[0], env) if node.args else UNKNOWN
            if np_name == "arange":
                if dtype_arg is not None:
                    return self.dtype_of_expr(dtype_arg, env)
                if any(
                    isinstance(a, ast.Constant) and isinstance(a.value, float)
                    for a in node.args
                ):
                    return ("concrete", "float64")
                return PLATFORM
            if np_name in PROMOTING_CALLS:
                if dtype_arg is not None:
                    return self.dtype_of_expr(dtype_arg, env)
                if node.args:
                    return promo_value(self.infer(node.args[0], env))
                return UNKNOWN
            if np_name in ("where",) and len(node.args) == 3:
                return join_values(
                    self.infer(node.args[1], env), self.infer(node.args[2], env)
                )
            if np_name in ("minimum", "maximum") and len(node.args) == 2:
                return join_values(
                    self.infer(node.args[0], env), self.infer(node.args[1], env)
                )
            return UNKNOWN
        if isinstance(func, ast.Attribute):
            base = func.value
            if func.attr == "astype" and node.args:
                return self.dtype_of_expr(node.args[0], env)
            if func.attr in ("copy", "ravel", "reshape", "flatten", "squeeze"):
                return self.infer(base, env)
            if func.attr in PROMOTING_CALLS:
                if dtype_arg is not None:
                    return self.dtype_of_expr(dtype_arg, env)
                return promo_value(self.infer(base, env))
            if (
                func.attr == "type"
                and isinstance(base, ast.Attribute)
                and base.attr == "dtype"
            ):
                # x.dtype.type(0): a scalar carrying x's dtype.
                return self.infer(base.value, env)
            return UNKNOWN
        return UNKNOWN


class _DtypeAnalysis(ForwardAnalysis[State]):
    """Forward propagation of the dtype environment through a CFG."""

    def __init__(self, inference: _DtypeInference) -> None:
        self._inf = inference

    def entry_state(self) -> State:
        return ()

    def unreachable(self) -> State:
        return ()

    def join(self, a: State, b: State) -> State:
        ea, eb = _thaw(a), _thaw(b)
        out: Env = {}
        for key in ea.keys() & eb.keys():
            joined = join_values(ea[key], eb[key])
            if joined != UNKNOWN:
                out[key] = joined
        return _freeze(out)

    def transfer(self, state: State, step: Step) -> State:
        kind, node = step
        if kind != "stmt":
            return state
        env = _thaw(state)
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                env[target.id] = self._inf.infer(node.value, env)
                return _freeze(env)
            if isinstance(target, ast.Tuple) and isinstance(node.value, ast.Tuple):
                for t, v in zip(target.elts, node.value.elts):
                    if isinstance(t, ast.Name):
                        env[t.id] = self._inf.infer(v, env)
                return _freeze(env)
            if isinstance(target, ast.Tuple):
                for t in target.elts:
                    if isinstance(t, ast.Name):
                        env.pop(t.id, None)
                return _freeze(env)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.value is not None:
                env[node.target.id] = self._inf.infer(node.value, env)
                return _freeze(env)
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            # x += y keeps x's dtype for arrays (in-place); keep the entry.
            return state
        return state


# ----------------------------------------------------------------------- rule
def _walk_expr(node: ast.AST) -> Iterator[ast.AST]:
    """Walk an expression/statement without entering nested defs."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
        return
    yield node
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


class DtypeRule(Rule):
    ids = ("dtype-size-dependent", "dtype-seam-divergence")
    name = "dtype-flow"
    example = """
def block_offsets(counts):
    lens = np.asarray(counts, dtype=np.uint32)
    return np.cumsum(lens)          # promotes to platform int -> size/platform
                                    # dependent; fix: np.cumsum(lens,
                                    #   dtype=np.cumsum(lens[:0]).dtype)
"""

    def check(self, info: ModuleInfo, context: AnalysisContext) -> Iterator[Finding]:
        if not info.module.startswith("repro"):
            return
        in_det_scope = info.module in context.reachable_from(DETERMINISM_SEEDS)
        seam_methods = self._seam_methods(info)
        if not in_det_scope and not seam_methods:
            return
        functions: List[Tuple[ast.AST, Optional[str]]] = []
        for node in ast.walk(info.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.append((node, seam_methods.get(id(node))))
        for func, contract in functions:
            yield from self._check_function(info, func, contract, in_det_scope)

    # ---------------------------------------------------------------- plumbing
    def _seam_methods(self, info: ModuleInfo) -> Dict[int, str]:
        """id(FunctionDef) → primitive contract, for backend subclass methods."""
        out: Dict[int, str] = {}
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = {
                b.id if isinstance(b, ast.Name) else b.attr
                for b in node.bases
                if isinstance(b, (ast.Name, ast.Attribute))
            }
            if not (base_names & BACKEND_BASES):
                continue
            for stmt in node.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name in PRIMITIVE_CONTRACTS
                ):
                    out[id(stmt)] = PRIMITIVE_CONTRACTS[stmt.name]
        return out

    def _check_function(
        self,
        info: ModuleInfo,
        func: ast.AST,
        contract: Optional[str],
        in_det_scope: bool,
    ) -> Iterator[Finding]:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        params = frozenset(
            a.arg for a in func.args.args + func.args.posonlyargs + func.args.kwonlyargs
            if a.arg != "self"
        )
        inference = _DtypeInference(params)
        cfg = build_cfg(func)
        analysis = _DtypeAnalysis(inference)
        entry_states = run_forward(cfg, analysis)
        parents = info.parent_map()
        for block in cfg.blocks:
            state = entry_states[block.index]
            for step in block.steps:
                kind, node = step
                env = _thaw(state)
                if kind in ("stmt", "expr"):
                    if in_det_scope:
                        yield from self._check_promotions(info, node, env, inference)
                    if contract is not None and kind == "expr":
                        parent = parents.get(id(node))
                        if isinstance(parent, ast.Return):
                            yield from self._check_return(
                                info, func.name, contract, node, env, inference
                            )
                state = analysis.transfer(state, step)

    # -------------------------------------------------- size/platform hazards
    def _check_promotions(
        self, info: ModuleInfo, node: ast.AST, env: Env, inference: _DtypeInference
    ) -> Iterator[Finding]:
        parents = info.parent_map()
        for sub in _walk_expr(node):
            if not isinstance(sub, ast.Call):
                continue
            parent = parents.get(id(sub))
            if isinstance(parent, ast.Attribute) and parent.attr == "dtype":
                # np.cumsum(x[:0]).dtype — the probing idiom *uses* promotion
                # to compute the reference dtype; only the dtype is read.
                continue
            np_name = _np_attr_name(sub.func)
            method = (
                sub.func.attr
                if isinstance(sub.func, ast.Attribute) and np_name is None
                else None
            )
            dtype_arg = _dtype_kw(sub)
            # dtype=int / astype(int): the platform default integer by name.
            check_dtype_expr: Optional[ast.expr] = dtype_arg
            if method == "astype" and sub.args:
                check_dtype_expr = sub.args[0]
            if (
                check_dtype_expr is not None
                and isinstance(check_dtype_expr, ast.Name)
                and check_dtype_expr.id == "int"
            ):
                yield Finding(
                    path=info.path, line=sub.lineno, rule="dtype-size-dependent",
                    message=(
                        "dtype=int resolves to the platform default integer "
                        "(int32 on Windows); spell the width explicitly "
                        "(np.int64)"
                    ),
                )
                continue
            if dtype_arg is not None:
                continue
            if np_name == "arange":
                if any(
                    isinstance(a, ast.Constant) and isinstance(a.value, float)
                    for a in sub.args
                ):
                    continue
                yield Finding(
                    path=info.path, line=sub.lineno, rule="dtype-size-dependent",
                    message=(
                        "np.arange without dtype= yields the platform default "
                        "integer (int32 on Windows); pass dtype=np.int64 so "
                        "downstream results cannot depend on the platform"
                    ),
                )
                continue
            operand: Optional[ast.expr] = None
            call_label = None
            if np_name in PROMOTING_CALLS and sub.args:
                operand = sub.args[0]
                call_label = f"np.{np_name}"
            elif method in PROMOTING_CALLS and isinstance(sub.func, ast.Attribute):
                operand = sub.func.value
                call_label = f".{method}()"
            if operand is None:
                continue
            value = inference.infer(operand, env)
            if value[0] == "concrete" and value[1] in PROMOTABLE:
                yield Finding(
                    path=info.path, line=sub.lineno, rule="dtype-size-dependent",
                    message=(
                        f"{call_label} on a {value[1]} operand promotes to the "
                        "platform default integer; pass an explicit dtype= "
                        "(e.g. dtype=np.int64) so the result dtype cannot "
                        "depend on platform or input size"
                    ),
                )

    # ------------------------------------------------------------ seam checks
    def _check_return(
        self,
        info: ModuleInfo,
        method: str,
        contract: str,
        node: ast.AST,
        env: Env,
        inference: _DtypeInference,
    ) -> Iterator[Finding]:
        assert isinstance(node, ast.expr)
        exprs: List[ast.expr] = (
            list(node.elts) if isinstance(node, ast.Tuple) else [node]
        )
        for expr in exprs:
            value = inference.infer(expr, env)
            reason = self._divergence(contract, value)
            if reason is not None:
                yield Finding(
                    path=info.path, line=getattr(expr, "lineno", 0),
                    rule="dtype-seam-divergence",
                    message=(
                        f"backend override of {method}() returns {reason}, but "
                        f"the numpy reference's output dtype is "
                        f"'{self._contract_text(contract)}'; derive the output "
                        "dtype from the input (e.g. dtype=np.cumsum(x[:0]).dtype) "
                        "or delegate to the reference"
                    ),
                )

    @staticmethod
    def _contract_text(contract: str) -> str:
        return {
            "input": "the input array's dtype",
            "promote": "NumPy's promotion of the input dtype",
            "int64": "int64",
            "bool": "bool",
        }[contract]

    @staticmethod
    def _divergence(contract: str, value: Value) -> Optional[str]:
        """Why ``value`` cannot always match ``contract``; None when it can."""
        if value in (UNKNOWN, PYSCALAR):
            return None
        if contract == "input":
            if value[0] == "concrete":
                return f"a pinned {value[1]} array"
            if value == PLATFORM:
                return "a platform-default-int array"
            if value[0] == "promo":
                return "a promotion of the input dtype"
            return None  # ("param", …) — passes the input dtype through
        if contract == "promote":
            if value[0] == "concrete":
                return f"a pinned {value[1]} array"
            if value == PLATFORM:
                return "a platform-default-int array"
            if value[0] == "param":
                return "the unpromoted input dtype"
            return None  # ("promo", …) — the probing idiom
        if contract == "int64":
            if value[0] == "concrete" and value[1] != "int64":
                return f"a pinned {value[1]} array"
            if value == PLATFORM:
                return "a platform-default-int array"
            return None
        if contract == "bool":
            if value[0] == "concrete" and value[1] != "bool":
                return f"a pinned {value[1]} array"
            if value == PLATFORM:
                return "a platform-default-int array"
            return None
        return None

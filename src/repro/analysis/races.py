"""Lockset-inference race detection.

Where :mod:`repro.analysis.locks` *verifies* hand-written ``# guarded-by:``
annotations, this rule *infers* lock discipline from the code itself, so a
shared attribute nobody remembered to annotate still gets checked:

1. **Thread-entry discovery** — callables handed to ``threading.Thread(
   target=…)``, ``asyncio.to_thread(…)``, or ``submit(…)`` on an executor
   the module provably builds as a ``ThreadPoolExecutor``, anywhere in the
   module.  (Process-pool submissions run in another address space and are
   deliberately not treated as thread entries.)
2. **Context propagation** — each method/function gets the set of thread
   contexts it can run on: entry points carry their thread's context, every
   externally callable method carries ``main``, and contexts flow through
   intra-class ``self.x()`` / intra-module calls to a fixpoint.
3. **Lockset dataflow** — per function, a must-hold forward analysis over
   the :mod:`~repro.analysis.cfg` CFG tracks which locks are held at every
   program point (``with`` blocks, ``.acquire()``/``.release()`` pairs,
   single-assignment aliases).  Entry locksets come from ``# holds:``
   annotations plus call-site inference for private (``_``-prefixed)
   helpers: the intersection of the locksets observed at their intra-class
   call sites.
4. **Reporting** — for every ``self.<attr>`` (and written module global)
   that is reachable from ≥ 2 thread contexts and written outside
   ``__init__``:

   * ``race-unguarded-write``      — written from ≥ 2 contexts with no
     common lock across the writes;
   * ``race-inconsistent-lockset`` — the locksets observed across all
     accesses have empty intersection (some path forgot the lock);
   * ``race-annotation-mismatch``  — the code consistently holds one lock
     but the ``# guarded-by:`` annotation names another;
   * ``race-missing-annotation``   — the code consistently holds a lock but
     the attribute carries no annotation (suggests one, so the lock-guard
     rule can enforce it from then on).

Known limitations (see README): attributes reached through aliases of
``self`` are not tracked; closure variables shared with a nested thread
target are not modelled (module globals and ``self`` attributes are);
condition-variable wait/notify protocols appear as their underlying lock.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from .cfg import CFG, Step, build_cfg
from .dataflow import ForwardAnalysis, run_forward
from .engine import AnalysisContext, Rule
from .findings import Finding
from .locks import Annotations, parse_annotations
from .modules import ModuleInfo

#: threading factory callables whose product is a lock-like guard object.
LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Method calls on a container attribute that mutate it in place.
MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popleft", "clear",
        "add", "discard", "update", "setdefault", "popitem", "sort",
        "appendleft", "put", "put_nowait",
    }
)

#: ``heapq.<fn>(attr, …)`` mutates its first argument.
HEAP_MUTATORS = frozenset({"heappush", "heappop", "heapify", "heappushpop", "heapreplace"})

#: Constructors whose product synchronizes internally — accessing one without
#: an external lock is the whole point (queue.Queue and friends, Event,
#: Barrier, threading.local).
THREADSAFE_FACTORIES = frozenset(
    {"Queue", "SimpleQueue", "LifoQueue", "PriorityQueue", "JoinableQueue",
     "Event", "Barrier", "local"}
)

_INIT_METHODS = ("__init__", "__post_init__")


# --------------------------------------------------------------------- helpers
def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested defs/classes/lambdas.

    Comprehensions execute inline and *are* descended into; a nested
    ``def`` body runs at some later call, under whatever locks that call
    holds, so attributing the enclosing lockset to it would be wrong.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))


def _dump(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return "<expr>"


def _alias_map(func: ast.AST) -> Dict[str, str]:
    """Single-assignment ``name = <expr>`` aliases within ``func``."""
    values: Dict[str, Optional[str]] = {}
    for node in walk_scope(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                dump = _dump(node.value)
                if target.id in values and values[target.id] != dump:
                    values[target.id] = None  # reassigned: not a stable alias
                else:
                    values[target.id] = dump
    return {name: dump for name, dump in values.items() if dump is not None}


def _lock_tokens(expr: ast.expr, aliases: Dict[str, str]) -> Set[str]:
    """The token(s) a with/acquire expression pins: its dump, alias-resolved."""
    dump = _dump(expr)
    tokens = {dump}
    resolved = aliases.get(dump)
    if resolved is not None:
        tokens.add(resolved)
    return tokens


# ----------------------------------------------------------- lockset analysis
_TOP = frozenset({"\x00TOP\x00"})  # sentinel: unreachable / all locks held


class _LocksetAnalysis(ForwardAnalysis[FrozenSet[str]]):
    """Must-hold lockset: state is the set of lock tokens held on every path."""

    def __init__(self, entry: FrozenSet[str], aliases: Dict[str, str]) -> None:
        self._entry = entry
        self._aliases = aliases

    def entry_state(self) -> FrozenSet[str]:
        return self._entry

    def unreachable(self) -> FrozenSet[str]:
        return _TOP

    def join(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        if a == _TOP:
            return b
        if b == _TOP:
            return a
        return a & b

    def transfer(self, state: FrozenSet[str], step: Step) -> FrozenSet[str]:
        kind, node = step
        if kind == "with_enter":
            assert isinstance(node, (ast.With, ast.AsyncWith))
            acquired: Set[str] = set()
            for item in node.items:
                acquired |= _lock_tokens(item.context_expr, self._aliases)
            return state | acquired
        if kind == "with_exit":
            assert isinstance(node, (ast.With, ast.AsyncWith))
            released: Set[str] = set()
            for item in node.items:
                released |= _lock_tokens(item.context_expr, self._aliases)
            return state - released
        # Manual acquire()/release() calls anywhere in the step.
        for call in self._calls_in(node):
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr in ("acquire", "release"):
                tokens = _lock_tokens(func.value, self._aliases)
                state = state | tokens if func.attr == "acquire" else state - tokens
        return state

    @staticmethod
    def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
        if isinstance(node, ast.Call):
            yield node
        for child in walk_scope(node):
            if isinstance(child, ast.Call):
                yield child


# ------------------------------------------------------------------ accesses
@dataclass
class Access:
    """One observed read/write of a shared location with its held lockset."""

    attr: str
    line: int
    is_write: bool
    lockset: FrozenSet[str]
    method: str
    in_init: bool = False


@dataclass
class _FunctionFacts:
    """Everything the aggregation step needs about one analyzed function."""

    name: str
    node: ast.AST
    self_accesses: List[Access] = field(default_factory=list)
    global_accesses: List[Access] = field(default_factory=list)
    #: (callee, lockset-at-call) for intra-class self.x() / intra-module f().
    calls: List[Tuple[str, FrozenSet[str]]] = field(default_factory=list)


def _classify_access(info: ModuleInfo, node: ast.AST) -> Optional[bool]:
    """Whether ``node`` (the access expression) is a write; ``None`` = skip.

    ``node`` is the ``self.attr`` Attribute (or global Name).  Method *calls*
    on the attribute count as writes only for known mutating methods — a
    read-only method call is a read of the reference.
    """
    parents = info.parent_map()
    parent = parents.get(id(node))
    # self.m(...) — calling a method that shares the attribute's name: skip
    # (matches the lock rule; the body is checked at its definition).
    if isinstance(parent, ast.Call) and parent.func is node:
        return None
    if isinstance(node, (ast.Attribute, ast.Name)) and isinstance(node.ctx, (ast.Store, ast.Del)):
        return True
    if isinstance(parent, ast.Attribute):
        grand = parents.get(id(parent))
        # self.attr.field = …  /  self.attr.field += …
        if isinstance(parent.ctx, (ast.Store, ast.Del)):
            return True
        if isinstance(grand, (ast.Assign, ast.AugAssign)) and isinstance(
            parent.ctx, ast.Store
        ):
            return True
        # self.attr.append(...) and friends
        if (
            isinstance(grand, ast.Call)
            and grand.func is parent
            and parent.attr in MUTATING_METHODS
        ):
            return True
    if isinstance(parent, ast.Subscript) and parent.value is node:
        # self.attr[k] = … / del self.attr[k]
        if isinstance(parent.ctx, (ast.Store, ast.Del)):
            return True
    if isinstance(parent, ast.Call):
        func = parent.func
        fname = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if fname in HEAP_MUTATORS and parent.args and parent.args[0] is node:
            return True
    # AugAssign on the attribute itself: self.attr += 1 has Store ctx already.
    return False


def _analyze_function(
    info: ModuleInfo,
    func: ast.AST,
    entry_lockset: FrozenSet[str],
    cfg: CFG,
    lock_attrs: Set[str],
    global_names: Set[str],
    callee_names: Set[str],
    method_name: str,
) -> _FunctionFacts:
    """Run the lockset dataflow over ``func`` and collect accesses/calls."""
    aliases = _alias_map(func)
    analysis = _LocksetAnalysis(entry_lockset, aliases)
    entry_states = run_forward(cfg, analysis)
    facts = _FunctionFacts(name=method_name, node=func)
    in_init = method_name in _INIT_METHODS
    for block in cfg.blocks:
        state = entry_states[block.index]
        for step in block.steps:
            kind, node = step
            if kind in ("stmt", "expr") and state != _TOP:
                _collect_step(
                    info, node, state, facts, lock_attrs, global_names,
                    callee_names, in_init,
                )
            state = analysis.transfer(state, step)
    return facts


def _collect_step(
    info: ModuleInfo,
    node: ast.AST,
    lockset: FrozenSet[str],
    facts: _FunctionFacts,
    lock_attrs: Set[str],
    global_names: Set[str],
    callee_names: Set[str],
    in_init: bool,
) -> None:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
        return  # nested definition bodies run later, under their caller's locks
    nodes = [node]
    nodes.extend(walk_scope(node))
    for sub in nodes:
        if isinstance(sub, ast.Attribute) and isinstance(sub.value, ast.Name) and sub.value.id == "self":
            if sub.attr in lock_attrs:
                continue
            write = _classify_access(info, sub)
            if write is None:
                # still record intra-class calls below
                parent = info.parent_map().get(id(sub))
                if isinstance(parent, ast.Call) and parent.func is sub and sub.attr in callee_names:
                    facts.calls.append((sub.attr, lockset))
                continue
            facts.self_accesses.append(
                Access(sub.attr, sub.lineno, write, lockset, facts.name, in_init)
            )
        elif isinstance(sub, ast.Name) and sub.id in global_names:
            write = _classify_access(info, sub)
            if write is None:
                if sub.id in callee_names:
                    parent = info.parent_map().get(id(sub))
                    if isinstance(parent, ast.Call) and parent.func is sub:
                        facts.calls.append((sub.id, lockset))
                continue
            facts.global_accesses.append(
                Access(sub.id, sub.lineno, write, lockset, facts.name, in_init)
            )
        elif isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Name) and func.id in callee_names:
                facts.calls.append((func.id, lockset))


# ------------------------------------------------------ thread-entry discovery
def _thread_pool_names(func: ast.AST) -> Set[str]:
    """Names bound to a ThreadPoolExecutor within ``func`` (assign or with-as)."""
    names: Set[str] = set()
    for node in walk_scope(func):
        value: Optional[ast.expr] = None
        target: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            value, target = node.value, node.targets[0]
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None and _is_threadpool_call(item.context_expr):
                    if isinstance(item.optional_vars, ast.Name):
                        names.add(item.optional_vars.id)
            continue
        if value is not None and target is not None and isinstance(target, ast.Name):
            if _is_threadpool_call(value):
                names.add(target.id)
    return names


def _is_threadpool_call(expr: ast.expr) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    return name == "ThreadPoolExecutor"


def thread_entry_targets(info: ModuleInfo) -> Set[Tuple[Optional[str], str]]:
    """``(class_name | None, callable_name)`` pairs spawned on other threads."""
    entries: Set[Tuple[Optional[str], str]] = set()
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        fname = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        target: Optional[ast.expr] = None
        if fname == "Thread":
            for kw in node.keywords:
                if kw.arg == "target":
                    target = kw.value
        elif fname == "to_thread" and node.args:
            target = node.args[0]
        elif fname == "submit" and node.args and isinstance(func, ast.Attribute):
            base = func.value
            enclosing = info.enclosing_function(node)
            pools = _thread_pool_names(enclosing) if enclosing is not None else set()
            if isinstance(base, ast.Name) and base.id in pools:
                target = node.args[0]
        if target is None:
            continue
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            klass = info.enclosing_class(node)
            if klass is not None:
                entries.add((klass.name, target.attr))
        elif isinstance(target, ast.Name):
            entries.add((None, target.id))
    return entries


# ----------------------------------------------------------------- aggregation
def _intersect(locksets: Sequence[FrozenSet[str]]) -> FrozenSet[str]:
    common: Optional[FrozenSet[str]] = None
    for ls in locksets:
        common = ls if common is None else common & ls
    return common if common is not None else frozenset()


def _describe_locksets(accesses: Sequence[Access]) -> str:
    seen = sorted({", ".join(sorted(a.lockset)) or "<none>" for a in accesses})
    return "; ".join("{" + s + "}" for s in seen)


class RaceRule(Rule):
    ids = (
        "race-unguarded-write",
        "race-inconsistent-lockset",
        "race-annotation-mismatch",
        "race-missing-annotation",
    )
    name = "races"
    example = """
class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self.pending = []
        threading.Thread(target=self._run).start()

    def _run(self):
        while True:
            with self._lock:
                item = self.pending.pop()        # guarded here...

    def submit(self, item):
        self.pending.append(item)               # ...but not here -> race
"""

    def check(self, info: ModuleInfo, context: AnalysisContext) -> Iterator[Finding]:
        if not info.module.startswith("repro"):
            return
        entries = thread_entry_targets(info)
        if not entries:
            return
        ann = parse_annotations(info)
        yield from self._check_classes(info, entries, ann)
        yield from self._check_globals(info, entries, ann)

    # ------------------------------------------------------------ class attrs
    def _check_classes(
        self,
        info: ModuleInfo,
        entries: Set[Tuple[Optional[str], str]],
        ann: Annotations,
    ) -> Iterator[Finding]:
        for klass in [n for n in ast.walk(info.tree) if isinstance(n, ast.ClassDef)]:
            entry_methods = {name for cls, name in entries if cls == klass.name}
            if not entry_methods:
                continue
            yield from self._check_one_class(info, klass, entry_methods, ann)

    def _check_one_class(
        self,
        info: ModuleInfo,
        klass: ast.ClassDef,
        entry_methods: Set[str],
        ann: Annotations,
    ) -> Iterator[Finding]:
        methods: Dict[str, ast.AST] = {}
        for stmt in klass.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods[stmt.name] = stmt
        if not methods:
            return
        lock_attrs = self._lock_attrs(klass)
        safe_attrs = self._threadsafe_attrs(klass)
        cfgs: Dict[str, CFG] = {name: build_cfg(fn) for name, fn in methods.items()}
        holds = {
            name: frozenset(
                {f"self.{lock}" for lock in ann.holds.get(id(fn), set())}
                | ann.holds.get(id(fn), set())
            )
            for name, fn in methods.items()
        }

        # Iterate entry-lockset inference for private helpers to a fixpoint.
        entry_ls: Dict[str, FrozenSet[str]] = dict(holds)
        facts: Dict[str, _FunctionFacts] = {}
        for _ in range(8):
            facts = {
                name: _analyze_function(
                    info, fn, entry_ls[name], cfgs[name], lock_attrs,
                    set(), set(methods), name,
                )
                for name, fn in methods.items()
            }
            call_sites: Dict[str, List[FrozenSet[str]]] = {}
            for f in facts.values():
                for callee, lockset in f.calls:
                    call_sites.setdefault(callee, []).append(lockset)
            new_entry: Dict[str, FrozenSet[str]] = {}
            for name in methods:
                inferred: FrozenSet[str] = frozenset()
                if (
                    name.startswith("_")
                    and name not in _INIT_METHODS
                    and name not in entry_methods
                    and call_sites.get(name)
                ):
                    inferred = _intersect(call_sites[name])
                new_entry[name] = holds[name] | inferred
            if new_entry == entry_ls:
                break
            entry_ls = new_entry

        contexts = self._method_contexts(info, klass, methods, facts, entry_methods)

        # Group accesses by attribute.
        by_attr: Dict[str, List[Access]] = {}
        for name, f in facts.items():
            for access in f.self_accesses:
                by_attr.setdefault(access.attr, []).append(access)
        declared_line = self._declaring_lines(klass)
        for attr in sorted(by_attr):
            if attr in safe_attrs:
                continue  # internally synchronized object (queue.Queue, Event…)
            finding = self._judge_attr(
                info, klass, attr, by_attr[attr], contexts, ann, declared_line
            )
            if finding is not None:
                yield finding

    def _lock_attrs(self, klass: ast.ClassDef) -> Set[str]:
        locks: Set[str] = set()
        for node in ast.walk(klass):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and isinstance(node.value, ast.Call)
                    ):
                        func = node.value.func
                        name = func.id if isinstance(func, ast.Name) else (
                            func.attr if isinstance(func, ast.Attribute) else None
                        )
                        if name in LOCK_FACTORIES:
                            locks.add(target.attr)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Attribute)
                        and isinstance(expr.value, ast.Name)
                        and expr.value.id == "self"
                    ):
                        locks.add(expr.attr)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in ("acquire", "release"):
                    expr = node.func.value
                    if (
                        isinstance(expr, ast.Attribute)
                        and isinstance(expr.value, ast.Name)
                        and expr.value.id == "self"
                    ):
                        locks.add(expr.attr)
        return locks

    def _threadsafe_attrs(self, klass: ast.ClassDef) -> Set[str]:
        """Attrs bound to internally synchronized objects in ``__init__``."""
        safe: Set[str] = set()
        for node in ast.walk(klass):
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            else:
                continue
            if not isinstance(value, ast.Call):
                continue
            func = value.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name not in THREADSAFE_FACTORIES:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    safe.add(target.attr)
        return safe

    def _declaring_lines(self, klass: ast.ClassDef) -> Dict[str, int]:
        """attr → line of its first ``self.attr = …`` in an init method."""
        out: Dict[str, int] = {}
        for stmt in klass.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name not in _INIT_METHODS:
                continue
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            out.setdefault(target.attr, node.lineno)
        return out

    def _method_contexts(
        self,
        info: ModuleInfo,
        klass: ast.ClassDef,
        methods: Dict[str, ast.AST],
        facts: Dict[str, _FunctionFacts],
        entry_methods: Set[str],
    ) -> Dict[str, FrozenSet[str]]:
        """Thread contexts each method can run on, propagated via self-calls."""
        # A method referenced *only* as a thread target never runs on main.
        called_names: Set[str] = set()
        for f in facts.values():
            for callee, _ in f.calls:
                called_names.add(callee)
        ctx: Dict[str, Set[str]] = {}
        for name in methods:
            ctx[name] = set()
            if name in entry_methods:
                ctx[name].add(f"thread:{name}")
            if name not in entry_methods or name in called_names or not name.startswith("_"):
                ctx[name].add("main")
        # propagate caller contexts to callees
        for _ in range(len(methods) + 1):
            changed = False
            for name, f in facts.items():
                for callee, _ in f.calls:
                    if callee in ctx and not ctx[name] <= ctx[callee]:
                        ctx[callee] |= ctx[name]
                        changed = True
            if not changed:
                break
        return {name: frozenset(c) for name, c in ctx.items()}

    def _judge_attr(
        self,
        info: ModuleInfo,
        klass: ast.ClassDef,
        attr: str,
        accesses: List[Access],
        contexts: Dict[str, FrozenSet[str]],
        ann: Annotations,
        declared_line: Dict[str, int],
    ) -> Optional[Finding]:
        live = [a for a in accesses if not a.in_init]
        writes = [a for a in live if a.is_write]
        if not writes:
            return None  # published in __init__, read-only afterwards: safe
        observed_ctx: Set[str] = set()
        for a in live:
            observed_ctx |= contexts.get(a.method, frozenset())
        if len(observed_ctx) < 2:
            return None  # single-threaded attribute
        line = declared_line.get(attr, min(a.line for a in accesses))
        annotated = self._annotated_locks(ann, klass, attr)
        common_all = _intersect([a.lockset for a in live])
        if not common_all:
            write_ctx: Set[str] = set()
            for a in writes:
                write_ctx |= contexts.get(a.method, frozenset())
            common_writes = _intersect([a.lockset for a in writes])
            if len(write_ctx) >= 2 and not common_writes:
                return Finding(
                    path=info.path, line=line, rule="race-unguarded-write",
                    message=(
                        f"'{klass.name}.{attr}' is written from multiple thread "
                        f"contexts ({', '.join(sorted(write_ctx))}) with no common "
                        f"lock; observed locksets: {_describe_locksets(writes)}"
                    ),
                )
            return Finding(
                path=info.path, line=line, rule="race-inconsistent-lockset",
                message=(
                    f"'{klass.name}.{attr}' is shared across thread contexts "
                    f"({', '.join(sorted(observed_ctx))}) but its accesses hold "
                    f"no common lock; observed locksets: {_describe_locksets(live)}"
                ),
            )
        # Consistently guarded: cross-check the annotation.
        common_names = {tok[len("self."):] for tok in common_all if tok.startswith("self.")}
        common_names |= {tok for tok in common_all if "." not in tok}
        if annotated:
            if not (annotated & common_names):
                held = sorted(common_names or common_all)[0]
                return Finding(
                    path=info.path, line=line, rule="race-annotation-mismatch",
                    message=(
                        f"'{klass.name}.{attr}' is annotated `# guarded-by: "
                        f"{sorted(annotated)[0]}` but every access holds "
                        f"'{held}' instead; fix the annotation or the locking"
                    ),
                )
            return None
        suggestion = sorted(common_names or common_all)[0]
        return Finding(
            path=info.path, line=line, rule="race-missing-annotation",
            message=(
                f"'{klass.name}.{attr}' is shared across thread contexts and "
                f"consistently guarded by '{suggestion}' but carries no "
                f"annotation; declare `# guarded-by: {suggestion}` on its "
                "assignment so the lock-guard rule enforces it"
            ),
        )

    def _annotated_locks(
        self, ann: Annotations, klass: ast.ClassDef, attr: str
    ) -> Set[str]:
        owners = ann.attr_classes.get(attr, set())
        if owners and klass.name not in owners:
            return set()
        return set(ann.attr_locks.get(attr, set()))

    # --------------------------------------------------------- module globals
    def _check_globals(
        self,
        info: ModuleInfo,
        entries: Set[Tuple[Optional[str], str]],
        ann: Annotations,
    ) -> Iterator[Finding]:
        entry_funcs = {name for cls, name in entries if cls is None}
        module_globals = self._module_globals(info)
        if not module_globals:
            return
        functions: Dict[str, ast.AST] = {}
        for stmt in info.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions[stmt.name] = stmt
        if not functions:
            return
        relevant_entries = entry_funcs & set(functions)
        if not relevant_entries:
            return
        lock_globals = {
            name for name in module_globals
            if self._is_lock_global(info, name)
        }
        targets = module_globals - lock_globals
        facts: Dict[str, _FunctionFacts] = {}
        holds = {
            name: frozenset(ann.holds.get(id(fn), set()))
            for name, fn in functions.items()
        }
        for name, fn in functions.items():
            facts[name] = _analyze_function(
                info, fn, holds[name], build_cfg(fn), set(), targets,
                set(functions), name,
            )
        ctx: Dict[str, Set[str]] = {}
        for name in functions:
            ctx[name] = {"main"} if name not in relevant_entries else {"main", f"thread:{name}"}
            if name in relevant_entries and name.startswith("_"):
                ctx[name] = {f"thread:{name}"}
        for _ in range(len(functions) + 1):
            changed = False
            for name, f in facts.items():
                for callee, _ in f.calls:
                    if callee in ctx and not ctx[name] <= ctx[callee]:
                        ctx[callee] |= ctx[name]
                        changed = True
            if not changed:
                break
        by_name: Dict[str, List[Access]] = {}
        for f in facts.values():
            for access in f.global_accesses:
                by_name.setdefault(access.attr, []).append(access)
        for gname in sorted(by_name):
            accesses = by_name[gname]
            writes = [a for a in accesses if a.is_write]
            if not writes:
                continue
            observed_ctx: Set[str] = set()
            for a in accesses:
                observed_ctx |= ctx.get(a.method, set())
            if len(observed_ctx) < 2:
                continue
            common = _intersect([a.lockset for a in accesses])
            if common:
                continue
            write_ctx: Set[str] = set()
            for a in writes:
                write_ctx |= ctx.get(a.method, set())
            common_writes = _intersect([a.lockset for a in writes])
            line = min(a.line for a in accesses)
            if len(write_ctx) >= 2 and not common_writes:
                yield Finding(
                    path=info.path, line=line, rule="race-unguarded-write",
                    message=(
                        f"module global '{gname}' is written from multiple "
                        f"thread contexts ({', '.join(sorted(write_ctx))}) with "
                        f"no common lock; observed locksets: {_describe_locksets(writes)}"
                    ),
                )
            else:
                yield Finding(
                    path=info.path, line=line, rule="race-inconsistent-lockset",
                    message=(
                        f"module global '{gname}' is shared across thread "
                        f"contexts but its accesses hold no common lock; "
                        f"observed locksets: {_describe_locksets(accesses)}"
                    ),
                )

    def _module_globals(self, info: ModuleInfo) -> Set[str]:
        names: Set[str] = set()
        for stmt in info.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
        return names

    def _is_lock_global(self, info: ModuleInfo, name: str) -> bool:
        for stmt in info.tree.body:
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        func = stmt.value.func
                        fname = func.id if isinstance(func, ast.Name) else (
                            func.attr if isinstance(func, ast.Attribute) else None
                        )
                        if fname in LOCK_FACTORIES:
                            return True
        return False

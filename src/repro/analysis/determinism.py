"""Determinism rules for modules reachable from deterministic-count producers.

The stack's headline guarantee is bit-identical MIS/coloring/aggregation
counts across every backend × parts × delta-format cell.  Any module a
deterministic kernel imports (transitively, via *explicit* imports) must
therefore be free of:

* ``det-wallclock`` — wall-clock reads (``time.time``/``monotonic``/…).
  ``perf_counter`` is the one legal timer: it only feeds elapsed-seconds stat
  fields, never control flow, and the equivalence gates pin that.
* ``det-random``   — the ``random`` module and unseeded numpy generators.
  ``np.random.default_rng(seed)`` with an explicit seed is fine.
* ``det-set-iter`` — iterating a bare ``set`` where order can leak into
  results (for-loops, list/generator/dict comprehensions, ``list()``/
  ``tuple()``).  Membership tests and order-insensitive folds stay legal.
* ``det-id-order`` — ordering by ``id()`` (CPython address order).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from .engine import AnalysisContext, Rule
from .findings import Finding
from .modules import ModuleInfo

#: Modules whose outputs must be bit-identical everywhere (plus their
#: explicit-import closure within the analyzed corpus).
DETERMINISM_SEEDS: Tuple[str, ...] = (
    "repro.mis",
    "repro.coloring",
    "repro.coarsen",
    "repro.parallel.partitioned",
    "repro.service.repair",
)

_WALLCLOCK_ATTRS = {"time", "monotonic", "time_ns", "monotonic_ns", "clock"}
_SEEDED_FACTORIES = {"default_rng", "RandomState", "Generator", "SeedSequence"}
#: Order-insensitive consumers: iterating a set through these is legal.
_ORDER_FREE_CALLS = {"sorted", "min", "max", "sum", "len", "any", "all", "frozenset", "set"}


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Nodes in ``scope``'s own body, not descending into nested defs/classes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _local_set_names(scope: ast.AST) -> Set[str]:
    """Names assigned a set-valued expression (and never a non-set one)."""
    set_names: Set[str] = set()
    poisoned: Set[str] = set()
    for node in _scope_nodes(scope):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                if _is_set_expr(node.value, set_names):
                    set_names.add(target.id)
                else:
                    poisoned.add(target.id)
    return set_names - poisoned


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(node.right, set_names)
    return False


class DeterminismRule(Rule):
    ids = ("det-wallclock", "det-random", "det-set-iter", "det-id-order")
    name = "determinism"
    example = """
def pick_roots(candidates):
    chosen = {v for v in candidates if v % 2}
    return [v for v in chosen]      # det-set-iter: hash order leaks into
                                    # results; iterate sorted(chosen) instead
"""

    def check(self, info: ModuleInfo, context: AnalysisContext) -> Iterator[Finding]:
        scope = context.reachable_from(DETERMINISM_SEEDS)
        if info.module not in scope:
            return
        yield from self._check_imports(info)
        yield from self._check_calls(info)
        yield from self._check_set_iteration(info)

    # ---------------------------------------------------------------- imports
    def _check_imports(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self._finding(
                            info, node, "det-random",
                            "the stdlib `random` module is process-seeded; "
                            "use a seeded np.random.default_rng instead",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    yield self._finding(
                        info, node, "det-random",
                        "the stdlib `random` module is process-seeded; "
                        "use a seeded np.random.default_rng instead",
                    )
                elif node.module == "time":
                    bad = sorted(
                        a.name for a in node.names if a.name in _WALLCLOCK_ATTRS
                    )
                    if bad:
                        yield self._finding(
                            info, node, "det-wallclock",
                            f"wall-clock import ({', '.join(bad)}) in a "
                            "deterministic module; only perf_counter timing is legal",
                        )

    # ------------------------------------------------------------------ calls
    def _check_calls(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                base = func.value
                # time.time(), time.monotonic(), ...
                if (
                    isinstance(base, ast.Name)
                    and base.id == "time"
                    and func.attr in _WALLCLOCK_ATTRS
                ):
                    yield self._finding(
                        info, node, "det-wallclock",
                        f"time.{func.attr}() in a deterministic module; "
                        "only perf_counter timing is legal",
                    )
                # datetime.now() / datetime.datetime.now()
                elif func.attr in ("now", "utcnow") and "datetime" in ast.dump(base):
                    yield self._finding(
                        info, node, "det-wallclock",
                        f"datetime {func.attr}() in a deterministic module",
                    )
                # random.shuffle(...), random.random(), ...
                elif isinstance(base, ast.Name) and base.id == "random":
                    yield self._finding(
                        info, node, "det-random",
                        f"random.{func.attr}() draws from process-global state",
                    )
                # np.random.<attr>(...)
                elif (
                    isinstance(base, ast.Attribute)
                    and base.attr == "random"
                    and isinstance(base.value, ast.Name)
                    and base.value.id in ("np", "numpy")
                ):
                    if func.attr in _SEEDED_FACTORIES:
                        if not node.args and not node.keywords:
                            yield self._finding(
                                info, node, "det-random",
                                f"np.random.{func.attr}() without a seed",
                            )
                    else:
                        yield self._finding(
                            info, node, "det-random",
                            f"np.random.{func.attr}() uses the global numpy "
                            "RNG; construct a seeded default_rng",
                        )
            elif isinstance(func, ast.Name):
                if (
                    func.id in _SEEDED_FACTORIES
                    and not node.args
                    and not node.keywords
                ):
                    yield self._finding(
                        info, node, "det-random", f"{func.id}() without a seed"
                    )
                elif func.id == "id" and len(node.args) == 1:
                    yield self._finding(
                        info, node, "det-id-order",
                        "id() exposes CPython address order; key on vertex "
                        "indices or stable tokens instead",
                    )
            # sorted(..., key=id) / min(..., key=id)
            for kw in node.keywords:
                if (
                    kw.arg == "key"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id == "id"
                ):
                    yield self._finding(
                        info, node, "det-id-order",
                        "ordering by key=id exposes CPython address order",
                    )

    # -------------------------------------------------------------- set iter
    def _check_set_iteration(self, info: ModuleInfo) -> Iterator[Finding]:
        scopes: List[ast.AST] = [info.tree]
        scopes.extend(
            n for n in ast.walk(info.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            set_names = _local_set_names(scope)
            for node in _scope_nodes(scope):
                if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(
                    node.iter, set_names
                ):
                    yield self._set_iter_finding(info, node)
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                    for gen in node.generators:
                        if _is_set_expr(gen.iter, set_names):
                            yield self._set_iter_finding(info, node)
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple")
                    and len(node.args) == 1
                    and _is_set_expr(node.args[0], set_names)
                ):
                    yield self._set_iter_finding(info, node)

    def _set_iter_finding(self, info: ModuleInfo, node: ast.AST) -> Finding:
        return self._finding(
            info, node, "det-set-iter",
            "iterating a bare set leaks hash order into results; iterate a "
            "sorted/np.unique sequence (membership tests are fine)",
        )

    def _finding(self, info: ModuleInfo, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(
            path=info.path,
            line=getattr(node, "lineno", 0),
            rule=rule,
            message=message,
        )

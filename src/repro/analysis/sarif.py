"""SARIF 2.1.0 emission for analyzer reports.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_ is
the interchange format GitHub code scanning ingests; CI uploads the file via
``github/codeql-action/upload-sarif`` so findings render as inline review
annotations instead of a log to grep.  The emitter maps:

* one analyzer run → one ``run`` with the full rule catalogue in
  ``tool.driver.rules`` (id, short description from the owning family);
* one :class:`~repro.analysis.findings.Finding` → one ``result`` with
  ``ruleId``, ``level: error``, the message text, and a single physical
  location (repo-relative URI + start line);
* suppressed/baselined findings → ``results`` with a ``suppressions`` entry
  (kind ``inSource`` / ``external``) so reviewers can still see them without
  the run failing.

Only stable, deterministic fields are emitted — no timestamps, GUIDs, or
absolute paths — so two runs over the same tree produce byte-identical files
(the same property the ``--jobs`` gate relies on).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .engine import AnalysisReport, Rule, all_rules
from .findings import BAD_SUPPRESSION_RULE, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "repro-analysis"
TOOL_URI = "https://example.invalid/repro/src/repro/analysis"


def _rule_catalogue(rules: Sequence[Rule]) -> List[Dict[str, object]]:
    out: List[Dict[str, object]] = []
    seen = set()
    for rule in rules:
        for rule_id in rule.ids:
            if rule_id in seen:
                continue
            seen.add(rule_id)
            out.append(
                {
                    "id": rule_id,
                    "name": rule_id.replace("-", " ").title().replace(" ", ""),
                    "shortDescription": {
                        "text": f"{rule.name} family: {rule_id}",
                    },
                }
            )
    out.append(
        {
            "id": BAD_SUPPRESSION_RULE,
            "name": "BadSuppression",
            "shortDescription": {
                "text": "engine: suppression comment without a justification",
            },
        }
    )
    out.sort(key=lambda r: str(r["id"]))
    return out


def _result(finding: Finding, suppression_kind: str = "") -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(finding.line, 1)},
                }
            }
        ],
    }
    if suppression_kind:
        result["suppressions"] = [{"kind": suppression_kind}]
    return result


def report_to_sarif(report: AnalysisReport) -> Dict[str, object]:
    """Render ``report`` as a SARIF 2.1.0 log dict (stable field order)."""
    results: List[Dict[str, object]] = []
    for finding in report.findings:
        results.append(_result(finding))
    for finding in report.suppressed:
        results.append(_result(finding, suppression_kind="inSource"))
    for finding in report.baselined:
        results.append(_result(finding, suppression_kind="external"))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": _rule_catalogue(all_rules()),
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def write_sarif(path: str, report: AnalysisReport) -> None:
    """Write ``report`` to ``path`` as deterministic, sorted-key JSON."""
    payload = report_to_sarif(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

"""Lock-discipline rule: a static race detector driven by annotations.

Declare the lock protecting an attribute on its declaring line::

    self.stats = ServiceStats()  # guarded-by: _stats_lock
    mutations: List[_Mutation] = field(default_factory=list)  # guarded-by: lock
    _POOLS: Dict[int, Pool] = {}  # guarded-by: _POOL_LOCK   (module global)

Every later read or write of ``<base>.stats`` must then sit inside
``with <base>._stats_lock:`` (any enclosing ``with``, nested or not, counts;
a single-assignment alias of the lock object is recognised).  Functions whose
*callers* hold the lock are annotated on their ``def`` line::

    def _apply_mutation(self, entry: _Entry) -> None:  # holds: lock

Constructors (``__init__``/``__post_init__``) of the declaring class are
exempt for ``self.<attr>`` — the object is not yet shared.  Manual
``lock.acquire()``/``release()`` pairs are deliberately *not* recognised:
the contract is the ``with`` statement, so hand-rolled acquire sites show up
as findings and need an explicit justified suppression.

Findings: ``lock-guard`` (unguarded access), ``lock-annotation`` (an
annotation comment that attaches to no statement — usually a typo).

The parsed :class:`Annotations` are also consumed by the lockset-inference
race rule (:mod:`repro.analysis.races`), which cross-checks what the code
*actually* holds against what these comments *claim* — a contradicted or
missing annotation surfaces there as ``race-annotation-mismatch`` /
``race-missing-annotation``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .engine import AnalysisContext, Rule
from .findings import Finding, comment_tokens
from .modules import ModuleInfo

GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")
HOLDS_RE = re.compile(
    r"#\s*holds:\s*(?P<locks>[A-Za-z_][A-Za-z0-9_]*(?:\s*,\s*[A-Za-z_][A-Za-z0-9_]*)*)"
)


@dataclass
class Annotations:
    """Parsed lock annotations for one module."""

    #: attribute name -> lock names that may guard it
    attr_locks: Dict[str, Set[str]] = field(default_factory=dict)
    #: attribute name -> class names that declare it (for __init__ exemption)
    attr_classes: Dict[str, Set[str]] = field(default_factory=dict)
    #: module-global name -> lock names
    global_locks: Dict[str, Set[str]] = field(default_factory=dict)
    #: id(FunctionDef) -> lock names the caller is promised to hold
    holds: Dict[int, Set[str]] = field(default_factory=dict)
    #: annotation comments that attached to nothing
    dangling: List[Tuple[int, str]] = field(default_factory=list)


def _statement_at(info: ModuleInfo, line: int) -> Optional[ast.stmt]:
    """The assignment statement carrying a ``guarded-by`` comment on ``line``."""
    exact: Optional[ast.stmt] = None
    spanning: Optional[ast.stmt] = None
    for node in ast.walk(info.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        if node.lineno == line:
            exact = node
            break
        end = getattr(node, "end_lineno", node.lineno)
        if node.lineno <= line <= end:
            spanning = node
    return exact or spanning


def _function_at(info: ModuleInfo, line: int) -> Optional[ast.AST]:
    """The ``def`` whose signature contains ``line`` (for ``holds`` comments)."""
    for node in ast.walk(info.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            body_start = node.body[0].lineno if node.body else node.lineno + 1
            if node.lineno <= line < body_start:
                return node
    return None


def parse_annotations(info: ModuleInfo) -> Annotations:
    ann = Annotations()
    for lineno, text in comment_tokens(info.source):
        guarded = GUARDED_RE.search(text)
        if guarded is not None:
            _attach_guarded(info, ann, lineno, guarded.group("lock"))
        holds = HOLDS_RE.search(text)
        if holds is not None:
            func = _function_at(info, lineno)
            if func is None:
                ann.dangling.append((lineno, "holds"))
            else:
                locks = {part.strip() for part in holds.group("locks").split(",")}
                ann.holds.setdefault(id(func), set()).update(locks)
    return ann


def _attach_guarded(info: ModuleInfo, ann: Annotations, line: int, lock: str) -> None:
    stmt = _statement_at(info, line)
    if stmt is None:
        ann.dangling.append((line, "guarded-by"))
        return
    targets: List[ast.expr]
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    else:
        targets = [stmt.target]
    attached = False
    for target in targets:
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            # self.<attr> = ... inside a method
            klass = info.enclosing_class(stmt)
            ann.attr_locks.setdefault(target.attr, set()).add(lock)
            if klass is not None:
                ann.attr_classes.setdefault(target.attr, set()).add(klass.name)
            attached = True
        elif isinstance(target, ast.Name):
            klass = info.enclosing_class(stmt)
            if klass is not None and info.enclosing_function(stmt) is None:
                # class-body declaration (dataclass field)
                ann.attr_locks.setdefault(target.id, set()).add(lock)
                ann.attr_classes.setdefault(target.id, set()).add(klass.name)
                attached = True
            elif info.enclosing_function(stmt) is None:
                # module-level global
                ann.global_locks.setdefault(target.id, set()).add(lock)
                attached = True
    if not attached:
        ann.dangling.append((line, "guarded-by"))


def _alias_map(info: ModuleInfo, func: Optional[ast.AST]) -> Dict[str, str]:
    """Single-assignment ``name = <expr>`` aliases within ``func``."""
    if func is None:
        return {}
    values: Dict[str, Optional[str]] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                dump = ast.unparse(node.value)
                if target.id in values and values[target.id] != dump:
                    values[target.id] = None  # reassigned: not a stable alias
                else:
                    values[target.id] = dump
    return {name: dump for name, dump in values.items() if dump is not None}


class LockDisciplineRule(Rule):
    ids = ("lock-guard", "lock-annotation")
    name = "lock-discipline"
    example = """
class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def bump(self):
        self.count += 1             # lock-guard: not inside `with self._lock:`
"""

    def check(self, info: ModuleInfo, context: AnalysisContext) -> Iterator[Finding]:
        ann = parse_annotations(info)
        for line, kind in ann.dangling:
            yield Finding(
                path=info.path, line=line, rule="lock-annotation",
                message=f"`# {kind}:` annotation does not attach to a "
                + ("def statement" if kind == "holds" else "declaring assignment"),
            )
        if not ann.attr_locks and not ann.global_locks:
            return
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Attribute) and node.attr in ann.attr_locks:
                finding = self._check_attr_access(info, ann, node)
                if finding is not None:
                    yield finding
            elif isinstance(node, ast.Name) and node.id in ann.global_locks:
                finding = self._check_global_access(info, ann, node)
                if finding is not None:
                    yield finding

    # --------------------------------------------------------------- helpers
    def _held_guards(
        self, info: ModuleInfo, ann: Annotations, node: ast.AST
    ) -> Tuple[Set[str], Set[str]]:
        """(with-item expression dumps in scope, holds-locks of enclosing defs)."""
        func = info.enclosing_function(node)
        aliases = _alias_map(info, func)
        with_exprs: Set[str] = set()
        holds: Set[str] = set()
        for anc in info.ancestors(node):
            if isinstance(anc, (ast.With, ast.AsyncWith)):
                for item in anc.items:
                    dump = ast.unparse(item.context_expr)
                    with_exprs.add(dump)
                    resolved = aliases.get(dump)
                    if resolved is not None:
                        with_exprs.add(resolved)
            elif isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                holds.update(ann.holds.get(id(anc), set()))
        return with_exprs, holds

    def _check_attr_access(
        self, info: ModuleInfo, ann: Annotations, node: ast.Attribute
    ) -> Optional[Finding]:
        attr = node.attr
        # `obj.name(...)` invokes a method that happens to share the guarded
        # attribute's name (per-module namespace); the method body is checked
        # at its definition via `# holds:`, not at every call site.
        parent = info.parent_map().get(id(node))
        if isinstance(parent, ast.Call) and parent.func is node:
            return None
        base_dump = ast.unparse(node.value)
        # Constructor of the declaring class builds the object privately.
        func = info.enclosing_function(node)
        if (
            base_dump == "self"
            and isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
            and func.name in ("__init__", "__post_init__")
        ):
            klass = info.enclosing_class(node)
            if klass is not None and klass.name in ann.attr_classes.get(attr, set()):
                return None
        with_exprs, holds = self._held_guards(info, ann, node)
        locks = ann.attr_locks[attr]
        if holds & locks:
            return None
        for lock in locks:
            if f"{base_dump}.{lock}" in with_exprs:
                return None
        lock = sorted(locks)[0]
        return Finding(
            path=info.path,
            line=node.lineno,
            rule="lock-guard",
            message=(
                f"'{base_dump}.{attr}' is guarded by '{lock}' but accessed "
                f"outside `with {base_dump}.{lock}:` (or annotate the "
                f"function `# holds: {lock}`)"
            ),
        )

    def _check_global_access(
        self, info: ModuleInfo, ann: Annotations, node: ast.Name
    ) -> Optional[Finding]:
        func = info.enclosing_function(node)
        if func is None:
            return None  # module import time is single-threaded
        with_exprs, holds = self._held_guards(info, ann, node)
        locks = ann.global_locks[node.id]
        if holds & locks:
            return None
        if any(lock in with_exprs for lock in locks):
            return None
        lock = sorted(locks)[0]
        return Finding(
            path=info.path,
            line=node.lineno,
            rule="lock-guard",
            message=(
                f"module global '{node.id}' is guarded by '{lock}' but "
                f"accessed outside `with {lock}:` (or annotate the function "
                f"`# holds: {lock}`)"
            ),
        )

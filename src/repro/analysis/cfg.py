"""Intraprocedural control-flow graphs over stdlib ``ast``.

The dataflow rules (lockset inference in :mod:`repro.analysis.races`, dtype
propagation in :mod:`repro.analysis.dtypes`) need *where control can flow*,
not just *what syntax exists*: a lock acquired in one branch of an ``if`` is
not held after the join, a ``with`` releases at every exit of its body, a
loop body can run zero or many times.  This module lowers one function body
(or a module body) into basic blocks of :class:`Step` events connected by
explicit successor edges, which :mod:`repro.analysis.dataflow` then iterates
to a fixpoint.

Design points:

* **Steps, not statements.**  A block holds a list of tagged steps.  Simple
  statements appear as ``("stmt", node)``.  Compound statements contribute
  their *evaluated parts* as ``("expr", node)`` steps (an ``if`` test, a
  ``for`` iterable, a ``return`` value) so accesses inside them are analyzed
  at the right program point, while their bodies become separate blocks.
  ``with`` statements additionally contribute ``("with_enter", node)`` /
  ``("with_exit", node)`` steps, the hooks the lockset transfer function
  keys on.
* **Exceptional edges are coarse.**  Every ``try`` body gets an edge from
  its entry to each handler (an exception may fire before any statement
  completes) and from its end (an exception may fire in the last statement).
  ``finally`` bodies are placed on the fall-through path; the early-exit
  copies (``return``/``break`` inside ``try``) flow through a shared
  ``finally`` block rather than a duplicated one.  This over-approximates
  paths, which is the safe direction for a must-hold lockset analysis.
* **No interprocedural edges.**  Calls are ordinary expression steps; the
  race rule layers its own call-context inference on top.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: One atomic event inside a basic block: ``(kind, node)`` where ``kind`` is
#: ``"stmt"`` (a simple statement), ``"expr"`` (an evaluated fragment of a
#: compound statement), ``"with_enter"`` or ``"with_exit"`` (both carrying
#: the ``ast.With``/``ast.AsyncWith`` node).
Step = Tuple[str, ast.AST]


@dataclass
class BasicBlock:
    """A straight-line run of steps with explicit successor edges."""

    index: int
    steps: List[Step] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)

    def add_succ(self, index: int) -> None:
        if index not in self.succs:
            self.succs.append(index)


@dataclass
class CFG:
    """A control-flow graph for one function (or module) body.

    ``entry`` is always block 0; ``exit_index`` is a distinguished empty
    block every ``return`` / fall-off-the-end path reaches.
    """

    blocks: List[BasicBlock]
    entry: int
    exit_index: int

    def block(self, index: int) -> BasicBlock:
        return self.blocks[index]

    def preds(self) -> Dict[int, List[int]]:
        """Predecessor lists, derived from the successor edges."""
        out: Dict[int, List[int]] = {b.index: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.succs:
                out[succ].append(block.index)
        return out


class _Builder:
    """Single-use CFG builder; ``build_cfg`` is the public entry point."""

    def __init__(self) -> None:
        self.blocks: List[BasicBlock] = []
        self.exit_index = -1
        #: (break_target, continue_target) stack for enclosing loops.
        self._loops: List[Tuple[int, int]] = []
        #: Innermost-first stack of open ``with`` nodes; break/continue/return
        #: inside a ``with`` body must release before leaving.
        self._open_withs: List[ast.AST] = []
        #: How many withs were open when each enclosing loop started.
        self._loop_with_depths: List[int] = []

    # ------------------------------------------------------------ primitives
    def new_block(self) -> BasicBlock:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def _exit_withs_into(self, block: BasicBlock, down_to: int) -> None:
        """Emit with_exit steps for every open ``with`` deeper than ``down_to``."""
        for node in reversed(self._open_withs[down_to:]):
            block.steps.append(("with_exit", node))

    # ------------------------------------------------------------- statements
    def build(self, body: Sequence[ast.stmt]) -> CFG:
        entry = self.new_block()
        exit_block = self.new_block()
        self.exit_index = exit_block.index
        last = self._run_body(body, entry)
        if last is not None:
            last.add_succ(self.exit_index)
        return CFG(blocks=self.blocks, entry=entry.index, exit_index=self.exit_index)

    def _run_body(
        self, body: Sequence[ast.stmt], current: Optional[BasicBlock]
    ) -> Optional[BasicBlock]:
        """Thread ``body`` through ``current``; returns the fall-through block
        (``None`` when every path left via return/break/continue/raise)."""
        for stmt in body:
            if current is None:
                # Unreachable code after a jump; keep analyzing it in a fresh
                # disconnected block so its accesses still get *some* state.
                current = self.new_block()
            current = self._run_stmt(stmt, current)
        return current

    def _run_stmt(self, stmt: ast.stmt, current: BasicBlock) -> Optional[BasicBlock]:
        if isinstance(stmt, ast.If):
            return self._run_if(stmt, current)
        if isinstance(stmt, (ast.While,)):
            return self._run_while(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._run_for(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._run_with(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._run_try(stmt, current)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                current.steps.append(("expr", stmt.value))
            self._exit_withs_into(current, 0)
            current.add_succ(self.exit_index)
            return None
        if isinstance(stmt, ast.Raise):
            current.steps.append(("stmt", stmt))
            current.add_succ(self.exit_index)
            return None
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._exit_withs_into(current, self._loop_with_depth())
                current.add_succ(self._loops[-1][0])
            return None
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self._exit_withs_into(current, self._loop_with_depth())
                current.add_succ(self._loops[-1][1])
            return None
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested definitions are separate CFGs; the def itself binds a name.
            current.steps.append(("stmt", stmt))
            return current
        current.steps.append(("stmt", stmt))
        return current

    def _loop_with_depth(self) -> int:
        """How many ``with`` levels were open when the innermost loop started."""
        return self._loop_with_depths[-1] if self._loop_with_depths else 0

    # --------------------------------------------------------------- compound
    def _run_if(self, stmt: ast.If, current: BasicBlock) -> Optional[BasicBlock]:
        current.steps.append(("expr", stmt.test))
        then_block = self.new_block()
        current.add_succ(then_block.index)
        then_end = self._run_body(stmt.body, then_block)
        if stmt.orelse:
            else_block = self.new_block()
            current.add_succ(else_block.index)
            else_end = self._run_body(stmt.orelse, else_block)
        else:
            else_end = current  # falls through when the test is false
        if then_end is None and else_end is None:
            return None
        join = self.new_block()
        if then_end is not None:
            then_end.add_succ(join.index)
        if else_end is not None:
            else_end.add_succ(join.index)
        return join

    def _run_while(self, stmt: ast.While, current: BasicBlock) -> Optional[BasicBlock]:
        head = self.new_block()
        current.add_succ(head.index)
        head.steps.append(("expr", stmt.test))
        after = self.new_block()
        body_block = self.new_block()
        head.add_succ(body_block.index)
        head.add_succ(after.index)
        self._loops.append((after.index, head.index))
        self._loop_with_depths.append(len(self._open_withs))
        body_end = self._run_body(stmt.body, body_block)
        self._loops.pop()
        self._loop_with_depths.pop()
        if body_end is not None:
            body_end.add_succ(head.index)
        if stmt.orelse:
            # ``else`` runs on normal loop exit; keep it on the after path.
            else_end = self._run_body(stmt.orelse, after)
            return else_end
        return after

    def _run_for(self, stmt: "ast.For | ast.AsyncFor", current: BasicBlock) -> Optional[BasicBlock]:
        current.steps.append(("expr", stmt.iter))
        head = self.new_block()
        current.add_succ(head.index)
        head.steps.append(("expr", stmt.target))
        after = self.new_block()
        body_block = self.new_block()
        head.add_succ(body_block.index)
        head.add_succ(after.index)
        self._loops.append((after.index, head.index))
        self._loop_with_depths.append(len(self._open_withs))
        body_end = self._run_body(stmt.body, body_block)
        self._loops.pop()
        self._loop_with_depths.pop()
        if body_end is not None:
            body_end.add_succ(head.index)
        if stmt.orelse:
            else_end = self._run_body(stmt.orelse, after)
            return else_end
        return after

    def _run_with(self, stmt: "ast.With | ast.AsyncWith", current: BasicBlock) -> Optional[BasicBlock]:
        for item in stmt.items:
            current.steps.append(("expr", item.context_expr))
        current.steps.append(("with_enter", stmt))
        self._open_withs.append(stmt)
        body_end = self._run_body(stmt.body, current)
        self._open_withs.pop()
        if body_end is None:
            return None
        body_end.steps.append(("with_exit", stmt))
        return body_end

    def _run_try(self, stmt: ast.Try, current: BasicBlock) -> Optional[BasicBlock]:
        body_block = self.new_block()
        current.add_succ(body_block.index)
        handler_blocks: List[BasicBlock] = []
        for handler in stmt.handlers:
            hb = self.new_block()
            # An exception may fire before the first body statement completes.
            current.add_succ(hb.index)
            handler_blocks.append(hb)
        body_end = self._run_body(stmt.body, body_block)
        ends: List[Optional[BasicBlock]] = []
        if body_end is not None:
            # ...or after the last one.
            for hb in handler_blocks:
                body_end.add_succ(hb.index)
            if stmt.orelse:
                ends.append(self._run_body(stmt.orelse, body_end))
            else:
                ends.append(body_end)
        for handler, hb in zip(stmt.handlers, handler_blocks):
            ends.append(self._run_body(handler.body, hb))
        live = [e for e in ends if e is not None]
        if stmt.finalbody:
            fin = self.new_block()
            for end in live:
                end.add_succ(fin.index)
            if not live:
                # every path raised/returned; finally still runs on the way out
                current.add_succ(fin.index)
            fin_end = self._run_body(stmt.finalbody, fin)
            return fin_end
        if not live:
            return None
        join = self.new_block()
        for end in live:
            end.add_succ(join.index)
        return join


def build_cfg(node: "ast.AST | Sequence[ast.stmt]") -> CFG:
    """Build the CFG of a function/module node (or a raw statement list)."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
        body: Sequence[ast.stmt] = node.body
    elif isinstance(node, ast.AST):
        raise TypeError(f"cannot build a CFG for {type(node).__name__}")
    else:
        body = node
    return _Builder().build(body)

"""CLI for the contract checker: ``python -m repro.analysis [paths...]``.

Exit status: 0 when the tree is clean (after suppressions and the baseline),
1 when unsuppressed findings remain, 2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from .engine import all_rules, run_analysis
from .findings import load_baseline, write_baseline


def _default_paths() -> List[str]:
    for candidate in ("src/repro", "repro"):
        if os.path.isdir(candidate):
            return [candidate]
    return []


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based contract checker for the repro stack "
        "(determinism, lock discipline, byte-meter coverage, picklability).",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="committed baseline of accepted findings to subtract",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="write current unsuppressed findings to FILE and exit 0",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full report as JSON on stdout",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list rule families and their finding ids",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}: {', '.join(rule.ids)}")
        return 0

    paths = list(args.paths) or _default_paths()
    if not paths:
        print("error: no paths given and no src/repro directory found", file=sys.stderr)
        return 2

    baseline = None
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    try:
        report = run_analysis(paths=paths, baseline=baseline)
    except (OSError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, report.findings)
        print(
            f"wrote {len(report.findings)} finding(s) to {args.write_baseline}"
        )
        return 0

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0 if report.clean else 1

    for finding in report.findings:
        print(finding.format())
        print(f"    suppress with: {finding.suppression_hint()}")
    tail = (
        f"{report.modules_checked} module(s) checked, "
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined"
    )
    if report.clean:
        print(f"analysis clean: {tail}")
        return 0
    print(tail)
    return 1


if __name__ == "__main__":
    sys.exit(main())

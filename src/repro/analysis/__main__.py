"""CLI for the contract checker: ``python -m repro.analysis [paths...]``.

Exit status: 0 when the tree is clean (after suppressions and the baseline),
1 when unsuppressed findings remain, 2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
import textwrap
from typing import List, Optional, Sequence

from .engine import all_rules, run_analysis
from .findings import load_baseline, write_baseline


def _default_paths() -> List[str]:
    for candidate in ("src/repro", "repro"):
        if os.path.isdir(candidate):
            return [candidate]
    return []


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based contract checker for the repro stack "
        "(determinism, lock discipline, byte-meter coverage, picklability).",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="committed baseline of accepted findings to subtract",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="write current unsuppressed findings to FILE and exit 0",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full report as JSON on stdout",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list rule families and their finding ids",
    )
    parser.add_argument(
        "--explain", metavar="RULE", default=None,
        help="print a rule family's documentation and an example, then exit "
        "(accepts a family name like 'races' or a finding id like "
        "'race-unguarded-write')",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="check modules with N worker processes (output is byte-identical "
        "to serial; default 1)",
    )
    parser.add_argument(
        "--sarif", metavar="FILE", default=None,
        help="also write the report as a SARIF 2.1.0 log for code-scanning "
        "upload",
    )
    return parser


def explain_rule(query: str) -> Optional[str]:
    """Documentation text for a rule family (by name or finding id)."""
    for rule in all_rules():
        if query != rule.name and query not in rule.ids:
            continue
        module = importlib.import_module(type(rule).__module__)
        parts = [
            f"{rule.name}: {', '.join(rule.ids)}",
            "",
            (module.__doc__ or "(no documentation)").strip(),
        ]
        if rule.example:
            parts += ["", "Example:", textwrap.indent(rule.example.strip("\n"), "    ")]
        return "\n".join(parts)
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # stdout reader (e.g. ``| head``) went away; not our error.  Detach
        # stdout so the interpreter's shutdown flush cannot raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}: {', '.join(rule.ids)}")
        return 0

    if args.explain is not None:
        text = explain_rule(args.explain)
        if text is None:
            known = ", ".join(sorted(r.name for r in all_rules()))
            print(
                f"error: unknown rule {args.explain!r} (families: {known}; "
                "see --list-rules for finding ids)",
                file=sys.stderr,
            )
            return 2
        print(text)
        return 0

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2

    paths = list(args.paths) or _default_paths()
    if not paths:
        print("error: no paths given and no src/repro directory found", file=sys.stderr)
        return 2

    baseline = None
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    try:
        report = run_analysis(paths=paths, baseline=baseline, jobs=args.jobs)
    except (OSError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.sarif is not None:
        from .sarif import write_sarif

        write_sarif(args.sarif, report)

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, report.findings)
        print(
            f"wrote {len(report.findings)} finding(s) to {args.write_baseline}"
        )
        return 0

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0 if report.clean else 1

    for finding in report.findings:
        print(finding.format())
        print(f"    suppress with: {finding.suppression_hint()}")
    tail = (
        f"{report.modules_checked} module(s) checked, "
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined"
    )
    if report.clean:
        print(f"analysis clean: {tail}")
        return 0
    print(tail)
    return 1


if __name__ == "__main__":
    sys.exit(main())

"""repro.analysis — AST-based contract checker for the repro stack.

The runtime suites pin the stack's load-bearing guarantees (bit-identical
deterministic counts, honest byte accounting, thread-safe service state) by
*executing* specific matrix cells.  This package enforces the same contracts
*statically*, over every code path, with four rule families:

* determinism  — no wall-clock/unseeded-randomness/set-iteration/`id()`
  ordering in modules reachable from deterministic-count producers;
* lock-guard   — attributes annotated ``# guarded-by: <lock>`` are only
  touched under ``with <base>.<lock>:`` (or in a ``# holds: <lock>`` method);
* bytes-*      — raw sockets and pickle stay inside ``repro.parallel.transport``
  so the byte meter can't be bypassed;
* purity       — callables crossing the backend seam are module-level
  (picklable) and kernels take ``backend=`` instead of hard-wiring one.

Run it with ``python -m repro.analysis [--baseline FILE] [--json] [paths...]``.
See ``src/repro/analysis/README.md`` for the annotation and suppression
grammar.
"""

from __future__ import annotations

from .engine import AnalysisReport, all_rules, run_analysis
from .findings import Finding, load_baseline, write_baseline
from .modules import ModuleInfo

__all__ = [
    "AnalysisReport",
    "Finding",
    "ModuleInfo",
    "all_rules",
    "load_baseline",
    "run_analysis",
    "write_baseline",
]

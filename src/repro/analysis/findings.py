"""Findings, suppressions, and the committed baseline format.

A :class:`Finding` identifies one contract violation.  For baseline matching
the identity is ``(path, rule, message)`` — line numbers are deliberately
excluded so unrelated edits above a baselined finding don't resurrect it.

Suppressions are inline comments on the offending line::

    self._cache.clear()  # analysis-ok: lock-guard -- at-fork child is single-threaded

The justification after ``--`` is mandatory; a suppression without one is
itself reported (rule ``bad-suppression``) so silent waivers can't accumulate.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

BaselineKey = Tuple[str, str, str]

#: ``# analysis-ok: rule-a, rule-b -- why this is fine``
SUPPRESSION_RE = re.compile(
    r"#\s*analysis-ok:\s*(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
    r"(?:\s*--\s*(?P<why>.*))?\s*$"
)

BAD_SUPPRESSION_RULE = "bad-suppression"


@dataclass(frozen=True, order=True)
class Finding:
    """One contract violation at ``path:line``."""

    path: str
    line: int
    rule: str
    message: str

    @property
    def baseline_key(self) -> BaselineKey:
        return (self.path, self.rule, self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def suppression_hint(self) -> str:
        return f"# analysis-ok: {self.rule} -- <justification>"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# analysis-ok`` comment on one physical line."""

    line: int
    rules: Tuple[str, ...]
    justification: str

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())


def comment_tokens(source: str) -> List[Tuple[int, str]]:
    """``(line, text)`` for every real comment token in ``source``.

    Tokenizing (rather than scanning raw lines) keeps annotation examples in
    docstrings and string literals from registering as live annotations.
    """
    out: List[Tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.string))
    except tokenize.TokenError:  # pragma: no cover - source already parsed
        pass
    return out


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every inline ``# analysis-ok`` suppression from ``source``."""
    out: List[Suppression] = []
    for lineno, text in comment_tokens(source):
        match = SUPPRESSION_RE.search(text)
        if match is None:
            continue
        rules = tuple(part.strip() for part in match.group("rules").split(","))
        why = match.group("why") or ""
        out.append(Suppression(line=lineno, rules=rules, justification=why.strip()))
    return out


def load_baseline(path: str) -> "Counter[BaselineKey]":
    """Load a committed baseline file into a multiset of finding keys."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("version") != 1:
        raise ValueError(f"unsupported baseline format in {path!r} (want version 1)")
    keys: "Counter[BaselineKey]" = Counter()
    for entry in payload.get("findings", []):
        keys[(str(entry["path"]), str(entry["rule"]), str(entry["message"]))] += 1
    return keys


def write_baseline(path: str, findings: List[Finding]) -> None:
    """Persist ``findings`` as a version-1 baseline file (sorted, stable)."""
    payload = {
        "version": 1,
        "findings": [
            {"path": f.path, "rule": f.rule, "message": f.message}
            for f in sorted(findings)
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(
    findings: List[Finding], baseline: Optional["Counter[BaselineKey]"]
) -> Tuple[List[Finding], List[Finding]]:
    """Split ``findings`` into (new, baselined) against a key multiset."""
    if not baseline:
        return list(findings), []
    remaining = Counter(baseline)
    fresh: List[Finding] = []
    matched: List[Finding] = []
    for finding in findings:
        if remaining.get(finding.baseline_key, 0) > 0:
            remaining[finding.baseline_key] -= 1
            matched.append(finding)
        else:
            fresh.append(finding)
    return fresh, matched

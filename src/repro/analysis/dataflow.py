"""Forward dataflow over :mod:`repro.analysis.cfg` graphs.

A tiny, deterministic worklist engine.  An analysis supplies:

* ``entry_state()`` — the state at the function entry;
* ``unreachable()`` — the ⊤ state assumed for not-yet-visited blocks (for a
  must-analysis this is "everything holds", so joins only ever *refine*);
* ``join(a, b)`` — the confluence operator applied where edges meet;
* ``transfer(state, step)`` — the effect of one :data:`~repro.analysis.cfg.Step`.

States must be immutable values with ``==`` (frozensets, tuples, mapping
proxies rendered as tuples…): the engine detects the fixpoint by equality.
Iteration order is block-index order, so results are reproducible regardless
of dict/set internals — the analyzer's own output feeds byte-identity gates.
"""

from __future__ import annotations

from typing import Dict, Generic, List, TypeVar

from .cfg import CFG, Step

S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """Base class for one forward dataflow problem."""

    def entry_state(self) -> S:
        raise NotImplementedError

    def unreachable(self) -> S:
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def transfer(self, state: S, step: Step) -> S:
        raise NotImplementedError


def block_out(analysis: ForwardAnalysis[S], state: S, steps: List[Step]) -> S:
    for step in steps:
        state = analysis.transfer(state, step)
    return state


def run_forward(cfg: CFG, analysis: ForwardAnalysis[S], max_passes: int = 64) -> Dict[int, S]:
    """Iterate ``analysis`` to a fixpoint; returns block-index → entry state.

    ``max_passes`` bounds full sweeps over the graph as a defence against a
    non-monotone transfer function; real analyses converge in a handful.
    """
    entry_in: Dict[int, S] = {}
    entry_in[cfg.entry] = analysis.entry_state()
    order = [block.index for block in cfg.blocks]
    for _ in range(max_passes):
        changed = False
        for index in order:
            block = cfg.block(index)
            if index == cfg.entry:
                state = entry_in[cfg.entry]
            elif index in entry_in:
                state = entry_in[index]
            else:
                continue  # not yet reached
            out = block_out(analysis, state, block.steps)
            for succ in block.succs:
                if succ not in entry_in:
                    entry_in[succ] = out
                    changed = True
                else:
                    joined = analysis.join(entry_in[succ], out)
                    if joined != entry_in[succ]:
                        entry_in[succ] = joined
                        changed = True
        if not changed:
            break
    # Blocks never reached keep the analysis's unreachable state so their
    # steps can still be replayed (e.g. dead code after a return).
    for block in cfg.blocks:
        entry_in.setdefault(block.index, analysis.unreachable())
    return entry_in

"""Rule engine: corpus loading, reachability, suppression, baseline matching."""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import (
    BAD_SUPPRESSION_RULE,
    BaselineKey,
    Finding,
    apply_baseline,
)
from .modules import ModuleInfo


class Rule:
    """Base class for one rule family.

    Subclasses set ``ids`` (every finding rule-id they may emit) and implement
    :meth:`check`, yielding :class:`Finding` objects for one module.
    ``example`` is a short offending snippet shown by ``--explain`` (it
    mirrors the committed fixtures under ``tests/analysis/fixtures/``).
    """

    ids: Tuple[str, ...] = ()
    name: str = "rule"
    example: str = ""

    def check(self, info: ModuleInfo, context: "AnalysisContext") -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for mypy


class AnalysisContext:
    """The analyzed corpus: every module, keyed by dotted name, plus caches."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: List[ModuleInfo] = list(modules)
        self.by_name: Dict[str, ModuleInfo] = {m.module: m for m in self.modules}
        self.by_path: Dict[str, ModuleInfo] = {m.path: m for m in self.modules}
        self._reach_cache: Dict[Tuple[str, ...], Set[str]] = {}

    def reachable_from(self, seeds: Iterable[str]) -> Set[str]:
        """Corpus modules reachable from ``seeds`` via explicit imports.

        A seed names either a module or a package prefix; ``repro.mis`` seeds
        every ``repro.mis.*`` module in the corpus.  Edges are the explicit
        import statements of each module (see ModuleInfo.imported_modules),
        restricted to modules present in the corpus.
        """
        key = tuple(sorted(seeds))
        cached = self._reach_cache.get(key)
        if cached is not None:
            return cached
        frontier: List[str] = []
        for seed in key:
            for name in self.by_name:
                if name == seed or name.startswith(seed + "."):
                    frontier.append(name)
        seen: Set[str] = set(frontier)
        while frontier:
            current = frontier.pop()
            info = self.by_name.get(current)
            if info is None:
                continue
            for dep in self._resolve_edges(info):
                if dep not in seen:
                    seen.add(dep)
                    frontier.append(dep)
        self._reach_cache[key] = seen
        return seen

    def _resolve_edges(self, info: ModuleInfo) -> Set[str]:
        """Corpus modules ``info`` explicitly imports.

        ``from pkg import name`` resolves to ``pkg.name`` when that is a
        corpus module, else to ``pkg`` — so ``from . import primitives``
        depends on the submodule, not on the package ``__init__`` (whose
        imports would drag unrelated siblings into reachability).
        """
        deps: Set[str] = set()
        for base, names in info.import_edges():
            if not names:
                if base in self.by_name:
                    deps.add(base)
                continue
            matched = False
            for name in names:
                full = f"{base}.{name}" if base else name
                if full in self.by_name:
                    deps.add(full)
                    matched = True
            if not matched and base in self.by_name:
                deps.add(base)
        return deps


@dataclass
class AnalysisReport:
    """Outcome of one analyzer run over a corpus."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    modules_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "modules_checked": self.modules_checked,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
        }


def all_rules() -> List[Rule]:
    """The six shipped rule families, in deterministic order."""
    from .bytemeter import ByteMeterRule
    from .determinism import DeterminismRule
    from .dtypes import DtypeRule
    from .locks import LockDisciplineRule
    from .purity import PurityRule
    from .races import RaceRule

    return [
        DeterminismRule(),
        LockDisciplineRule(),
        ByteMeterRule(),
        PurityRule(),
        RaceRule(),
        DtypeRule(),
    ]


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                for name in sorted(names):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path!r}")
    return out


def load_corpus(paths: Sequence[str]) -> AnalysisContext:
    return AnalysisContext([ModuleInfo.from_path(p) for p in collect_files(paths)])


def _suppression_findings(info: ModuleInfo) -> Iterator[Finding]:
    for sup in info.suppressions:
        if not sup.justified:
            yield Finding(
                path=info.path,
                line=sup.line,
                rule=BAD_SUPPRESSION_RULE,
                message=(
                    "suppression for "
                    + ", ".join(sup.rules)
                    + " has no justification (append `-- <why this is safe>`)"
                ),
            )


def _check_chunk(payload: Tuple[Sequence[str], Sequence[int]]) -> List[Finding]:
    """Worker body for ``jobs > 1``: check one chunk of module indices.

    Workers reparse the corpus from the full path list rather than receiving
    pickled :class:`ModuleInfo` objects — the parent-map caches are keyed by
    node ``id()`` and would go silently stale across a pickle round-trip.
    Each worker sees the *whole* corpus (reachability and cross-module rules
    need it) but only checks its own chunk, so the union over workers is
    exactly the serial finding multiset.
    """
    paths, indices = payload
    context = load_corpus(paths)
    active = all_rules()
    raw: List[Finding] = []
    for index in indices:
        info = context.modules[index]
        raw.extend(_suppression_findings(info))
        for rule in active:
            raw.extend(rule.check(info, context))
    return raw


def run_analysis(
    paths: Optional[Sequence[str]] = None,
    context: Optional[AnalysisContext] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional["Counter[BaselineKey]"] = None,
    jobs: int = 1,
) -> AnalysisReport:
    """Run ``rules`` over the corpus and split findings by suppression/baseline.

    ``jobs > 1`` fans the per-module rule pass out over a process pool in
    chunks.  Findings are sorted before suppression/baseline matching either
    way, so parallel output is byte-identical to serial.  Custom ``rules``
    always run serially (worker processes rebuild the default rule set; they
    cannot receive arbitrary rule instances).
    """
    if context is None:
        if paths is None:
            raise ValueError("run_analysis needs paths or a prebuilt context")
        context = load_corpus(paths)

    raw: List[Finding] = []
    if jobs > 1 and rules is None and len(context.modules) > 1:
        import multiprocessing

        all_paths = [m.path for m in context.modules]
        chunks = [
            list(range(start, len(all_paths), jobs)) for start in range(jobs)
        ]
        chunks = [c for c in chunks if c]
        with multiprocessing.Pool(processes=len(chunks)) as pool:
            for part in pool.map(_check_chunk, [(all_paths, c) for c in chunks]):
                raw.extend(part)
    else:
        active: Sequence[Rule] = all_rules() if rules is None else rules
        for info in context.modules:
            raw.extend(_suppression_findings(info))
            for rule in active:
                raw.extend(rule.check(info, context))
    raw.sort()

    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        info = context.by_path.get(finding.path)
        rules_here = info.suppressed_rules_at(finding.line) if info else ()
        if finding.rule != BAD_SUPPRESSION_RULE and finding.rule in rules_here:
            suppressed.append(finding)
        else:
            kept.append(finding)

    fresh, matched = apply_baseline(kept, baseline)
    return AnalysisReport(
        findings=fresh,
        suppressed=suppressed,
        baselined=matched,
        modules_checked=len(context.modules),
    )

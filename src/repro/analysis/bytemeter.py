"""Byte-meter coverage: raw sockets and pickle stay inside the transport seam.

``repro.parallel.transport`` is the single module allowed to touch
``socket`` and ``pickle`` — it frames every message and charges
``shipped_nbytes`` in both directions, and the measured-vs-logical CI gate
audits it.  Any other ``repro.*`` module importing either library (or calling
``pickle.dumps``/``loads`` through some other binding) would open an
unmetered side channel, so it's flagged:

* ``bytes-socket`` — ``import socket`` / ``from socket import ...`` or a
  ``<x>.send*/recv*`` call on a name bound from the socket module;
* ``bytes-pickle`` — ``import pickle``/``cPickle``/``_pickle`` or a
  ``pickle.dumps/loads/dump/load/Pickler/Unpickler`` call.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from .engine import AnalysisContext, Rule
from .findings import Finding
from .modules import ModuleInfo

#: The one module where raw sockets and pickle are the point.
TRANSPORT_MODULES: Tuple[str, ...] = ("repro.parallel.transport",)

_PICKLE_MODULES = {"pickle", "_pickle", "cPickle", "cloudpickle", "dill"}
_PICKLE_CALLS = {"dumps", "loads", "dump", "load", "Pickler", "Unpickler"}


class ByteMeterRule(Rule):
    ids = ("bytes-socket", "bytes-pickle")
    name = "byte-meter"
    example = """
# anywhere outside repro.parallel.transport:
import pickle                       # bytes-pickle: unmetered side channel

def ship(sock, payload):
    sock.send(pickle.dumps(payload))  # bytes beyond shipped_nbytes accounting
"""

    def check(self, info: ModuleInfo, context: AnalysisContext) -> Iterator[Finding]:
        if not info.module.startswith("repro."):
            return
        if info.module in TRANSPORT_MODULES:
            return
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "socket":
                        yield self._finding(info, node, "bytes-socket", "import socket")
                    elif root in _PICKLE_MODULES:
                        yield self._finding(
                            info, node, "bytes-pickle", f"import {root}"
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                root = node.module.split(".")[0]
                if root == "socket":
                    yield self._finding(info, node, "bytes-socket", "from socket import")
                elif root in _PICKLE_MODULES:
                    yield self._finding(info, node, "bytes-pickle", f"from {root} import")
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                func = node.func
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id in _PICKLE_MODULES
                    and func.attr in _PICKLE_CALLS
                ):
                    yield self._finding(
                        info, node, "bytes-pickle",
                        f"{func.value.id}.{func.attr}() call",
                    )

    def _finding(self, info: ModuleInfo, node: ast.AST, rule: str, what: str) -> Finding:
        kind = "socket I/O" if rule == "bytes-socket" else "pickle serialisation"
        return Finding(
            path=info.path,
            line=getattr(node, "lineno", 0),
            rule=rule,
            message=(
                f"{what}: raw {kind} outside repro.parallel.transport bypasses "
                "the shipped_nbytes byte meter; route through the transport seam"
            ),
        )

"""Picklability and backend purity at the execution seam.

* ``pickle-callable`` — the first argument to ``map_graphs``/
  ``map_partitions*``/``run_async`` crosses a process (or socket) boundary,
  so it must be a module-level callable.  Lambdas and functions defined
  inside another function close over frames and fail (or silently diverge)
  under the chunked and distributed backends.  ``functools.partial`` is
  unwrapped — its underlying callable is checked instead.
* ``backend-concrete`` — kernels take ``backend=`` and resolve through the
  registry; instantiating a concrete ``*Backend`` class anywhere else
  hard-wires an execution strategy and breaks the equivalence matrix.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from .engine import AnalysisContext, Rule
from .findings import Finding
from .modules import ModuleInfo

#: Seam entry points whose first positional argument must be picklable.
SEAM_CALLS: Tuple[str, ...] = (
    "map_graphs",
    "map_partitions",
    "map_partitions_resident",
    "run_async",
)

#: Concrete backend classes; only these modules may instantiate them.
CONCRETE_BACKENDS: Tuple[str, ...] = (
    "NumpyBackend",
    "ChunkedBackend",
    "ThreadedBackend",
    "NumbaBackend",
    "DistributedBackend",
)
BACKEND_HOME_MODULES: Tuple[str, ...] = (
    "repro.parallel.backends",
    "repro.parallel.distributed",
)


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside another function (unpicklable)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if inner is node:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(inner.name)
    return names


class PurityRule(Rule):
    ids = ("pickle-callable", "backend-concrete")
    name = "purity"
    example = """
def run(backend, graphs):
    def kernel(g):                  # nested: closes over this frame
        return g.num_vertices
    return backend.map_graphs(kernel, graphs)   # pickle-callable
"""

    def check(self, info: ModuleInfo, context: AnalysisContext) -> Iterator[Finding]:
        if not info.module.startswith("repro."):
            return
        nested = _nested_function_names(info.tree)
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._call_name(node.func)
            if name in SEAM_CALLS and node.args:
                finding = self._check_callable(info, node, node.args[0], nested)
                if finding is not None:
                    yield finding
            if (
                name in CONCRETE_BACKENDS
                and info.module not in BACKEND_HOME_MODULES
            ):
                yield Finding(
                    path=info.path,
                    line=node.lineno,
                    rule="backend-concrete",
                    message=(
                        f"instantiating {name} outside the backend registry; "
                        "accept backend= and resolve via repro.parallel.backends"
                    ),
                )

    def _call_name(self, func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def _check_callable(
        self, info: ModuleInfo, call: ast.Call, fn: ast.expr, nested: Set[str]
    ) -> Optional[Finding]:
        seam = self._call_name(call.func) or "seam call"
        # functools.partial(fn, ...) -> check the wrapped callable.
        if isinstance(fn, ast.Call) and self._call_name(fn.func) == "partial" and fn.args:
            return self._check_callable(info, call, fn.args[0], nested)
        if isinstance(fn, ast.Lambda):
            return Finding(
                path=info.path,
                line=fn.lineno,
                rule="pickle-callable",
                message=(
                    f"lambda passed to {seam}() cannot cross the process "
                    "boundary; hoist it to a module-level function"
                ),
            )
        if isinstance(fn, ast.Name) and fn.id in nested and info.enclosing_function(call):
            return Finding(
                path=info.path,
                line=fn.lineno,
                rule="pickle-callable",
                message=(
                    f"'{fn.id}' passed to {seam}() is defined inside a "
                    "function and is not picklable; hoist it to module level"
                ),
            )
        return None

"""Cluster multicolor Gauss-Seidel (Algorithm 4) — the paper's second use case.

The preconditioner coarsens the matrix graph (Algorithm 3 aggregation by default),
colors the *coarse* graph, and treats each aggregate as a cluster: clusters of the
same color share no couplings, so they are processed in parallel, while the rows
*inside* each cluster are swept sequentially (classical Gauss-Seidel order). Locally
the method is therefore exact GS, which is why it converges in fewer iterations than
point multicolor GS, and its setup colors a graph that is an order of magnitude
smaller — both effects Table VI reports and this implementation reproduces.

The symmetric variant loops over the colors forward then backward and reverses the
within-cluster row order on the backward pass, exactly as the paper describes.

Vectorisation note: because same-color clusters are mutually independent, the k-th row
of every cluster of a color can be updated simultaneously; the implementation
therefore pre-groups rows by (color, position-within-cluster) and performs one batched
update per group, preserving the sequential dependency *within* each cluster while
executing across clusters in data-parallel fashion — the same schedule a GPU
implementation would use with one team per cluster.
"""

from __future__ import annotations

import inspect
import time
from typing import Callable, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..coarsen.aggregation import Aggregation
from ..coarsen.coarse import coarse_graph
from ..coarsen.mis2_agg import mis2_aggregation
from ..coloring.greedy import greedy_color
from ..graph.build import from_scipy
from ..graph.csr import CSRGraph
from ..parallel.backends import ExecutionBackend, resolve_backend

__all__ = ["ClusterMulticolorGaussSeidel"]

AggregationFn = Callable[[CSRGraph], Aggregation]


class ClusterMulticolorGaussSeidel:
    """Cluster multicolor (symmetric) Gauss-Seidel preconditioner (Algorithm 4).

    Parameters
    ----------
    A:
        System matrix (CSR).
    aggregation_fn:
        Coarsening used to form the clusters (Algorithm 3 by default; Algorithm 2 is
        the paper's other option).
    sweeps:
        Number of sweeps per :meth:`apply`.
    symmetric:
        Apply symmetric sweeps (forward colors then backward colors, with the row
        order inside each cluster reversed on the backward pass).
    backend:
        Execution backend (name or instance) used for the setup-phase coarsening
        and coloring kernels; forwarded to ``aggregation_fn`` when its signature
        accepts a ``backend`` parameter. ``None`` uses the default. The setup is
        bit-identical across backends.
    """

    def __init__(
        self,
        A: sp.spmatrix,
        aggregation_fn: AggregationFn = mis2_aggregation,
        sweeps: int = 1,
        symmetric: bool = True,
        backend: "Optional[str | ExecutionBackend]" = None,
    ) -> None:
        setup_start = time.perf_counter()
        B = resolve_backend(backend)
        self.backend = B.name
        self.A = sp.csr_matrix(A).astype(np.float64)
        if self.A.shape[0] != self.A.shape[1]:
            raise ValueError("A must be square")
        diag = self.A.diagonal()
        if np.any(diag == 0):
            raise ValueError("cluster Gauss-Seidel requires a nonzero diagonal")
        self._diag = diag
        self.sweeps = int(sweeps)
        self.symmetric = bool(symmetric)

        # --- Setup (Algorithm 4 lines 3-5): coarsen, then color the coarse graph.
        fine_graph = from_scipy(self.A)
        try:
            accepts_backend = "backend" in inspect.signature(aggregation_fn).parameters
        except (TypeError, ValueError):
            accepts_backend = False
        # A backend the caller already bound into aggregation_fn (e.g. via
        # functools.partial(mis2_aggregation, backend=...)) takes precedence —
        # forwarding ours would silently override it.
        prebound = "backend" in (getattr(aggregation_fn, "keywords", None) or {})
        if accepts_backend and not prebound:
            self.aggregation = aggregation_fn(fine_graph, backend=B)
        else:
            self.aggregation = aggregation_fn(fine_graph)
        self.coarse = coarse_graph(fine_graph, self.aggregation)
        self.coloring = greedy_color(self.coarse, backend=B)
        self.num_colors = self.coloring.num_colors

        # Group rows by (color of their cluster, position within their cluster) and
        # pre-slice the corresponding row blocks of A.
        labels = self.aggregation.labels
        cluster_color = self.coloring.colors  # per aggregate
        order = np.lexsort((np.arange(labels.size), labels))  # rows sorted by cluster
        sorted_rows = order
        sorted_clusters = labels[order]
        # Position of each row within its cluster (0-based).
        cluster_sizes = self.aggregation.sizes()
        starts = np.zeros(self.aggregation.num_aggregates + 1, dtype=np.int64)
        np.cumsum(cluster_sizes, out=starts[1:])
        position = np.arange(labels.size) - starts[sorted_clusters]
        row_color = cluster_color[sorted_clusters]
        self.max_cluster_size = int(cluster_sizes.max()) if cluster_sizes.size else 0

        self._forward_groups: List[Tuple[np.ndarray, sp.csr_matrix, np.ndarray]] = []
        self._backward_groups: List[Tuple[np.ndarray, sp.csr_matrix, np.ndarray]] = []
        for color in range(self.num_colors):
            in_color = row_color == color
            for pos in range(self.max_cluster_size):
                rows = sorted_rows[in_color & (position == pos)]
                if rows.size == 0:
                    continue
                self._forward_groups.append(
                    (rows, sp.csr_matrix(self.A[rows]), diag[rows])
                )
        for color in reversed(range(self.num_colors)):
            in_color = row_color == color
            for pos in reversed(range(self.max_cluster_size)):
                rows = sorted_rows[in_color & (position == pos)]
                if rows.size == 0:
                    continue
                self._backward_groups.append(
                    (rows, sp.csr_matrix(self.A[rows]), diag[rows])
                )
        self.setup_seconds = time.perf_counter() - setup_start

    # ------------------------------------------------------------------ application
    @staticmethod
    def _run_groups(groups, b: np.ndarray, x: np.ndarray) -> np.ndarray:
        for rows, block, dcluster in groups:
            residual = b[rows] - block @ x + dcluster * x[rows]
            x[rows] = residual / dcluster
        return x

    def apply(self, b: np.ndarray, x: Optional[np.ndarray] = None) -> np.ndarray:
        """Apply the configured number of cluster multicolor (S)GS sweeps."""
        b = np.asarray(b, dtype=np.float64)
        out = np.zeros_like(b) if x is None else np.array(x, dtype=np.float64, copy=True)
        for _ in range(self.sweeps):
            out = self._run_groups(self._forward_groups, b, out)
            if self.symmetric:
                out = self._run_groups(self._backward_groups, b, out)
        return out

    def as_preconditioner(self):
        """Return ``M(r) -> z`` applying the sweeps with a zero initial guess."""
        return lambda r: self.apply(r)

"""Point multicolor Gauss-Seidel (Deveci et al. 2016) — the Table VI baseline.

A distance-1 coloring of the matrix graph partitions the rows into independent sets;
rows within one color have no couplings among themselves, so they can be updated in
parallel in Gauss-Seidel fashion, one color after another. The price is convergence:
the update order is no longer the natural sequential order, so the preconditioned
solver typically needs more iterations than classical GS — the gap cluster multicolor
GS (Algorithm 4) closes.

Setup = one greedy coloring of the fine matrix graph (the dominant cost the paper
reports for both methods in Table VI). Apply = for each color, a vectorised batch
update of all rows of that color.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from ..coloring.greedy import greedy_color
from ..graph.build import from_scipy

__all__ = ["MulticolorGaussSeidel"]


class MulticolorGaussSeidel:
    """Point multicolor (symmetric) Gauss-Seidel preconditioner.

    Parameters
    ----------
    A:
        System matrix (CSR). The coloring is computed on its symmetrized graph.
    sweeps:
        Number of (symmetric) sweeps per :meth:`apply`.
    symmetric:
        Sweep colors forward then backward (SGS), the configuration Table VI uses.
    """

    def __init__(self, A: sp.spmatrix, sweeps: int = 1, symmetric: bool = True) -> None:
        setup_start = time.perf_counter()
        self.A = sp.csr_matrix(A).astype(np.float64)
        n = self.A.shape[0]
        if self.A.shape[0] != self.A.shape[1]:
            raise ValueError("A must be square")
        diag = self.A.diagonal()
        if np.any(diag == 0):
            raise ValueError("multicolor Gauss-Seidel requires a nonzero diagonal")
        self._diag = diag
        self.sweeps = int(sweeps)
        self.symmetric = bool(symmetric)
        graph = from_scipy(self.A)
        self.coloring = greedy_color(graph)
        self.color_sets: List[np.ndarray] = self.coloring.color_classes()
        self.num_colors = self.coloring.num_colors
        # Pre-slice the per-color row blocks and diagonals once so each sweep is a
        # handful of SpMVs (the analogue of the pre-built color-batched kernels in
        # Kokkos Kernels).
        self._blocks = [
            (rows, sp.csr_matrix(self.A[rows]), diag[rows]) for rows in self.color_sets
        ]
        self.setup_seconds = time.perf_counter() - setup_start

    # ------------------------------------------------------------------ application
    def _sweep(self, b: np.ndarray, x: np.ndarray, order) -> np.ndarray:
        for rows, block, dcolor in order:
            if rows.size == 0:
                continue
            # Rows of one color are mutually independent: a Jacobi-style batch update
            # restricted to them is exactly the Gauss-Seidel update in this ordering.
            residual = b[rows] - block @ x + dcolor * x[rows]
            x[rows] = residual / dcolor
        return x

    def apply(self, b: np.ndarray, x: Optional[np.ndarray] = None) -> np.ndarray:
        """Apply the configured number of multicolor (S)GS sweeps."""
        b = np.asarray(b, dtype=np.float64)
        out = np.zeros_like(b) if x is None else np.array(x, dtype=np.float64, copy=True)
        for _ in range(self.sweeps):
            out = self._sweep(b, out, self._blocks)
            if self.symmetric:
                out = self._sweep(b, out, list(reversed(self._blocks)))
        return out

    def as_preconditioner(self):
        """Return ``M(r) -> z`` applying the sweeps with a zero initial guess."""
        return lambda r: self.apply(r)

"""Classical (sequential) Gauss-Seidel and symmetric Gauss-Seidel.

Classical GS updates the unknowns in order, each update using the most recent values
of all previous unknowns — which is why it parallelises poorly and why the paper's
multicolor variants exist. It is included as the convergence reference: cluster
multicolor GS approaches its iteration counts (each cluster is swept sequentially),
while point multicolor GS trades iterations for parallelism.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["gauss_seidel_sweep", "symmetric_gauss_seidel_sweep", "PointGaussSeidel"]


def _split(A: sp.csr_matrix):
    lower = sp.tril(A, k=0, format="csr")  # D + L
    upper = sp.triu(A, k=0, format="csr")  # D + U
    return lower, upper


def gauss_seidel_sweep(
    A: sp.spmatrix,
    b: np.ndarray,
    x: Optional[np.ndarray] = None,
    backward: bool = False,
) -> np.ndarray:
    """One forward (or backward) Gauss-Seidel sweep on ``A x = b``.

    Implemented with a sparse triangular solve of the (D+L) (or (D+U)) factor, which
    is mathematically identical to the row-by-row update loop.
    """
    A = sp.csr_matrix(A)
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros_like(b) if x is None else np.array(x, dtype=np.float64, copy=True)
    lower, upper = _split(A)
    if not backward:
        rhs = b - (A - lower) @ x
        return spla.spsolve_triangular(lower, rhs, lower=True)
    rhs = b - (A - upper) @ x
    return spla.spsolve_triangular(upper, rhs, lower=False)


def symmetric_gauss_seidel_sweep(
    A: sp.spmatrix, b: np.ndarray, x: Optional[np.ndarray] = None
) -> np.ndarray:
    """One symmetric Gauss-Seidel sweep (forward then backward)."""
    x = gauss_seidel_sweep(A, b, x, backward=False)
    return gauss_seidel_sweep(A, b, x, backward=True)


class PointGaussSeidel:
    """Reusable classical (S)GS preconditioner object.

    Parameters
    ----------
    A:
        System matrix.
    sweeps:
        Number of sweeps per application.
    symmetric:
        Apply symmetric sweeps (forward+backward) — required when used as a CG
        preconditioner.
    """

    def __init__(self, A: sp.spmatrix, sweeps: int = 1, symmetric: bool = True) -> None:
        self.A = sp.csr_matrix(A)
        if np.any(self.A.diagonal() == 0):
            raise ValueError("Gauss-Seidel requires a nonzero diagonal")
        self.sweeps = int(sweeps)
        self.symmetric = bool(symmetric)

    def apply(self, b: np.ndarray, x: Optional[np.ndarray] = None) -> np.ndarray:
        """Apply ``sweeps`` (S)GS sweeps starting from ``x`` (zero by default)."""
        out = x
        for _ in range(self.sweeps):
            if self.symmetric:
                out = symmetric_gauss_seidel_sweep(self.A, b, out)
            else:
                out = gauss_seidel_sweep(self.A, b, out)
        return out

    def as_preconditioner(self):
        """Return ``M(r) -> z`` applying the sweeps with a zero initial guess."""
        return lambda r: self.apply(r)

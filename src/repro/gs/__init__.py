"""Gauss-Seidel preconditioners.

Three flavours, matching the comparison of the paper's Table VI:

* :class:`PointGaussSeidel` — classical sequential (S)GS, the convergence reference.
* :class:`MulticolorGaussSeidel` — point multicolor (S)GS built on a distance-1
  coloring of the fine matrix graph (Deveci et al. 2016); the parallel baseline.
* :class:`ClusterMulticolorGaussSeidel` — Algorithm 4: MIS-2 aggregation coarsens the
  graph, the coarse graph is colored, and same-color clusters are swept in parallel
  while rows inside each cluster are swept sequentially.
"""

from __future__ import annotations

from .point import (
    PointGaussSeidel,
    gauss_seidel_sweep,
    symmetric_gauss_seidel_sweep,
)
from .multicolor import MulticolorGaussSeidel
from .cluster import ClusterMulticolorGaussSeidel

__all__ = [
    "PointGaussSeidel",
    "gauss_seidel_sweep",
    "symmetric_gauss_seidel_sweep",
    "MulticolorGaussSeidel",
    "ClusterMulticolorGaussSeidel",
]

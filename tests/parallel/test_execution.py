"""Tests for the execution spaces (Serial / Vector / Thread)."""

import numpy as np
import pytest

from repro.parallel import (
    SerialSpace,
    ThreadSpace,
    VectorSpace,
    available_spaces,
    default_space,
)


@pytest.fixture(params=["serial", "vector", "threads"])
def space(request):
    return {
        "serial": SerialSpace(),
        "vector": VectorSpace(),
        "threads": ThreadSpace(num_threads=3),
    }[request.param]


class TestParallelFor:
    def test_writes_all_indices(self, space):
        out = np.zeros(17, dtype=np.int64)

        def functor(i):
            out[i] = np.asarray(i) * 2

        space.parallel_for(17, functor)
        assert out.tolist() == [2 * i for i in range(17)]

    def test_zero_iterations(self, space):
        called = []
        space.parallel_for(0, lambda i: called.append(i))
        assert called == []

    def test_negative_rejected(self, space):
        with pytest.raises(ValueError):
            space.parallel_for(-1, lambda i: None)


class TestParallelReduce:
    def test_sum_min_max_match_numpy(self, space):
        values = np.arange(1, 101, dtype=np.int64)
        assert space.parallel_reduce(values, "sum") == values.sum()
        assert space.parallel_reduce(values, "min") == 1
        assert space.parallel_reduce(values, "max") == 100

    def test_unknown_op(self, space):
        with pytest.raises(ValueError):
            space.parallel_reduce(np.arange(3), "median")

    def test_empty_min_rejected(self, space):
        with pytest.raises(ValueError):
            space.parallel_reduce(np.array([], dtype=np.int64), "min")


class TestParallelScan:
    def test_scan_matches_exclusive_prefix(self, space):
        values = np.array([3, 1, 4, 1, 5])
        assert space.parallel_scan(values).tolist() == [0, 3, 4, 8, 9, 14]


class TestMapIndices:
    def test_map_indices_identical_across_spaces(self):
        fn = lambda idx: idx * idx + 1
        results = [s.map_indices(23, fn) for s in available_spaces()]
        for r in results[1:]:
            assert np.array_equal(results[0], r)

    def test_map_indices_empty(self, space):
        assert space.map_indices(0, lambda idx: idx).size == 0


class TestConfiguration:
    def test_default_space_is_vector(self):
        assert isinstance(default_space(), VectorSpace)

    def test_thread_space_validation(self):
        with pytest.raises(ValueError):
            ThreadSpace(num_threads=0)

    def test_thread_space_default_threads_positive(self):
        assert ThreadSpace().num_threads >= 1

    def test_available_spaces_names(self):
        names = {s.name for s in available_spaces()}
        assert names == {"serial", "vector", "threads"}

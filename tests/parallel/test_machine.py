"""Tests for the device catalogue."""

import pytest

from repro.parallel import DEVICES, device, device_names


def test_four_devices_in_table_ii_order():
    assert device_names() == ["v100", "mi100", "skylake", "tx2"]
    assert set(DEVICES) == set(device_names())


def test_paper_bandwidths():
    # Section VI-C quotes these theoretical bandwidths explicitly.
    assert device("v100").memory_bandwidth_gbs == 900.0
    assert device("mi100").memory_bandwidth_gbs == 1200.0
    assert device("skylake").memory_bandwidth_gbs == 238.0
    assert device("tx2").memory_bandwidth_gbs == 317.0


def test_cpu_core_counts_match_paper():
    assert device("skylake").physical_cores == 48
    assert device("skylake").max_threads == 96
    assert device("tx2").physical_cores == 56
    assert device("tx2").max_threads == 112


def test_kinds():
    assert device("v100").kind == "gpu"
    assert device("skylake").kind == "cpu"


def test_lookup_is_case_insensitive_and_validated():
    assert device("V100").key == "v100"
    with pytest.raises(KeyError):
        device("a100")


def test_bandwidth_bytes_conversion():
    assert device("v100").memory_bandwidth_bytes == pytest.approx(900e9)

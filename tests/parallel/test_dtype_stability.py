"""Regression: index arrays must be int64 everywhere, never the platform int.

``np.arange`` (and ``dtype=int``) resolve to the *platform default* integer —
int64 on Linux, int32 on Windows — so any index array built without an
explicit width would make results platform-dependent, breaking the
bit-identity contract.  The dtype-flow analyzer (``dtype-size-dependent``)
now flags such sites statically; these tests pin the runtime behaviour of
the paths that were fixed when the rule landed.
"""

import numpy as np

from repro.coarsen.basic import mis2_basic_aggregation
from repro.coloring.greedy import greedy_color
from repro.graph.generators import grid2d
from repro.graph.ops import induced_subgraph
from repro.parallel.primitives import expand_rows


def test_expand_rows_outputs_are_int64():
    rowmap = np.array([0, 2, 2, 5], dtype=np.int64)
    rows = np.array([0, 2], dtype=np.int64)
    slots, seg = expand_rows(rowmap, rows)
    assert slots.dtype == np.int64
    assert seg.dtype == np.int64


def test_expand_rows_empty_selection_is_int64():
    rowmap = np.array([0, 2, 2, 5], dtype=np.int64)
    slots, seg = expand_rows(rowmap, np.zeros(0, dtype=np.int64))
    assert slots.dtype == np.int64
    assert seg.dtype == np.int64


def test_induced_subgraph_mapping_is_int64():
    graph = grid2d(4, 4)
    sub, mapping = induced_subgraph(graph, np.array([0, 1, 5, 6]))
    assert mapping.dtype == np.int64


def test_aggregation_labels_are_int64():
    graph = grid2d(5, 5)
    result = mis2_basic_aggregation(graph)
    assert result.labels.dtype == np.int64


def test_coloring_output_is_int64():
    graph = grid2d(5, 5)
    coloring = greedy_color(graph)
    assert coloring.colors.dtype == np.int64

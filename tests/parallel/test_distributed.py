"""Tests for the socket-distributed backend: transport, sessions, failures.

The partition-equivalence matrix already drives ``backend=distributed``
through every kernel x k combination (it enumerates all registered
backends); this file covers what the matrix cannot see — the wire itself:
measured-vs-logical byte correspondence, reconnect after transient
connection loss, exactly-once phase replay, and the rank-death story.
"""

import numpy as np
import pytest

from repro.graph.generators import elasticity3d, laplace3d
from repro.mis import kk_mis2
from repro.parallel import (
    DistributedBackend,
    RankDeathError,
    TransportError,
    get_backend,
    partitioned_kk_mis2,
)
from repro.parallel import backends as backends_mod
from repro.parallel import distributed as distributed_mod
from repro.parallel.transport import MessageConnection, MessageListener, connect_with_retry


# ---- module-level task functions (pickled by reference to rank processes)

def _weighted_sum(payload, state, delta):
    state["acc"] += payload["w"] * delta
    return state["acc"].copy()


def _count_calls(payload, state, delta):
    state["calls"] += 1
    return int(state["calls"])


def _make_session(backend, token, parts=4, n=8):
    payloads = [{"w": np.arange(n, dtype=np.int64) + part} for part in range(parts)]
    states = [{"acc": np.zeros(n, dtype=np.int64)} for _ in range(parts)]
    return payloads, backend.map_partitions_resident(token, payloads, states)


class TestTransport:
    def test_roundtrip_and_byte_meters_are_symmetric(self):
        listener = MessageListener()
        client = connect_with_retry(listener.address)
        server = listener.accept()
        try:
            payload = {"a": np.arange(100), "b": "text", "c": (1, 2.5, None)}
            client.send(payload)
            received = server.recv()
            assert np.array_equal(received["a"], payload["a"])
            assert received["b"] == "text" and received["c"] == (1, 2.5, None)
            # The receiver counts exactly the bytes the sender counted.
            assert server.bytes_received == client.bytes_sent > 100 * 8
            assert client.messages_sent == server.messages_received == 1
        finally:
            client.close()
            server.close()
            listener.close()

    def test_peer_close_raises_transport_error(self):
        listener = MessageListener()
        client = connect_with_retry(listener.address)
        server = listener.accept()
        client.close()
        with pytest.raises(TransportError):
            server.recv()
        server.close()
        listener.close()

    def test_connect_with_retry_exhaustion(self):
        listener = MessageListener()
        address = listener.address
        listener.close()
        with pytest.raises(TransportError, match="could not connect"):
            connect_with_retry(address, attempts=2, delay=0.01)

    def test_connect_with_retry_abort_stops_early(self):
        listener = MessageListener()
        address = listener.address
        listener.close()
        calls = []

        def abort():
            calls.append(True)
            return True

        with pytest.raises(TransportError):
            connect_with_retry(address, attempts=50, delay=10.0, abort=abort)
        # Aborted on the first retry check instead of sleeping 50 rounds.
        assert len(calls) == 1


class TestDistributedSession:
    def test_session_results_match_local_reference(self):
        B = get_backend("distributed")
        token = "tok/test-dist/basic"
        payloads, session = _make_session(B, token)
        ref_payloads, ref_session = _make_session(get_backend("numpy"), token)
        with session, ref_session:
            for delta in (2, 3, 5):
                tasks = [(part, delta) for part in range(4)]
                got = session.run(_weighted_sum, tasks)
                want = ref_session.run(_weighted_sum, tasks)
                for g, w in zip(got, want):
                    assert np.array_equal(g, w)
            # Logical accounting is bit-identical across backends.
            assert session.resident_bytes == ref_session.resident_bytes
            assert session.superstep_bytes == ref_session.superstep_bytes

    def test_rerun_on_same_token_skips_payload_shipping(self):
        B = get_backend("distributed")
        token = "tok/test-dist/cache"
        # Payloads large enough (32 KiB/part) that skipping them dominates the
        # per-message protocol overhead the meter also sees.
        payloads, first = _make_session(B, token, n=4096)
        with first:
            first.run(_weighted_sum, [(part, 1) for part in range(4)])
        before = B.measured_stats()["bytes_sent"]
        _, second = _make_session(B, token, n=4096)
        with second:
            second.run(_weighted_sum, [(part, 1) for part in range(4)])
        shipped = B.measured_stats()["bytes_sent"] - before
        # The rerun ships install acks, fresh states and phase messages — but
        # not the payloads, which are half the session's resident footprint.
        assert shipped < first.resident_bytes

    def test_fallbacks(self):
        payloads = [{"w": np.arange(4)} for _ in range(3)]
        states = [{"acc": np.zeros(4, dtype=np.int64)} for _ in range(3)]
        # Single-rank configurations stay in-process.
        local = DistributedBackend(ranks=1).map_partitions_resident(
            "tok/test-dist/local", payloads, states
        )
        assert isinstance(local, backends_mod._LocalResidentSession)
        # Single-part layouts have nothing to fan out.
        single = get_backend("distributed").map_partitions_resident(
            "tok/test-dist/single", payloads[:1], states[:1]
        )
        assert isinstance(single, backends_mod._LocalResidentSession)
        # The non-resident baseline uses the accounting-only unpinned session.
        unpinned = get_backend("distributed").map_partitions_resident(
            "tok/test-dist/unpinned", payloads, states, resident=False
        )
        assert isinstance(unpinned, backends_mod._UnpinnedResidentSession)

    def test_with_jobs_reconfigures_ranks(self):
        B = get_backend("distributed")
        assert B.ranks is None
        clone = B.with_jobs(3)
        assert clone is not B and clone.ranks == 3
        assert B.with_jobs(None) is B

    def test_backend_instances_pickle_without_cluster_state(self):
        import pickle

        B = DistributedBackend(ranks=2)
        clone = pickle.loads(pickle.dumps(B))
        assert isinstance(clone, DistributedBackend) and clone.ranks == 2

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            DistributedBackend(ranks=0)
        with pytest.raises(ValueError):
            DistributedBackend(retry_attempts=0)
        with pytest.raises(ValueError):
            DistributedBackend(retry_delay=-1.0)


class TestExactlyOnce:
    def test_replayed_phase_message_is_answered_from_the_dedup_cache(self):
        # A reconnect re-sends the whole in-flight batch; the rank must answer
        # a replayed (same seq) phase from its dedup cache instead of running
        # fn — and mutating the state — a second time.
        B = get_backend("distributed")
        token = "tok/test-dist/dedup"
        parts = 2
        payloads = [{"w": np.arange(2)} for _ in range(parts)]
        states = [{"calls": 0} for _ in range(parts)]
        with B.map_partitions_resident(token, payloads, states) as session:
            first = session.run(_count_calls, [(part, None) for part in range(parts)])
            assert first == [1, 1]
            cluster = session._cluster
            seq = session._seq
            for part in range(parts):
                rank = part % session._nranks
                (reply,) = cluster.request(
                    rank,
                    [("phase", seq, token, session._key, part, _count_calls, None)],
                )
                # Replay returns the cached result; the counter did not move.
                assert reply == ("result", 1)
            assert session.run(_count_calls, [(p, None) for p in range(parts)]) == [2, 2]


class TestFaultInjection:
    """Failure-path behaviour: transient drops recover, rank death is loud."""

    # A dedicated rank count so killing processes here never races the shared
    # two-rank cluster the equivalence matrix and byte tests run on.
    RANKS = 3

    def _backend(self):
        return DistributedBackend(ranks=self.RANKS, retry_delay=0.01)

    def test_transient_connection_loss_recovers_bit_identically(self):
        B = self._backend()
        token = "tok/test-dist/reconnect"
        payloads, session = _make_session(B, token)
        _, ref_session = _make_session(get_backend("numpy"), token)
        with session, ref_session:
            session.run(_weighted_sum, [(part, 2) for part in range(4)])
            ref_session.run(_weighted_sum, [(part, 2) for part in range(4)])
            # Sever every coordinator connection mid-session (the rank
            # processes stay alive and return to accept()).
            for handle in session._cluster._handles:
                with handle.lock:
                    handle.retire_connection()
            got = session.run(_weighted_sum, [(part, 3) for part in range(4)])
            want = ref_session.run(_weighted_sum, [(part, 3) for part in range(4)])
            for g, w in zip(got, want):
                assert np.array_equal(g, w)

    def test_rank_death_mid_session_fails_loudly_then_recovers(self):
        B = self._backend()
        token = "tok/test-dist/rank-death"
        payloads, session = _make_session(B, token)
        with session:
            session.run(_weighted_sum, [(part, 1) for part in range(4)])
            victim = session._cluster._handles[0]
            victim.process.terminate()
            victim.process.join(timeout=5.0)
            # Never silent wrong results: the run dies with the rank.
            with pytest.raises(RankDeathError, match="resident session states"):
                session.run(_weighted_sum, [(part, 1) for part in range(4)])
        # The cluster respawned a replacement, so a fresh run on the *same*
        # token succeeds (the install acks re-ship what the new rank lacks)
        # and produces reference results.
        _, retry = _make_session(B, token)
        _, ref_session = _make_session(get_backend("numpy"), token)
        with retry, ref_session:
            for delta in (1, 2):
                got = retry.run(_weighted_sum, [(part, delta) for part in range(4)])
                want = ref_session.run(_weighted_sum, [(part, delta) for part in range(4)])
                for g, w in zip(got, want):
                    assert np.array_equal(g, w)

    def test_partitioned_kernel_recovers_after_rank_death(self):
        B = self._backend()
        graph = laplace3d(5, 5, 5)
        reference = kk_mis2(graph)
        result = partitioned_kk_mis2(graph, 4, backend=B)
        assert np.array_equal(result.in_set, reference.in_set)
        cluster = B.cluster()
        cluster._handles[1].process.terminate()
        cluster._handles[1].process.join(timeout=5.0)
        # The dead rank is discovered and replaced on the next session; the
        # kernel run still matches the serial reference bit for bit.
        again = partitioned_kk_mis2(graph, 4, backend=B)
        assert np.array_equal(again.in_set, reference.in_set)


class TestMeasuredVsLogicalBytes:
    """The acceptance gate: socket bytes track the logical accounting."""

    SMOKE = (
        ("laplace3d", laplace3d, (10, 10, 10)),
        ("elasticity3d", elasticity3d, (6, 6, 6)),
    )

    def _run(self, generator, shape):
        graph = generator(*shape)
        B = get_backend("distributed")
        before = B.measured_stats()
        result = partitioned_kk_mis2(graph, 4, backend=B, changed_deltas=True)
        after = B.measured_stats()
        measured = (after["bytes_sent"] - before["bytes_sent"]) + (
            after["bytes_received"] - before["bytes_received"]
        )
        stats = result.partition_stats
        return result, graph, measured, stats.resident_bytes + stats.superstep_bytes

    @pytest.mark.parametrize("name,generator,shape", SMOKE, ids=[s[0] for s in SMOKE])
    def test_measured_within_constant_factor_of_logical(self, name, generator, shape):
        result, graph, measured, logical = self._run(generator, shape)
        # Correctness first: the distributed run is bit-identical to serial.
        assert np.array_equal(result.in_set, kk_mis2(graph).in_set)
        # Every logical byte crosses the wire (arrays pickle with their full
        # buffers), plus bounded per-message overhead: frame headers, the
        # token/function references of each phase message, pickle framing.
        # Observed ratios are ~1.04-1.17; gate at 2x so the test pins the
        # correspondence without flaking on protocol-overhead drift.
        assert logical > 0
        assert measured >= logical, (name, measured, logical)
        assert measured <= 2 * logical, (name, measured, logical)

    def test_ordering_matches_logical_accounting(self):
        # The graph that ships more logical bytes also costs more on the wire
        # — the "same ordering" half of the correspondence guarantee.
        totals = {
            name: self._run(generator, shape)[2:]
            for name, generator, shape in self.SMOKE
        }
        (laplace_measured, laplace_logical) = totals["laplace3d"]
        (elast_measured, elast_logical) = totals["elasticity3d"]
        assert laplace_logical < elast_logical
        assert laplace_measured < elast_measured


def _stash_marker(payload, state, delta):
    state["marker"] = delta
    return None


def _read_marker(payload, state, delta):
    return state["marker"]


class TestMultiplexedOverlap:
    """run_async over the socket transport: in-flight phases per part, with
    futures resolvable out of submission order."""

    def test_out_of_order_resolution_is_correct_and_commits_once(self):
        B = get_backend("distributed")
        token = "tok/test-dist/overlap"
        payloads, session = _make_session(B, token, parts=3)
        with session:
            fb = session.run_async(
                _weighted_sum, [(0, 2), (1, 3)], commit=False
            )
            fi = session.run_async(_weighted_sum, [(2, 5)])
            # Resolve the later future first: the rank already executed both
            # phases FIFO; only the coordinator-side observation reorders.
            (r2,) = fi.result()
            assert session.supersteps == 0  # group still open
            rb = fb.result()
            assert session.supersteps == 1
            assert np.array_equal(r2, payloads[2]["w"] * 5)
            assert np.array_equal(rb[0], payloads[0]["w"] * 2)
            assert np.array_equal(rb[1], payloads[1]["w"] * 3)

    def test_pipelined_phases_share_rank_fifo(self):
        # A later phase on the same part must observe the earlier phase's
        # state writes even when the earlier future resolves afterwards —
        # the per-connection FIFO serve loop is the ordering guarantee the
        # overlapped drivers' worker-side stashes rely on.
        B = get_backend("distributed")
        token = "tok/test-dist/fifo"
        _, session = _make_session(B, token, parts=2)
        with session:
            marker = np.arange(5, dtype=np.int64)
            fb = session.run_async(_stash_marker, [(0, marker)], commit=False)
            fi = session.run_async(_read_marker, [(0, None)])
            (seen,) = fi.result()
            fb.result()
            assert np.array_equal(seen, marker)
            assert session.supersteps == 1


class TestPhaseDedupCacheBound:
    def test_lru_eviction_keeps_cache_bounded(self, monkeypatch):
        # Exercise the rank-side dispatch in-process: the dedup cache must
        # stay bounded under an unbounded seq stream (forgets are
        # best-effort), evicting oldest-first while recent phases still
        # answer from cache.
        monkeypatch.setattr(distributed_mod, "_PHASE_DONE_CAPACITY", 8)
        distributed_mod._PHASE_DONE.clear()
        token, key = "tok/test-dist/bound", 987654321
        backends_mod._resident_install(
            (token, 0, {"w": np.arange(2)}, key, {"calls": 0})
        )
        try:
            for seq in range(1, 21):
                reply = distributed_mod._rank_reply(
                    ("phase", seq, token, key, 0, _count_calls, None)
                )
                assert reply == ("result", seq)
            assert len(distributed_mod._PHASE_DONE) <= 8
            # The newest phase is still answered from cache (no re-run)...
            assert distributed_mod._rank_reply(
                ("phase", 20, token, key, 0, _count_calls, None)
            ) == ("result", 20)
            # ...while a long-evicted seq re-runs (it can only be replayed
            # this late in tests — a real coordinator keeps a handful of
            # in-flight phases, far below the capacity).
            assert distributed_mod._rank_reply(
                ("phase", 1, token, key, 0, _count_calls, None)
            ) == ("result", 21)
        finally:
            distributed_mod._rank_reply(("forget", key, [0]))
            assert not any(k[0] == key for k in distributed_mod._PHASE_DONE)

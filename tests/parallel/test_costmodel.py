"""Tests for the roofline cost model and the CPU strong-scaling model."""

import numpy as np
import pytest

from repro.parallel import (
    TrafficCounter,
    bandwidth_efficiency,
    device,
    predict_device_time,
    scale_traffic,
    scaling_efficiency,
    strong_scaling_times,
)


def make_traffic(num_kernels=10, bytes_per_kernel=10**7, gather=0, coalesced=True):
    t = TrafficCounter()
    for i in range(num_kernels):
        t.add(f"k{i}", bytes_per_kernel, bytes_per_kernel // 4, gather_bytes=gather,
              coalesced=coalesced)
    return t


class TestTrafficCounter:
    def test_accumulation(self):
        t = make_traffic(3, 1000)
        assert t.num_kernels == 3
        assert t.bytes_read == 3000
        assert t.bytes_written == 750
        assert t.total_bytes == 3750

    def test_by_kernel_grouping(self):
        t = TrafficCounter()
        t.add("a", 10, 0)
        t.add("a", 5, 5)
        t.add("b", 1, 1)
        assert t.by_kernel() == {"a": 20, "b": 2}

    def test_merge(self):
        a = make_traffic(2, 100)
        b = make_traffic(3, 100)
        merged = a.merge(b)
        assert merged.num_kernels == 5
        assert a.num_kernels == 2  # unchanged

    def test_validation(self):
        t = TrafficCounter()
        with pytest.raises(ValueError):
            t.add("x", -1, 0)
        with pytest.raises(ValueError):
            t.add("x", 10, 0, gather_bytes=20)

    def test_scale_traffic(self):
        t = make_traffic(2, 1000, gather=100)
        s = scale_traffic(t, 10.0)
        assert s.num_kernels == 2
        assert s.total_bytes == 10 * t.total_bytes
        assert s.kernels[0].gather_bytes == 1000
        with pytest.raises(ValueError):
            scale_traffic(t, 0.0)


class TestDevicePrediction:
    def test_gpu_time_is_latency_plus_bandwidth(self):
        t = make_traffic(num_kernels=4, bytes_per_kernel=9 * 10**8)  # 4 * 1.125 GB total
        spec = device("v100")
        expected = 4 * spec.kernel_latency_s + t.total_bytes / spec.memory_bandwidth_bytes
        assert predict_device_time(t, "v100") == pytest.approx(expected)

    def test_higher_bandwidth_is_faster_when_traffic_dominates(self):
        t = make_traffic(num_kernels=2, bytes_per_kernel=10**9)
        assert predict_device_time(t, "mi100") < predict_device_time(t, "v100")

    def test_launch_latency_dominates_small_problems(self):
        t = make_traffic(num_kernels=100, bytes_per_kernel=10)
        # MI100 has higher per-launch latency than V100, so it is slower here despite
        # the higher bandwidth.
        assert predict_device_time(t, "mi100") > predict_device_time(t, "v100")

    def test_uncoalesced_gathers_cost_more_on_gpu(self):
        coalesced = make_traffic(4, 10**8, gather=5 * 10**7, coalesced=True)
        scattered = make_traffic(4, 10**8, gather=5 * 10**7, coalesced=False)
        assert predict_device_time(scattered, "v100") > predict_device_time(coalesced, "v100")

    def test_cpu_prediction_uses_scaling_model(self):
        t = make_traffic(5, 10**8)
        full = predict_device_time(t, "skylake")
        single = predict_device_time(t, "skylake", threads=1)
        assert full < single


class TestBandwidthEfficiency:
    def test_uses_measured_time_when_given(self):
        t = make_traffic(1, 100)
        eff = bandwidth_efficiency(t, "v100", measured_time_s=0.01)
        assert eff == pytest.approx((1 / 0.01) / 900.0)

    def test_positive_time_required(self):
        with pytest.raises(ValueError):
            bandwidth_efficiency(make_traffic(1, 100), "v100", measured_time_s=0.0)


class TestStrongScaling:
    def test_times_decrease_up_to_core_count(self):
        t = make_traffic(10, 10**8)
        counts = [1, 2, 4, 8, 16, 32, 48]
        times = strong_scaling_times(t, "skylake", counts)
        assert all(times[i] > times[i + 1] for i in range(len(times) - 1))

    def test_hyperthreads_slow_down(self):
        t = make_traffic(10, 10**8)
        t48, t96 = strong_scaling_times(t, "skylake", [48, 96])
        assert t96 > t48

    def test_efficiency_starts_at_one(self):
        t = make_traffic(10, 10**8)
        eff = scaling_efficiency(t, "tx2", [1, 2, 56])
        assert eff[0] == pytest.approx(1.0)
        assert 0 < eff[-1] <= 1.0

    def test_geomean_speedup_in_paper_ballpark(self):
        # The paper reports 26.9x on 48 Skylake cores and 43.9x on 56 TX2 cores.
        t = make_traffic(40, 10**8)
        sk = strong_scaling_times(t, "skylake", [1, 48])
        tx = strong_scaling_times(t, "tx2", [1, 56])
        assert 18 <= sk[0] / sk[1] <= 36
        assert 30 <= tx[0] / tx[1] <= 52

    def test_gpu_rejected(self):
        with pytest.raises(ValueError):
            strong_scaling_times(make_traffic(1, 100), "v100", [1, 2])

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            strong_scaling_times(make_traffic(1, 100), "skylake", [0])

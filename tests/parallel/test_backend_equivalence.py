"""Backend-equivalence suite: the paper's determinism guarantee, enforced.

Every registered execution backend (numpy, chunked, threaded, numba, …) must
produce *bit-identical* results to the vectorised-NumPy reference for the full
kernel stack — MIS-2 (Algorithm 1 and the Bell/Luby baselines), greedy and
distance-2 coloring, both aggregation schemes, and the cluster multicolor
Gauss-Seidel setup/apply. A tiny block size is used for the chunked backend so
that even the small fixture graphs are actually split into many blocks, and the
``map_graphs``-driven Experiment path is asserted to yield identical rows
regardless of backend and pool width.
"""

import numpy as np
import pytest

from repro.bench import BenchConfig, get_experiment
from repro.coarsen import d2c_aggregation, mis2_aggregation
from repro.coloring import distance2_color, greedy_color
from repro.graph import laplace3d_matrix, random_gnp
from repro.gs import ClusterMulticolorGaussSeidel
from repro.mis import bell_mis, kk_mis2, luby_mis1
from repro.parallel import ChunkedBackend, available_backends, get_backend

from tests.conftest import SMALL_GRAPH_CASES

#: Backends under test: every registered backend plus a chunked instance with a
#: tiny block size (so the fixtures exercise real multi-block execution).
BACKENDS = {name: get_backend(name) for name in available_backends() if name != "numpy"}
BACKENDS["chunked-tiny"] = ChunkedBackend(block_elements=8)

GRAPH_NAMES = sorted(SMALL_GRAPH_CASES)


@pytest.fixture(params=sorted(BACKENDS), ids=sorted(BACKENDS))
def backend(request):
    return BACKENDS[request.param]


@pytest.mark.parametrize("graph_name", GRAPH_NAMES)
@pytest.mark.parametrize("scheme", ["xorstar", "xor", "fixed"])
def test_kk_mis2_bit_identical(backend, graph_name, scheme):
    g = SMALL_GRAPH_CASES[graph_name]
    ref = kk_mis2(g, priority_scheme=scheme)
    out = kk_mis2(g, priority_scheme=scheme, backend=backend)
    assert np.array_equal(ref.in_set, out.in_set)
    assert np.array_equal(ref.in_mask, out.in_mask)
    assert ref.iterations == out.iterations
    assert ref.worklist_sizes == out.worklist_sizes
    assert out.config.backend == backend.name


@pytest.mark.parametrize("graph_name", GRAPH_NAMES)
def test_bell_mis_bit_identical(backend, graph_name):
    g = SMALL_GRAPH_CASES[graph_name]
    ref = bell_mis(g)
    out = bell_mis(g, backend=backend)
    assert np.array_equal(ref.in_set, out.in_set)
    assert ref.iterations == out.iterations


@pytest.mark.parametrize("graph_name", GRAPH_NAMES)
def test_luby_mis1_bit_identical(backend, graph_name):
    g = SMALL_GRAPH_CASES[graph_name]
    ref = luby_mis1(g)
    out = luby_mis1(g, backend=backend)
    assert np.array_equal(ref.in_set, out.in_set)
    assert ref.iterations == out.iterations


@pytest.mark.parametrize("graph_name", GRAPH_NAMES)
def test_greedy_coloring_bit_identical(backend, graph_name):
    g = SMALL_GRAPH_CASES[graph_name]
    ref = greedy_color(g)
    out = greedy_color(g, backend=backend)
    assert np.array_equal(ref.colors, out.colors)
    assert ref.num_colors == out.num_colors
    assert ref.rounds == out.rounds
    assert out.backend == backend.name


@pytest.mark.parametrize("graph_name", GRAPH_NAMES)
def test_distance2_coloring_bit_identical(backend, graph_name):
    g = SMALL_GRAPH_CASES[graph_name]
    ref = distance2_color(g)
    out = distance2_color(g, backend=backend)
    assert np.array_equal(ref.colors, out.colors)
    assert ref.num_colors == out.num_colors


@pytest.mark.parametrize("graph_name", GRAPH_NAMES)
def test_mis2_aggregation_bit_identical(backend, graph_name):
    g = SMALL_GRAPH_CASES[graph_name]
    ref = mis2_aggregation(g)
    out = mis2_aggregation(g, backend=backend)
    assert np.array_equal(ref.labels, out.labels)
    assert ref.num_aggregates == out.num_aggregates
    assert np.array_equal(ref.roots, out.roots)
    assert out.backend == backend.name


@pytest.mark.parametrize("graph_name", GRAPH_NAMES)
def test_d2c_aggregation_bit_identical(backend, graph_name):
    g = SMALL_GRAPH_CASES[graph_name]
    ref = d2c_aggregation(g)
    out = d2c_aggregation(g, backend=backend)
    assert np.array_equal(ref.labels, out.labels)
    assert ref.num_aggregates == out.num_aggregates


def test_cluster_gs_bit_identical(backend):
    A = laplace3d_matrix(6, 6, 6)
    b = np.sin(np.arange(A.shape[0], dtype=np.float64))
    ref = ClusterMulticolorGaussSeidel(A)
    out = ClusterMulticolorGaussSeidel(A, backend=backend)
    assert np.array_equal(ref.aggregation.labels, out.aggregation.labels)
    assert np.array_equal(ref.coloring.colors, out.coloring.colors)
    assert np.array_equal(ref.apply(b), out.apply(b))
    assert out.backend == backend.name


def test_larger_random_graph_bit_identical(backend):
    g = random_gnp(400, 0.02, seed=7)
    assert np.array_equal(kk_mis2(g).in_set, kk_mis2(g, backend=backend).in_set)
    assert np.array_equal(
        greedy_color(g).colors, greedy_color(g, backend=backend).colors
    )
    assert np.array_equal(
        mis2_aggregation(g).labels, mis2_aggregation(g, backend=backend).labels
    )


#: Tiny configuration for the Experiment-path equivalence checks below.
_EXPERIMENT_CONFIG = BenchConfig(
    scale=0.002, trials=1, warmup=0, matrices=("ecology2", "tmt_sym", "apache2")
)


def test_experiment_map_graphs_rows_identical(backend):
    """The sharded suite-sweep path must yield the reference rows, bit for bit.

    ``table1`` rows contain no wall-clock fields, so full row equality holds —
    the same matrices through ``map_graphs`` on any backend at any pool width
    produce exactly the rows the serial NumPy reference produces.
    """
    experiment = get_experiment("table1")
    reference = experiment.run(_EXPERIMENT_CONFIG, backend="numpy").rows
    for jobs in (None, 1, 2):
        result = experiment.run(_EXPERIMENT_CONFIG, backend=backend, jobs=jobs)
        assert result.rows == reference
        assert result.counts == experiment.counts(reference)


def test_experiment_counts_identical_across_all_backends():
    """Deterministic counts of the smoke experiment agree on every backend."""
    experiment = get_experiment("smoke")
    reference = experiment.run(_EXPERIMENT_CONFIG, backend="numpy")
    for name in available_backends():
        assert experiment.run(_EXPERIMENT_CONFIG, backend=name, jobs=2).counts == reference.counts


# --------------------------------------------------------------------------
# Partition-equivalence matrix: every registered backend × k ∈ {1, 2, 4, 7} ×
# {kk, luby, greedy coloring, mis2_agg} must produce output bit-identical to
# the *unpartitioned* NumPy reference — the intra-graph sharding contract of
# repro.parallel.partitioned. Pooled backends run with a two-wide pool so the
# map_partitions fan-out genuinely executes (chunked: persistent process pool;
# threaded: thread pool).

#: One instance per registered backend name (including the numpy reference —
#: here it is the *execution* under test, not the baseline).
PARTITION_BACKENDS = {name: get_backend(name).with_jobs(2) for name in available_backends()}

PARTITION_KS = (1, 2, 4, 7)

#: Structured + irregular + disconnected coverage without blowing up runtime.
PARTITION_GRAPHS = ("grid5x7", "gnp60", "disconnected")


@pytest.fixture(params=sorted(PARTITION_BACKENDS), ids=sorted(PARTITION_BACKENDS))
def partition_backend(request):
    return PARTITION_BACKENDS[request.param]


@pytest.mark.parametrize("k", PARTITION_KS)
@pytest.mark.parametrize("graph_name", PARTITION_GRAPHS)
def test_partitioned_kk_mis2_bit_identical(partition_backend, graph_name, k):
    g = SMALL_GRAPH_CASES[graph_name]
    ref = kk_mis2(g)
    out = kk_mis2(g, partitions=k, backend=partition_backend)
    assert np.array_equal(ref.in_set, out.in_set)
    assert np.array_equal(ref.in_mask, out.in_mask)
    assert ref.iterations == out.iterations
    assert ref.worklist_sizes == out.worklist_sizes
    assert out.config.backend == partition_backend.name
    assert out.config.partitions == k
    stats = out.partition_stats
    assert stats is not None and stats.num_parts == k
    assert stats.interior_vertices + stats.boundary_vertices == g.num_vertices


@pytest.mark.parametrize("k", PARTITION_KS)
@pytest.mark.parametrize("graph_name", PARTITION_GRAPHS)
def test_partitioned_luby_mis1_bit_identical(partition_backend, graph_name, k):
    g = SMALL_GRAPH_CASES[graph_name]
    ref = luby_mis1(g)
    out = luby_mis1(g, partitions=k, backend=partition_backend)
    assert np.array_equal(ref.in_set, out.in_set)
    assert np.array_equal(ref.in_mask, out.in_mask)
    assert ref.iterations == out.iterations
    assert out.config.partitions == k


@pytest.mark.parametrize("k", PARTITION_KS)
@pytest.mark.parametrize("graph_name", PARTITION_GRAPHS)
def test_partitioned_greedy_coloring_bit_identical(partition_backend, graph_name, k):
    g = SMALL_GRAPH_CASES[graph_name]
    ref = greedy_color(g)
    out = greedy_color(g, partitions=k, backend=partition_backend)
    assert np.array_equal(ref.colors, out.colors)
    assert ref.num_colors == out.num_colors
    assert ref.rounds == out.rounds
    assert out.partitions == k
    assert out.partition_stats is not None


@pytest.mark.parametrize("k", PARTITION_KS)
@pytest.mark.parametrize("graph_name", PARTITION_GRAPHS)
def test_partitioned_mis2_aggregation_bit_identical(partition_backend, graph_name, k):
    g = SMALL_GRAPH_CASES[graph_name]
    ref = mis2_aggregation(g)
    out = mis2_aggregation(g, partitions=k, backend=partition_backend)
    assert np.array_equal(ref.labels, out.labels)
    assert ref.num_aggregates == out.num_aggregates
    assert np.array_equal(ref.roots, out.roots)


@pytest.mark.parametrize("k", (1, 2, 3, 4, 5, 7, 8))
@pytest.mark.parametrize("graph_name", sorted(SMALL_GRAPH_CASES))
def test_partitioned_kk_every_small_graph_numpy(graph_name, k):
    """Exhaustive graph coverage (incl. empty/isolated/complete) on the reference."""
    g = SMALL_GRAPH_CASES[graph_name]
    ref = kk_mis2(g)
    out = kk_mis2(g, partitions=k)
    assert np.array_equal(ref.in_set, out.in_set)
    assert ref.iterations == out.iterations
    assert ref.worklist_sizes == out.worklist_sizes


@pytest.mark.parametrize("k", (2, 4))
@pytest.mark.parametrize("graph_name", PARTITION_GRAPHS)
def test_nonresident_baseline_bit_identical(partition_backend, graph_name, k):
    """The non-resident execution path (payload re-shipped every superstep)
    must stay bit-identical to the reference and to the resident path on
    every backend — only the shipped-bytes accounting may differ."""
    g = SMALL_GRAPH_CASES[graph_name]
    ref = kk_mis2(g)
    out = kk_mis2(g, partitions=k, backend=partition_backend, resident=False)
    assert np.array_equal(ref.in_set, out.in_set)
    assert ref.iterations == out.iterations
    assert out.partition_stats.resident_bytes == 0
    coloring = greedy_color(g, partitions=k, backend=partition_backend, resident=False)
    assert np.array_equal(greedy_color(g).colors, coloring.colors)
    luby = luby_mis1(g, partitions=k, backend=partition_backend, resident=False)
    assert np.array_equal(luby_mis1(g).in_set, luby.in_set)


def _deterministic_stats(stats) -> dict:
    """PartitionStats as a dict with the wall-clock meters stripped — the
    ``*_seconds`` triple is perf_counter-based and machine-varying by design;
    everything else must agree bit-for-bit across backends."""
    return {
        k: v for k, v in stats.to_dict().items() if not k.endswith("_seconds")
    }


@pytest.mark.parametrize("changed_deltas", (True, False))
@pytest.mark.parametrize("resident", (True, False))
def test_shipped_bytes_accounting_identical_across_backends(resident, changed_deltas):
    """The shipped-bytes fields are *logical* (array nbytes, charged in both
    directions), so every backend must record exactly the same numbers for
    the same run — that is what makes them deterministic counts gateable by
    `bench compare` — under every delta wire format."""
    g = SMALL_GRAPH_CASES["gnp60"]
    reference = None
    for name, backend in sorted(PARTITION_BACKENDS.items()):
        out = kk_mis2(
            g, partitions=4, backend=backend,
            resident=resident, changed_deltas=changed_deltas,
        )
        recorded = _deterministic_stats(out.partition_stats)
        if reference is None:
            reference = recorded
        assert recorded == reference, name
    assert reference["superstep_bytes"] > 0
    if resident:
        assert reference["resident_bytes"] > 0
        assert reference["max_superstep_bytes"] < reference["resident_bytes"]
    else:
        assert reference["resident_bytes"] == 0


def test_changed_delta_accounting_identical_across_backends_all_kernels():
    """The changed-delta protocol's byte counts agree on every backend for
    every partitioned kernel (Luby and the coloring stash/recompute their
    worklists worker-side — the counts must not depend on where that runs)."""
    g = SMALL_GRAPH_CASES["gnp60"]
    for kernel in (luby_mis1, greedy_color):
        reference = None
        for name, backend in sorted(PARTITION_BACKENDS.items()):
            out = kernel(g, partitions=4, backend=backend)
            recorded = _deterministic_stats(out.partition_stats)
            if reference is None:
                reference = recorded
            assert recorded == reference, (kernel.__name__, name)
        assert reference["superstep_bytes"] > 0


@pytest.mark.parametrize("graph_name", PARTITION_GRAPHS)
def test_full_halo_format_bit_identical_and_never_cheaper(partition_backend, graph_name):
    """changed_deltas=False (the full-halo wire format kept for the CI gate)
    produces bit-identical results on every backend, and the changed-delta
    default never ships more than it — per phase or in total."""
    g = SMALL_GRAPH_CASES[graph_name]
    for kernel, extract in (
        (kk_mis2, lambda r: r.in_set),
        (luby_mis1, lambda r: r.in_set),
        (greedy_color, lambda r: r.colors),
    ):
        ref = kernel(g)
        changed = kernel(g, partitions=4, backend=partition_backend)
        full = kernel(g, partitions=4, backend=partition_backend, changed_deltas=False)
        assert np.array_equal(extract(ref), extract(changed))
        assert np.array_equal(extract(ref), extract(full))
        sc, sf = changed.partition_stats, full.partition_stats
        assert sc.supersteps == sf.supersteps
        assert sc.superstep_bytes <= sf.superstep_bytes
        assert sc.max_superstep_bytes <= sf.max_superstep_bytes


def test_partitioned_smoke_sweep_counts_identical():
    """The partitioned smoke sweep (CI's intra-graph sharding gate) passes and
    records identical deterministic counts on every backend."""
    from repro.bench import BenchConfig as _BC
    from repro.bench import sweep

    config = _BC(parts=2)
    result = sweep("smoke", ["numpy", "threaded"], config, jobs=2)
    assert result.reference.parts == 2
    for res in result.results:
        assert res.counts == result.reference.counts
        assert any(key.endswith("/boundary_vertices") for key in res.counts)

"""Transport-layer contract tests: partial-byte metering on error paths,
receive deadlines, and abort-aware retry backoff.

The happy-path framing/meter tests live with the distributed backend suite
(``test_distributed.py::TestTransport``); this file pins the *failure*
contracts the measured-vs-logical CI gate depends on:

* a ``send`` that dies mid-frame still charges every chunk that hit the wire;
* a receive that fails mid-frame still charges the bytes already drained,
  so both peers' meters stay symmetric across broken frames;
* ``recv(timeout=...)`` raises ``TransportError`` on a wedged (alive but
  silent) peer instead of hanging forever;
* ``connect_with_retry`` notices ``abort()`` mid-backoff instead of sleeping
  through the remaining schedule.
"""

import socket
import time

import pytest

from repro.parallel.transport import (
    MessageConnection,
    MessageListener,
    TransportError,
    connect_with_retry,
)


class _FlakySocket:
    """Scripted socket stand-in: sends/receives in small chunks, then fails."""

    def __init__(self, send_chunk=5, send_ok_calls=3, recv_script=()):
        self.send_chunk = send_chunk
        self.send_ok_calls = send_ok_calls
        self.sent = bytearray()
        self.recv_script = list(recv_script)
        self.timeouts = []

    def setsockopt(self, *args):
        pass

    def settimeout(self, value):
        self.timeouts.append(value)

    def send(self, data):
        if self.send_ok_calls <= 0:
            raise OSError("scripted send failure")
        self.send_ok_calls -= 1
        chunk = bytes(data[: self.send_chunk])
        self.sent.extend(chunk)
        return len(chunk)

    def recv(self, nbytes):
        if not self.recv_script:
            raise OSError("scripted recv failure")
        item = self.recv_script.pop(0)
        if isinstance(item, Exception):
            raise item
        return item[:nbytes]

    def close(self):
        pass


def _connected_pair():
    listener = MessageListener()
    client = connect_with_retry(listener.address)
    server = listener.accept()
    return listener, client, server


class TestPartialByteMetering:
    def test_send_charges_partial_frame_on_error(self):
        sock = _FlakySocket(send_chunk=5, send_ok_calls=3)
        conn = MessageConnection(sock)
        with pytest.raises(TransportError, match="send failed"):
            conn.send(b"x" * 1000)  # frame far larger than 3 chunks of 5
        assert conn.bytes_sent == 15 == len(sock.sent)
        assert conn.messages_sent == 0  # the message never completed

    def test_recv_charges_partial_frame_on_error(self):
        # 8-byte header promising a 100-byte body, then 7 body bytes, then death.
        header = (100).to_bytes(8, "big")
        sock = _FlakySocket(recv_script=[header, b"partial"])
        conn = MessageConnection(sock)
        with pytest.raises(TransportError, match="recv failed"):
            conn.recv()
        assert conn.bytes_received == len(header) + len(b"partial")
        assert conn.messages_received == 0

    def test_recv_charges_partial_frame_on_peer_close(self):
        header = (100).to_bytes(8, "big")
        sock = _FlakySocket(recv_script=[header, b"abc", b""])  # EOF mid-body
        conn = MessageConnection(sock)
        with pytest.raises(TransportError, match="closed by peer"):
            conn.recv()
        assert conn.bytes_received == len(header) + 3

    def test_meters_stay_symmetric_across_a_broken_frame(self):
        """Sender dies mid-frame over a real socket: the receiver's meter ends
        up counting exactly the bytes the sender's meter charged."""
        listener, client, server = _connected_pair()
        try:
            client.send({"warmup": 1})
            assert isinstance(server.recv(), dict)
            # Now break the client mid-"frame" by sending a raw header that
            # promises more bytes than ever arrive, then closing.
            client._sock.sendall((50).to_bytes(8, "big") + b"only-ten-b")
            client.bytes_sent += 18  # what actually hit the wire
            client.close()
            with pytest.raises(TransportError):
                server.recv()
            assert server.bytes_received == client.bytes_sent
        finally:
            client.close()
            server.close()
            listener.close()


class TestReceiveDeadline:
    def test_recv_deadline_raises_instead_of_hanging(self):
        listener, client, server = _connected_pair()
        try:
            start = time.monotonic()
            with pytest.raises(TransportError, match="deadline"):
                server.recv(timeout=0.2)  # client is alive but silent
            elapsed = time.monotonic() - start
            assert elapsed < 5.0
            # A clean expiry (no partial frame) leaves the stream usable.
            client.send("late")
            assert server.recv(timeout=5.0) == "late"
        finally:
            client.close()
            server.close()
            listener.close()

    def test_recv_without_deadline_still_blocks_until_data(self):
        listener, client, server = _connected_pair()
        try:
            client.send([1, 2, 3])
            assert server.recv() == [1, 2, 3]
            # The deadline machinery must restore blocking mode afterwards.
            assert server._sock.gettimeout() is None
        finally:
            client.close()
            server.close()
            listener.close()

    def test_deadline_spans_the_whole_frame(self):
        """A peer that trickles a header but never the body still trips the
        deadline — it covers the frame, not just the first byte."""
        listener, client, server = _connected_pair()
        try:
            client._sock.sendall((1000).to_bytes(8, "big") + b"stall")
            with pytest.raises(TransportError, match="deadline"):
                server.recv(timeout=0.2)
            assert server.bytes_received == 8 + 5  # header + partial body charged
        finally:
            client.close()
            server.close()
            listener.close()


class TestAbortAwareBackoff:
    def test_abort_mid_backoff_stops_promptly(self):
        listener = MessageListener()
        address = listener.address
        listener.close()
        flipped_at = time.monotonic() + 0.1
        calls = []

        def abort():
            calls.append(time.monotonic())
            return time.monotonic() >= flipped_at

        start = time.monotonic()
        with pytest.raises(TransportError, match="could not connect"):
            # One failed attempt then a 10s backoff: the abort flip 0.1s in
            # must cut the sleep short instead of waiting out the schedule.
            connect_with_retry(address, attempts=50, delay=10.0, abort=abort)
        elapsed = time.monotonic() - start
        assert elapsed < 5.0
        assert len(calls) > 1  # polled repeatedly inside the sleep

    def test_no_abort_callable_still_sleeps_schedule(self):
        listener = MessageListener()
        address = listener.address
        listener.close()
        start = time.monotonic()
        with pytest.raises(TransportError):
            connect_with_retry(address, attempts=2, delay=0.05, backoff=1.0)
        assert time.monotonic() - start >= 0.05

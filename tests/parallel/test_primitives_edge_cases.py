"""Edge-case tests for the segmented primitives, across every backend.

Covers the corners Algorithm 1 actually hits: empty worklists (last iteration),
single-vertex graphs, isolated vertices (empty adjacency segments), and dtype
preservation through ``exclusive_scan`` / ``segmented_min`` (the packed status
tuples are uint64 and must not be silently promoted or truncated).
"""

import numpy as np
import pytest

from repro.graph import empty_graph, from_edges, path_graph
from repro.mis import kk_mis2, verify_mis
from repro.parallel import ChunkedBackend, available_backends, get_backend

BACKENDS = {name: get_backend(name) for name in available_backends()}
BACKENDS["chunked-tiny"] = ChunkedBackend(block_elements=4)


@pytest.fixture(params=sorted(BACKENDS), ids=sorted(BACKENDS))
def B(request):
    return BACKENDS[request.param]


class TestEmptyWorklists:
    def test_expand_rows_empty_worklist(self, B):
        g = path_graph(5)
        slots, seg = B.expand_rows(g.rowmap, np.array([], dtype=np.int64))
        assert slots.size == 0
        assert seg.tolist() == [0]

    def test_segmented_ops_zero_segments(self, B):
        values = np.array([], dtype=np.int64)
        seg = np.array([0], dtype=np.int64)
        assert B.segmented_min(values, seg, identity=9).size == 0
        assert B.segmented_max(values, seg, identity=9).size == 0
        assert B.segmented_sum(values, seg).size == 0
        assert B.segmented_any_equal(values, 1, seg).size == 0

    def test_scan_of_empty_array(self, B):
        out = B.exclusive_scan(np.array([], dtype=np.int64))
        assert out.tolist() == [0]
        assert B.inclusive_scan(np.array([], dtype=np.int64)).size == 0

    def test_compact_empty(self, B):
        out = B.stream_compact(np.array([], dtype=np.int64), np.array([], dtype=bool))
        assert out.size == 0


class TestSingleVertexAndIsolated:
    def test_single_vertex_graph(self, B):
        g = empty_graph(1)
        slots, seg = B.expand_rows(g.rowmap, np.array([0], dtype=np.int64))
        assert slots.size == 0
        assert seg.tolist() == [0, 0]
        result = kk_mis2(g, backend=B)
        assert result.in_set.tolist() == [0]

    def test_isolated_vertices_give_empty_segments(self, B):
        # Vertices 2..4 are isolated: their segments are empty and every
        # segmented reduction must yield its identity there.
        g = from_edges(5, [(0, 1)])
        rows = np.arange(5, dtype=np.int64)
        slots, seg = B.expand_rows(g.rowmap, rows)
        assert np.diff(seg).tolist() == [1, 1, 0, 0, 0]
        vals = np.array([7, 3], dtype=np.int64)
        assert B.segmented_min(vals, seg, identity=99).tolist() == [7, 3, 99, 99, 99]
        assert B.segmented_sum(vals, seg).tolist() == [7, 3, 0, 0, 0]
        assert B.segmented_any_equal(vals, 3, seg).tolist() == [False, True, False, False, False]
        ref = np.array([7, 4, 0, 0, 0], dtype=np.int64)
        assert B.segmented_all_equal(vals, ref, seg).tolist() == [True, False, True, True, True]

    def test_mis_on_all_isolated_vertices(self, B):
        g = empty_graph(6)
        result = kk_mis2(g, backend=B)
        assert result.in_set.tolist() == list(range(6))
        assert verify_mis(g, result.in_set, k=2)


class TestDtypePreservation:
    @pytest.mark.parametrize("dtype", [np.int32, np.int64, np.uint32, np.uint64])
    def test_exclusive_scan_promotes_integers_to_int64(self, B, dtype):
        vals = np.array([1, 2, 3], dtype=dtype)
        out = B.exclusive_scan(vals)
        assert out.dtype == np.int64
        assert out.tolist() == [0, 1, 3, 6]

    def test_exclusive_scan_preserves_float_dtype(self, B):
        vals = np.array([0.5, 1.5], dtype=np.float32)
        out = B.exclusive_scan(vals)
        assert out.dtype == np.float32
        assert out.tolist() == [0.0, 0.5, 2.0]

    @pytest.mark.parametrize("dtype", [np.uint8, np.uint64, np.int64, np.float64])
    def test_segmented_min_preserves_value_dtype(self, B, dtype):
        vals = np.array([5, 2, 9, 1], dtype=dtype)
        seg = np.array([0, 2, 2, 4], dtype=np.int64)
        ident = np.asarray(7, dtype=dtype)[()]
        out = B.segmented_min(vals, seg, identity=ident)
        assert out.dtype == np.dtype(dtype)
        assert out.tolist() == [2, 7, 1]

    def test_segmented_min_uint64_no_precision_loss(self, B):
        # Packed tuples use the full 64-bit range; a float round-trip would
        # corrupt the low bits, which this value pair detects.
        big = np.uint64(2**63 + 5)
        bigger = np.uint64(2**63 + 7)
        vals = np.array([bigger, big], dtype=np.uint64)
        seg = np.array([0, 2], dtype=np.int64)
        out = B.segmented_min(vals, seg, identity=np.uint64(2**64 - 1))
        assert out.dtype == np.uint64
        assert out[0] == big

    def test_segmented_sum_empty_values_identity_dtype(self, B):
        out = B.segmented_sum(np.array([], dtype=np.int64), np.array([0, 0, 0]))
        assert out.tolist() == [0, 0]

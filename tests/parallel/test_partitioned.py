"""Unit tests for :mod:`repro.parallel.partitioned` (layout + drivers + seam)."""

import numpy as np
import pytest

from repro.coloring import greedy_color
from repro.graph import empty_graph, grid2d, path_graph, random_gnp
from repro.mis import kk_mis2, luby_mis1
from repro.parallel import (
    ChunkedBackend,
    NumpyBackend,
    build_partition_layout,
    get_backend,
    partition_vertices,
    partitioned_kk_mis2,
    shipped_nbytes,
)
from repro.parallel.backends import (
    _PARTITION_POOLS,
    _RESIDENT_SLOT_POOLS,
    shutdown_partition_pools,
)


class TestPartitionVertices:
    def test_single_part(self):
        g = path_graph(6)
        assert np.array_equal(partition_vertices(g, 1), np.zeros(6, dtype=np.int64))

    def test_power_of_two_uses_multilevel(self):
        g = grid2d(6, 6)
        labels = partition_vertices(g, 4)
        assert labels.shape == (36,)
        assert set(np.unique(labels)) <= {0, 1, 2, 3}

    def test_non_power_of_two_blocks_are_balanced(self):
        g = empty_graph(10)
        labels = partition_vertices(g, 3)
        sizes = np.bincount(labels, minlength=3)
        assert sizes.sum() == 10
        assert sizes.max() - sizes.min() <= 1

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            partition_vertices(path_graph(4), 0)

    def test_empty_graph(self):
        assert partition_vertices(empty_graph(0), 5).size == 0


class TestBuildLayout:
    def test_path_split_in_half(self):
        g = path_graph(6)
        layout = build_partition_layout(g, np.array([0, 0, 0, 1, 1, 1]))
        assert layout.num_parts == 2
        assert layout.cut_edges == 1
        left, right = layout.parts
        assert np.array_equal(left.owned, [0, 1, 2])
        assert np.array_equal(left.halo, [3])
        assert np.array_equal(left.boundary(), [2])
        assert np.array_equal(left.interior(), [0, 1])
        assert np.array_equal(right.halo, [2])
        assert np.array_equal(right.boundary(), [3])
        # Local CSR: owned rows carry adjacency, halo rows are empty.
        assert left.rowmap.size == left.ids.size + 1
        halo_local = left.local(left.halo)
        for h in halo_local:
            assert left.rowmap[h] == left.rowmap[h + 1]
        # Local entries resolve back to the global neighbours.
        v_local = int(left.local(np.array([2]))[0])
        nbrs = left.entries[left.rowmap[v_local]: left.rowmap[v_local + 1]]
        assert set(left.ids[nbrs].tolist()) == {1, 3}

    def test_layout_passthrough(self):
        g = path_graph(4)
        layout = build_partition_layout(g, 2)
        assert build_partition_layout(g, layout) is layout

    def test_rejects_bad_labels(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            build_partition_layout(g, np.array([0, 1]))
        with pytest.raises(ValueError):
            build_partition_layout(g, np.array([0, -1, 0, 1]))

    def test_empty_parts_allowed(self):
        g = path_graph(4)
        layout = build_partition_layout(g, np.array([0, 0, 3, 3]))
        assert layout.num_parts == 4
        assert layout.parts[1].num_owned == 0
        assert layout.parts[1].num_halo == 0

    def test_sparse_labels_rejected(self):
        # Hash-like labels would materialise max(label)+1 shards; refuse early.
        g = path_graph(4)
        with pytest.raises(ValueError, match="dense part ids"):
            build_partition_layout(g, np.array([0, 10**8, 0, 1]))

    def test_stats_accounting(self):
        g = grid2d(4, 4)
        layout = build_partition_layout(g, 4)
        stats = layout.stats(supersteps=9)
        assert stats.num_parts == 4
        assert stats.supersteps == 9
        assert stats.interior_vertices + stats.boundary_vertices == 16
        assert stats.cut_edges == layout.cut_edges
        assert stats.to_dict()["halo_vertices"] == layout.halo_vertices
        # Without a session the shipped-bytes fields default to zero.
        assert stats.resident_bytes == 0 and stats.superstep_bytes == 0
        assert "max_superstep_bytes" in stats.to_dict()

    def test_local_rejects_non_member_vertices(self):
        # Regression: a bare searchsorted silently mapped foreign global ids
        # onto arbitrary local indices; membership is now checked.
        g = path_graph(6)
        layout = build_partition_layout(g, np.array([0, 0, 0, 1, 1, 1]))
        left = layout.parts[0]
        # ids of part 0 are {0, 1, 2, 3 (halo)}; 5 is not local.
        with pytest.raises(ValueError, match="not local to part 0"):
            left.local(np.array([5]))
        # An id between members (4) and one past the end both fail.
        with pytest.raises(ValueError, match="not local"):
            left.local(np.array([0, 4]))
        with pytest.raises(ValueError, match="not local"):
            left.local(np.array([99]))
        # Valid queries (owned and halo) still resolve.
        assert np.array_equal(left.local(left.ids), np.arange(left.ids.size))
        # Empty query is fine.
        assert left.local(np.zeros(0, dtype=np.int64)).size == 0

    def test_layout_tokens_are_unique(self):
        g = path_graph(4)
        a = build_partition_layout(g, 2)
        b = build_partition_layout(g, 2)
        assert a.token != b.token


class TestDrivers:
    def test_single_part_degenerates_to_reference(self):
        g = random_gnp(40, 0.1, seed=5)
        ref = kk_mis2(g)
        out = kk_mis2(g, partitions=1)
        assert np.array_equal(ref.in_set, out.in_set)
        assert out.partition_stats.boundary_vertices == 0
        assert out.partition_stats.cut_edges == 0

    def test_empty_graph_all_drivers(self):
        g = empty_graph(0)
        assert kk_mis2(g, partitions=3).in_set.size == 0
        assert luby_mis1(g, partitions=3).in_set.size == 0
        assert greedy_color(g, partitions=3).num_colors == 0

    def test_worklist_ablation_rejected(self):
        with pytest.raises(ValueError):
            kk_mis2(path_graph(4), partitions=2, use_worklists=False)

    def test_partitioned_driver_direct_call(self):
        g = grid2d(5, 5)
        out = partitioned_kk_mis2(g, 4, backend="numpy")
        assert np.array_equal(out.in_set, kk_mis2(g).in_set)
        assert out.config.partitions == 4

    def test_config_and_stats_recorded(self):
        g = grid2d(5, 5)
        out = kk_mis2(g, partitions=2, backend="threaded")
        assert out.config.backend == "threaded"
        assert out.config.partitions == 2
        assert out.partition_stats.supersteps == 3 * out.iterations
        coloring = greedy_color(g, partitions=2)
        assert coloring.partitions == 2
        assert coloring.partition_stats.supersteps == 2 * coloring.rounds

    def test_unpartitioned_results_have_default_fields(self):
        g = path_graph(5)
        mis = kk_mis2(g)
        assert mis.config.partitions == 1
        assert mis.partition_stats is None
        coloring = greedy_color(g)
        assert coloring.partitions == 1
        assert coloring.partition_stats is None


class TestMapPartitionsSeam:
    def test_base_backend_is_serial_and_ordered(self):
        backend = NumpyBackend()
        assert backend.map_partitions(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_chunked_uses_persistent_pool(self):
        shutdown_partition_pools()
        backend = ChunkedBackend(processes=2)
        assert backend.map_partitions(_double, [1, 2, 3]) == [2, 4, 6]
        assert list(_PARTITION_POOLS) == [2]
        pool = _PARTITION_POOLS[2]
        assert backend.map_partitions(_double, [4, 5, 6]) == [8, 10, 12]
        assert _PARTITION_POOLS[2] is pool  # reused, not respawned
        shutdown_partition_pools()
        assert not _PARTITION_POOLS

    def test_chunked_single_worker_runs_inline(self):
        shutdown_partition_pools()
        backend = ChunkedBackend(processes=1)
        assert backend.map_partitions(_double, [1, 2, 3]) == [2, 4, 6]
        assert not _PARTITION_POOLS

    def test_threaded_map_partitions(self):
        backend = get_backend("threaded").with_jobs(2)
        assert backend.map_partitions(_double, list(range(8))) == [2 * i for i in range(8)]

    def test_nested_inside_pool_worker_runs_inline(self):
        # A partitioned kernel inside a map_graphs process-pool worker must not
        # nest a second process pool (cpu^2 oversubscription); parts go inline.
        backend = ChunkedBackend(processes=2)
        results = backend.map_graphs(_nested_map_partitions, [1, 2])
        assert results == [[2, 4, 6], [2, 4, 6]]
        for pools in backend.map_graphs(_worker_partition_pools, [None, None]):
            assert pools == []


    def test_broken_pool_is_evicted_not_cached(self):
        from concurrent.futures.process import BrokenProcessPool

        shutdown_partition_pools()
        backend = ChunkedBackend(processes=2)
        with pytest.raises(BrokenProcessPool):
            backend.map_partitions(_kill_worker, [1, 2, 3])
        # The casualties were evicted, so the next run gets a healthy pool.
        assert not _PARTITION_POOLS
        assert backend.map_partitions(_double, [1, 2, 3]) == [2, 4, 6]
        shutdown_partition_pools()


class TestResidentSessions:
    """The rank-resident seam: ship the payload once, deltas per superstep."""

    @staticmethod
    def _payloads_states(k=3, size=100):
        payloads = [{"base": np.full(size, i, dtype=np.int64)} for i in range(k)]
        states = [{"acc": np.zeros(4, dtype=np.int64)} for _ in range(k)]
        return payloads, states

    def test_base_session_executes_and_mutates_state(self):
        payloads, states = self._payloads_states()
        session = NumpyBackend().map_partitions_resident("tok", payloads, states)
        outs = session.run(_resident_add, [(0, 5), (2, 7)])
        assert outs == [0 + 5, 2 + 7]
        # State mutation is retained across supersteps.
        outs = session.run(_resident_add, [(0, 1)])
        assert outs == [0 + 5 + 1]
        assert states[0]["acc"][0] == 6 and states[2]["acc"][0] == 7
        session.close()

    def test_accounting_resident_vs_baseline(self):
        payloads, states = self._payloads_states(k=2, size=50)
        per_payload = shipped_nbytes(payloads[0])
        per_state = shipped_nbytes(states[0])
        resident = NumpyBackend().map_partitions_resident("a", payloads, states)
        assert resident.resident_bytes == 2 * (per_payload + per_state)
        resident.run(_resident_add, [(0, 1), (1, 2)])
        resident.run(_resident_add, [(1, 3)])
        # Both directions are charged: scalar deltas out (8 logical bytes
        # each) and the scalar results back (8 each).
        assert resident.superstep_bytes == (16 + 16) + (8 + 8)
        assert resident.max_superstep_bytes == 32
        assert resident.supersteps == 2

        payloads, states = self._payloads_states(k=2, size=50)
        baseline = NumpyBackend().map_partitions_resident(
            "b", payloads, states, resident=False
        )
        assert baseline.resident_bytes == 0
        baseline.run(_resident_add, [(0, 1), (1, 2)])
        baseline.run(_resident_add, [(1, 3)])
        # Per task the baseline ships payload + state + delta out and the
        # mutated state + result back.
        round_trip = per_payload + 2 * per_state
        assert baseline.superstep_bytes == (2 * round_trip + 32) + (round_trip + 16)
        assert baseline.max_superstep_bytes == 2 * round_trip + 32

    def test_threaded_session_shares_state(self):
        payloads, states = self._payloads_states(k=4)
        session = get_backend("threaded").with_jobs(2).map_partitions_resident(
            "t", payloads, states
        )
        outs = session.run(_resident_add, [(i, 10) for i in range(4)])
        assert outs == [10, 11, 12, 13]
        assert [int(s["acc"][0]) for s in states] == [10, 10, 10, 10]

    def test_chunked_pinned_session_ships_payload_once(self):
        shutdown_partition_pools()
        backend = ChunkedBackend(processes=2)
        payloads, states = self._payloads_states(k=3)
        with backend.map_partitions_resident("pin-1", payloads, states) as session:
            outs = session.run(_resident_add, [(0, 1), (1, 2), (2, 3)])
            assert outs == [1, 3, 5]
            # Worker-retained state accumulates without re-shipping payloads.
            outs = session.run(_resident_add, [(0, 10), (2, 30)])
            assert outs == [0 + 1 + 10, 2 + 3 + 30]
        # Slot pools persist (keyed by slot index) for the next session.
        assert sorted(_RESIDENT_SLOT_POOLS) == [0, 1]
        shutdown_partition_pools()
        assert not _RESIDENT_SLOT_POOLS

    def test_chunked_session_reuses_cached_payload_across_runs(self):
        shutdown_partition_pools()
        backend = ChunkedBackend(processes=2)
        payloads, states = self._payloads_states(k=2)
        with backend.map_partitions_resident("reuse", payloads, states) as s1:
            assert s1.run(_resident_add, [(0, 1), (1, 1)]) == [1, 2]
        # Same token, fresh states: the install round-trip skips the payload
        # (the worker already holds it) and state starts clean.
        _, fresh_states = self._payloads_states(k=2)
        with backend.map_partitions_resident("reuse", payloads, fresh_states) as s2:
            assert s2.run(_resident_add, [(0, 5), (1, 5)]) == [5, 6]
        shutdown_partition_pools()

    def test_chunked_nonresident_session_round_trips_state(self):
        shutdown_partition_pools()
        backend = ChunkedBackend(processes=2)
        payloads, states = self._payloads_states(k=3)
        session = backend.map_partitions_resident(
            "nr", payloads, states, resident=False
        )
        assert session.run(_resident_add, [(0, 1), (1, 2), (2, 3)]) == [1, 3, 5]
        assert session.run(_resident_add, [(0, 4)]) == [5]
        assert session.resident_bytes == 0 and session.superstep_bytes > 0
        shutdown_partition_pools()

    def test_chunked_single_worker_falls_back_inline(self):
        shutdown_partition_pools()
        backend = ChunkedBackend(processes=1)
        payloads, states = self._payloads_states(k=2)
        session = backend.map_partitions_resident("inline", payloads, states)
        assert session.run(_resident_add, [(0, 2), (1, 2)]) == [2, 3]
        assert not _RESIDENT_SLOT_POOLS  # no pools for an inline session
        assert states[0]["acc"][0] == 2  # genuinely in-process

    def test_payload_evicted_by_concurrent_sessions_is_reinstalled(self):
        # Crowd the shared slot workers with enough other tokens to push the
        # first session's payloads out of the worker-side LRU store; its next
        # phase must transparently re-install and retry, not abort the run.
        shutdown_partition_pools()
        backend = ChunkedBackend(processes=2)
        payloads, states = self._payloads_states(k=2)
        with backend.map_partitions_resident("evicted", payloads, states) as victim:
            assert victim.run(_resident_add, [(0, 1), (1, 1)]) == [1, 2]
            for n in range(20):  # worker store capacity is 16 per process
                others, other_states = self._payloads_states(k=2)
                with backend.map_partitions_resident(f"crowd-{n}", others, other_states) as s:
                    s.run(_resident_add, [(0, 0), (1, 0)])
            # State survived (it is session-keyed, not LRU-evicted), so the
            # accumulator continues from the pre-eviction value.
            assert victim.run(_resident_add, [(0, 2), (1, 3)]) == [0 + 1 + 2, 1 + 1 + 3]
        shutdown_partition_pools()

    def test_more_parts_than_workers_share_slots(self):
        shutdown_partition_pools()
        backend = ChunkedBackend(processes=2)
        payloads, states = self._payloads_states(k=5)
        with backend.map_partitions_resident("wide", payloads, states) as session:
            outs = session.run(_resident_add, [(i, 100) for i in range(5)])
            assert outs == [100 + i for i in range(5)]
        assert sorted(_RESIDENT_SLOT_POOLS) == [0, 1]
        shutdown_partition_pools()

    def test_kernel_bytes_accounting_on_drivers(self):
        g = random_gnp(60, 0.08, seed=2)
        resident = partitioned_kk_mis2(g, 4, resident=True)
        baseline = partitioned_kk_mis2(g, 4, resident=False)
        assert np.array_equal(resident.in_set, baseline.in_set)
        sr, sn = resident.partition_stats, baseline.partition_stats
        assert sr.supersteps == sn.supersteps
        assert sr.resident_bytes > 0 and sn.resident_bytes == 0
        # The headline win: after the one-time shipment, supersteps are O(halo).
        assert sr.resident_bytes + sr.superstep_bytes < sn.superstep_bytes
        assert sr.max_superstep_bytes < sn.max_superstep_bytes
        assert sr.max_superstep_bytes < sr.resident_bytes


class TestExchangeTraffic:
    """Regression: modelled ghost traffic charges only the live parts' halos."""

    def test_charges_only_live_parts(self):
        from repro.parallel.costmodel import TrafficCounter
        from repro.parallel.partitioned import _exchange_traffic

        g = path_graph(9)
        layout = build_partition_layout(g, np.array([0, 0, 0, 1, 1, 1, 2, 2, 2]))
        halos = [p.num_halo for p in layout.parts]
        assert sum(halos) == layout.halo_vertices > 0

        traffic = TrafficCounter()
        _exchange_traffic(traffic, layout, 8, [0, 2])
        expected = 8 * (halos[0] + halos[2])
        assert traffic.kernels[-1].bytes_read == expected
        assert traffic.kernels[-1].bytes_written == expected
        # No live parts -> a free exchange, not a full-layout charge.
        _exchange_traffic(traffic, layout, 8, [])
        assert traffic.kernels[-1].total_bytes == 0

    def test_driver_charges_less_than_full_layout_every_exchange(self):
        # Once worklists shrink, ghost_exchange regions must charge less than
        # value_bytes * halo_vertices (the old flat rate) on late supersteps.
        g = random_gnp(80, 0.06, seed=4)
        out = partitioned_kk_mis2(g, 4)
        layout_halo = out.partition_stats.halo_vertices
        exchanges = [k for k in out.traffic.kernels if k.name == "ghost_exchange"]
        assert exchanges
        assert all(k.bytes_read <= 8 * layout_halo for k in exchanges)
        assert any(k.bytes_read < 8 * layout_halo for k in exchanges)

    def test_trailing_exchange_charges_next_rounds_readers(self):
        # The exchange after the last phase of a round is read by the *next*
        # round's live parts; once everything converges there are no readers,
        # so each run's final trailing ghost_exchange must charge 0 bytes.
        from repro.parallel.partitioned import partitioned_greedy_color, partitioned_luby_mis1

        g = random_gnp(70, 0.08, seed=6)
        for driver in (partitioned_greedy_color, partitioned_luby_mis1):
            out = driver(g, 3)
            exchanges = [k for k in out.traffic.kernels if k.name == "ghost_exchange"]
            assert exchanges and exchanges[-1].total_bytes == 0


class TestShippedNbytes:
    """Regression: the meter must never count an unknown payload as free."""

    def test_known_types_have_logical_sizes(self):
        assert shipped_nbytes(None) == 0
        assert shipped_nbytes(np.zeros(10, dtype=np.int64)) == 80
        assert shipped_nbytes(7) == 8 and shipped_nbytes(1.5) == 8
        # NumPy scalars are charged by their dtype's itemsize (a flat 8-byte
        # word used to over-charge every narrow scalar); plain Python
        # bool/int/float remain one 8-byte word.
        assert shipped_nbytes(np.int32(3)) == 4 and shipped_nbytes(np.float32(1.0)) == 4
        assert shipped_nbytes(np.uint8(2)) == 1 and shipped_nbytes(np.bool_(True)) == 1
        assert shipped_nbytes(np.int64(3)) == 8 and shipped_nbytes(True) == 8
        assert shipped_nbytes("xorstar") == 7
        assert shipped_nbytes("héllo") == len("héllo".encode("utf-8"))
        assert shipped_nbytes(b"abc") == 3
        assert shipped_nbytes({"a": np.zeros(2), "b": (None, 1)}) == 16 + 8
        assert shipped_nbytes([np.zeros(0), "x"]) == 1

    def test_object_dtype_arrays_raise(self):
        # These used to ship for 0 bytes — invisible on every byte gate.
        with pytest.raises(TypeError, match="object-dtype"):
            shipped_nbytes(np.array([None, "a"], dtype=object))

    def test_unknown_types_raise(self):
        with pytest.raises(TypeError, match="unsupported payload type"):
            shipped_nbytes({1, 2, 3})
        with pytest.raises(TypeError, match="unsupported payload type"):
            shipped_nbytes(object())
        # ... even nested inside an otherwise-fine container.
        with pytest.raises(TypeError):
            shipped_nbytes({"ok": np.zeros(1), "bad": object()})


class _RecordingBackend(NumpyBackend):
    """Backend whose resident sessions log every phase's (fn, tasks) stream
    plus each part's session-open state snapshot."""

    def __init__(self):
        self.phases = []
        self.initial_states = None
        self.halo_locals = None

    def map_partitions_resident(self, token, payloads, states, resident=True):
        self.initial_states = [
            {k: np.copy(v) for k, v in state.items()} for state in states
        ]
        self.halo_locals = [p["halo_local"] for p in payloads]
        session = super().map_partitions_resident(token, payloads, states, resident)
        outer = self
        original_run = session.run

        def recording_run(fn, tasks):
            tasks = list(tasks)
            outer.phases.append((fn, tasks))
            return original_run(fn, tasks)

        session.run = recording_run
        return session


class TestChangedDeltaReconstruction:
    """The tentpole invariant, end-to-end: cumulatively applying the sparse
    changed-halo updates a part receives reconstructs exactly the full-halo
    values the dense protocol ships at every phase."""

    def test_kk_changed_updates_rebuild_full_halo_stream(self):
        from repro.parallel.partitioned import (
            _kk_resident_decide,
            _kk_resident_refresh_column,
            _kk_resident_refresh_row,
        )

        g = random_gnp(90, 0.07, seed=11)
        layout = build_partition_layout(g, 4)
        changed, full = _RecordingBackend(), _RecordingBackend()
        # overlap=False: the recorder hooks session.run, the barrier entry point.
        a = partitioned_kk_mis2(g, layout, backend=changed, changed_deltas=True, overlap=False)
        b = partitioned_kk_mis2(g, layout, backend=full, changed_deltas=False, overlap=False)
        assert np.array_equal(a.in_set, b.in_set)
        assert len(changed.phases) == len(full.phases)

        # Per (part, array) reconstruction state: the session-open halo values.
        recon = {
            (part, name): changed.initial_states[part][name][changed.halo_locals[part]]
            for part in range(layout.num_parts)
            for name in ("T", "M")
        }
        array_of = {_kk_resident_refresh_column: "T", _kk_resident_decide: "M"}
        sparse_phases = 0
        for (fn_c, tasks_c), (fn_f, tasks_f) in zip(changed.phases, full.phases):
            assert fn_c is fn_f
            assert [i for i, _ in tasks_c] == [i for i, _ in tasks_f]
            if fn_c is _kk_resident_refresh_row:
                # The worklist ships identically in both formats.
                for (_, (w_c, it_c)), (_, (w_f, it_f)) in zip(tasks_c, tasks_f):
                    assert np.array_equal(w_c, w_f) and it_c == it_f
                continue
            name = array_of[fn_c]
            for (part, delta_c), (_, delta_f) in zip(tasks_c, tasks_f):
                positions, values = delta_c[-1]
                dense_positions, dense_values = delta_f[-1]
                assert dense_positions is None  # full-halo mode is always dense
                mirror = recon[(part, name)]
                if positions is None:
                    mirror[:] = values
                else:
                    sparse_phases += 1
                    mirror[positions] = values
                # The reconstruction invariant.
                assert np.array_equal(mirror, dense_values)
        assert sparse_phases > 0  # the changed format genuinely went sparse

    def test_decide_and_conflict_phases_ship_no_worklist_indices(self):
        from repro.parallel.partitioned import (
            _color_resident_conflict,
            _kk_resident_decide,
            partitioned_greedy_color,
        )

        g = grid2d(6, 8)
        for fn, run in (
            (
                _kk_resident_decide,
                lambda b: partitioned_kk_mis2(g, 3, backend=b, overlap=False),
            ),
            (
                _color_resident_conflict,
                lambda b: partitioned_greedy_color(g, 3, backend=b, overlap=False),
            ),
        ):
            recorder = _RecordingBackend()
            run(recorder)
            seen = [t for f, tasks in recorder.phases if f is fn for t in tasks]
            assert seen
            for _, delta in seen:
                assert delta[0] is None  # worklist comes from the worker stash


class TestSmokeGraphByteMonotonicity:
    """Satellite gate: on every smoke graph the resident path's largest
    superstep never exceeds the non-resident baseline's, and changed deltas
    never ship more than the full-halo format."""

    @pytest.mark.parametrize("generator", ["laplace3d", "elasticity3d"])
    def test_resident_max_superstep_bounded_by_baseline(self, generator):
        from repro.graph.generators import elasticity3d, laplace3d

        g = laplace3d(10, 10, 10) if generator == "laplace3d" else elasticity3d(6, 6, 6)
        layout = build_partition_layout(g, 4)
        from repro.coloring import greedy_color as _greedy
        from repro.mis import kk_mis2 as _kk

        for kernel in (_kk, _greedy):
            res = kernel(g, partitions=layout).partition_stats
            base = kernel(g, partitions=layout, resident=False).partition_stats
            full = kernel(g, partitions=layout, changed_deltas=False).partition_stats
            assert res.supersteps == base.supersteps == full.supersteps
            assert res.max_superstep_bytes <= base.max_superstep_bytes
            assert res.resident_bytes + res.superstep_bytes < base.superstep_bytes
            # Changed deltas vs the full-halo wire format: strictly less in
            # total, never more in a single phase (the first ghost-reading
            # superstep is dense in both formats, so max may tie).
            assert res.superstep_bytes < full.superstep_bytes
            assert res.max_superstep_bytes <= full.max_superstep_bytes


def _resident_add(payload, state, delta):
    state["acc"][0] += delta
    return int(payload["base"][0] + state["acc"][0])


def _nested_map_partitions(_):
    return ChunkedBackend(processes=4).map_partitions(_double, [1, 2, 3])


def _kill_worker(_):
    import os

    os._exit(1)


def _worker_partition_pools(_):
    _nested_map_partitions(None)
    return list(_PARTITION_POOLS)


def _double(x):
    return x * 2


class TestOverlapEqualsBarrier:
    """Tentpole gate: the overlapped schedule is bit-identical to the
    barrier baseline — statuses AND every gated count (supersteps, all byte
    fields) — on every session backend and both delta wire formats."""

    @staticmethod
    def _deterministic(stats):
        return {k: v for k, v in stats.to_dict().items() if not k.endswith("_seconds")}

    @pytest.mark.parametrize("backend", ["numpy", "threaded", "chunked"])
    @pytest.mark.parametrize("changed_deltas", [True, False])
    def test_bit_identical_statuses_and_counts(self, backend, changed_deltas):
        g = grid2d(7, 9)
        layout = build_partition_layout(g, 3)
        for run, values in (
            (
                lambda ov: kk_mis2(
                    g,
                    seed=0,
                    partitions=layout,
                    backend=backend,
                    changed_deltas=changed_deltas,
                    overlap=ov,
                ),
                lambda r: r.in_set,
            ),
            (
                lambda ov: luby_mis1(
                    g,
                    seed=0,
                    partitions=layout,
                    backend=backend,
                    changed_deltas=changed_deltas,
                    overlap=ov,
                ),
                lambda r: r.in_set,
            ),
            (
                lambda ov: greedy_color(
                    g,
                    partitions=layout,
                    backend=backend,
                    changed_deltas=changed_deltas,
                    overlap=ov,
                ),
                lambda r: r.colors,
            ),
        ):
            overlapped = run(True)
            barrier = run(False)
            assert np.array_equal(values(overlapped), values(barrier))
            assert self._deterministic(overlapped.partition_stats) == self._deterministic(
                barrier.partition_stats
            )

    def test_overlap_ignored_on_non_resident_runs(self):
        # Non-resident accounting re-ships payload+state per phase, so the
        # split schedule would double-charge it; overlap=True must fall back
        # to the barrier schedule there, bit-identically.
        g = grid2d(6, 6)
        layout = build_partition_layout(g, 3)
        a = kk_mis2(g, partitions=layout, resident=False, overlap=True)
        b = kk_mis2(g, partitions=layout, resident=False, overlap=False)
        assert np.array_equal(a.in_set, b.in_set)
        assert self._deterministic(a.partition_stats) == self._deterministic(
            b.partition_stats
        )

    def test_stats_timing_triple_present_and_finite(self):
        g = grid2d(6, 6)
        stats = kk_mis2(g, partitions=build_partition_layout(g, 2)).partition_stats
        for key in ("compute_seconds", "exchange_seconds", "idle_seconds"):
            value = stats.to_dict()[key]
            assert isinstance(value, float) and value >= 0.0

"""PhaseFuture / step-group error paths.

A ``commit=False`` step group joins several ``run_async`` sub-phases into one
accounting superstep; these tests pin what happens when a member blows up:

* the failure is loud on *every* member — siblings raise
  :class:`StepGroupError` instead of quietly resolving;
* the group never commits partial statistics — no ``supersteps`` increment,
  no ``superstep_bytes`` / ``max_superstep_bytes`` contribution from any of
  the group's sub-phases, resolved or not;
* a poisoned open group cannot be joined by a later ``run_async``.
"""

import numpy as np
import pytest

from repro.parallel import StepGroupError, get_backend


class _Boom(RuntimeError):
    pass


def _ok(payload, state, delta):
    state["acc"] += delta
    return state["acc"].copy()


def _boom(payload, state, delta):
    raise _Boom("task function failed")


def _make_session(backend_name="numpy", parts=3, n=16, token="tok/phase-errors"):
    B = get_backend(backend_name)
    payloads = [{"w": np.arange(n, dtype=np.int64)} for _ in range(parts)]
    states = [{"acc": np.zeros(n, dtype=np.int64)} for _ in range(parts)]
    return B.map_partitions_resident(token, payloads, states)


@pytest.mark.parametrize("backend_name", ["numpy", "threaded"])
class TestStepGroupFailure:
    def test_failed_member_does_not_commit_partial_stats(self, backend_name):
        session = _make_session(backend_name)
        with session:
            # One committed warm-up superstep to have a non-trivial baseline.
            session.run(_ok, [(0, 1), (1, 1)])
            base_steps = session.supersteps
            base_bytes = session.superstep_bytes
            base_max = session.max_superstep_bytes
            assert base_steps == 1

            first = session.run_async(_ok, [(0, 2)], commit=False)
            second = session.run_async(_boom, [(1, 2)], commit=True)
            assert first.result() is not None  # resolves fine on its own
            with pytest.raises(_Boom):
                second.result()

            # The group must not half-commit: the resolved first member's
            # bytes and the superstep increment are dropped with the group.
            assert session.supersteps == base_steps
            assert session.superstep_bytes == base_bytes
            assert session.max_superstep_bytes == base_max

    def test_sibling_resolved_after_failure_raises_loudly(self, backend_name):
        session = _make_session(backend_name, token="tok/phase-errors-sibling")
        with session:
            healthy = session.run_async(_ok, [(0, 1)], commit=False)
            failing = session.run_async(_boom, [(1, 1)], commit=True)
            with pytest.raises(_Boom):
                failing.result()
            # The sibling was submitted before the failure and its task may
            # even have run — but consuming it must be loud, not silent.
            with pytest.raises(StepGroupError):
                healthy.result()
            assert not healthy.done
            assert session.supersteps == 0
            assert session.superstep_bytes == 0

    def test_member_resolved_before_failure_keeps_its_results(self, backend_name):
        session = _make_session(backend_name, token="tok/phase-errors-early")
        with session:
            early = session.run_async(_ok, [(0, 5)], commit=False)
            results = early.result()  # resolved while the group is healthy
            failing = session.run_async(_boom, [(1, 5)], commit=True)
            with pytest.raises(_Boom):
                failing.result()
            # Cached results stay readable; only the accounting was dropped.
            assert early.done
            assert np.array_equal(early.result()[0], results[0])
            assert session.supersteps == 0

    def test_open_poisoned_group_rejects_new_members(self, backend_name):
        session = _make_session(backend_name, token="tok/phase-errors-join")
        with session:
            # Fail a member while the group is still open (commit=False).
            failing = session.run_async(_boom, [(0, 1)], commit=False)
            with pytest.raises(_Boom):
                failing.result()
            with pytest.raises(StepGroupError):
                session.run_async(_ok, [(1, 1)], commit=True)

    def test_failure_in_committed_singleton_phase_commits_nothing(self, backend_name):
        session = _make_session(backend_name, token="tok/phase-errors-single")
        with session:
            with pytest.raises(_Boom):
                session.run(_boom, [(0, 1), (1, 1)])
            assert session.supersteps == 0
            assert session.superstep_bytes == 0
            # The session recovers: the next (fresh) superstep commits cleanly.
            session.run(_ok, [(0, 1)])
            assert session.supersteps == 1


class TestStepGroupFailureChunked:
    """The pinned (process-pool) session has its own collect path — cover it."""

    def test_failed_member_is_loud_and_uncommitted(self):
        session = _make_session("chunked", token="tok/phase-errors-chunked")
        with session:
            healthy = session.run_async(_ok, [(0, 3)], commit=False)
            failing = session.run_async(_boom, [(1, 3)], commit=True)
            with pytest.raises(_Boom):
                failing.result()
            with pytest.raises(StepGroupError):
                healthy.result()
            assert session.supersteps == 0
            assert session.superstep_bytes == 0

"""Tests for the segmented/data-parallel primitives underlying every graph kernel."""

import numpy as np
import pytest

from repro.graph import path_graph, star_graph
from repro.parallel import (
    exclusive_scan,
    inclusive_scan,
    segmented_all_equal,
    segmented_any_equal,
    segmented_lexmin,
    segmented_max,
    segmented_min,
    segmented_sum,
    stream_compact,
)
from repro.parallel.primitives import expand_rows, row_lengths


class TestScans:
    def test_inclusive_scan(self):
        assert inclusive_scan(np.array([1, 2, 3])).tolist() == [1, 3, 6]

    def test_exclusive_scan_has_total_at_end(self):
        out = exclusive_scan(np.array([1, 2, 3]))
        assert out.tolist() == [0, 1, 3, 6]

    def test_exclusive_scan_empty(self):
        assert exclusive_scan(np.array([], dtype=np.int64)).tolist() == [0]

    def test_scan_rejects_2d(self):
        with pytest.raises(ValueError):
            exclusive_scan(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            inclusive_scan(np.zeros((2, 2)))

    def test_exclusive_scan_matches_loop(self):
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 10, size=50)
        out = exclusive_scan(vals)
        acc = 0
        for i, v in enumerate(vals):
            assert out[i] == acc
            acc += v
        assert out[-1] == acc


class TestStreamCompact:
    def test_keeps_order(self):
        items = np.array([5, 6, 7, 8])
        keep = np.array([True, False, True, False])
        assert stream_compact(items, keep).tolist() == [5, 7]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            stream_compact(np.array([1, 2]), np.array([True]))


class TestRowExpansion:
    def test_row_lengths(self):
        g = star_graph(3)
        assert row_lengths(g.rowmap, np.array([0, 1])).tolist() == [3, 1]

    def test_expand_rows_structure(self):
        g = path_graph(4)
        slots, seg = expand_rows(g.rowmap, np.array([0, 2]))
        assert seg.tolist() == [0, 1, 3]
        assert g.entries[slots].tolist() == [1, 1, 3]

    def test_expand_rows_with_empty_rows(self):
        from repro.graph import from_edges

        g = from_edges(4, [(0, 1)])
        slots, seg = expand_rows(g.rowmap, np.array([2, 0, 3]))
        assert seg.tolist() == [0, 0, 1, 1]
        assert g.entries[slots].tolist() == [1]

    def test_expand_rows_no_rows(self):
        g = path_graph(3)
        slots, seg = expand_rows(g.rowmap, np.array([], dtype=np.int64))
        assert slots.size == 0
        assert seg.tolist() == [0]


class TestSegmentedReductions:
    def test_segmented_min_max_sum(self):
        values = np.array([4, 1, 7, 3, 9], dtype=np.int64)
        seg = np.array([0, 2, 2, 5])  # segments: [4,1], [], [7,3,9]
        assert segmented_min(values, seg, identity=99).tolist() == [1, 99, 3]
        assert segmented_max(values, seg, identity=-1).tolist() == [4, -1, 9]
        assert segmented_sum(values, seg).tolist() == [5, 0, 19]

    def test_trailing_empty_segment(self):
        values = np.array([2, 8], dtype=np.int64)
        seg = np.array([0, 2, 2])
        assert segmented_min(values, seg, identity=42).tolist() == [2, 42]

    def test_leading_empty_segment(self):
        values = np.array([2, 8], dtype=np.int64)
        seg = np.array([0, 0, 2])
        assert segmented_min(values, seg, identity=42).tolist() == [42, 2]

    def test_all_empty(self):
        values = np.array([], dtype=np.int64)
        seg = np.array([0, 0, 0])
        assert segmented_min(values, seg, identity=7).tolist() == [7, 7]

    def test_matches_loop_reference(self):
        rng = np.random.default_rng(1)
        lens = rng.integers(0, 5, size=30)
        seg = exclusive_scan(lens)
        values = rng.integers(0, 100, size=int(seg[-1]))
        mins = segmented_min(values, seg, identity=10**6)
        sums = segmented_sum(values, seg)
        for j in range(30):
            chunk = values[seg[j]: seg[j + 1]]
            assert sums[j] == chunk.sum()
            assert mins[j] == (chunk.min() if chunk.size else 10**6)


class TestSegmentedPredicates:
    def test_all_equal(self):
        values = np.array([5, 5, 3, 5])
        seg = np.array([0, 2, 2, 4])
        ref = np.array([5, 5, 5])
        out = segmented_all_equal(values, ref, seg)
        assert out.tolist() == [True, True, False]  # empty segment vacuously true

    def test_any_equal(self):
        values = np.array([1, 2, 3, 9])
        seg = np.array([0, 2, 2, 4])
        out = segmented_any_equal(values, 9, seg)
        assert out.tolist() == [False, False, True]


class TestSegmentedLexmin:
    def test_two_key_lexmin(self):
        prio = np.array([5, 5, 2, 9], dtype=np.uint64)
        vid = np.array([3, 1, 7, 0], dtype=np.int64)
        seg = np.array([0, 2, 4])
        p, i = segmented_lexmin([prio, vid], seg, [np.uint64(99), np.int64(99)])
        assert p.tolist() == [5, 2]
        assert i.tolist() == [1, 7]

    def test_three_key_matches_python_min(self):
        rng = np.random.default_rng(2)
        lens = rng.integers(0, 6, size=20)
        seg = exclusive_scan(lens)
        total = int(seg[-1])
        status = rng.integers(0, 3, size=total).astype(np.uint8)
        prio = rng.integers(0, 4, size=total).astype(np.uint64)
        vid = rng.integers(0, 50, size=total).astype(np.int64)
        s, p, i = segmented_lexmin(
            [status, prio, vid], seg, [np.uint8(2), np.uint64(2**64 - 1), np.int64(2**62)]
        )
        for j in range(20):
            lo, hi = seg[j], seg[j + 1]
            if lo == hi:
                assert s[j] == 2
                continue
            expected = min(zip(status[lo:hi], prio[lo:hi], vid[lo:hi]))
            assert (s[j], p[j], i[j]) == expected

    def test_empty_segment_identities(self):
        s, = segmented_lexmin([np.array([], dtype=np.int64)], np.array([0, 0]), [np.int64(-5)])
        assert s.tolist() == [-5]

    def test_validation(self):
        with pytest.raises(ValueError):
            segmented_lexmin([], np.array([0]), [])
        with pytest.raises(ValueError):
            segmented_lexmin([np.array([1])], np.array([0, 1]), [1, 2])
        with pytest.raises(ValueError):
            segmented_lexmin([np.array([1, 2])], np.array([0, 1]), [0])

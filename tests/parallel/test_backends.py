"""Tests for the ExecutionBackend registry, selection machinery and backends."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.graph import from_edges, path_graph, random_gnp
from repro.mis import kk_mis2
from repro.parallel import (
    ChunkedBackend,
    ExecutionBackend,
    NumbaBackend,
    NumpyBackend,
    ThreadedBackend,
    available_backends,
    default_backend,
    exclusive_scan,
    get_backend,
    numba_available,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from repro.parallel import backends
from repro.parallel.backends import _REGISTRY


def _graph_mis_size(graph):
    """Module-level so the process-pool test can pickle it."""
    return int(kk_mis2(graph).in_set.size)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert available_backends() == [
            "numpy",
            "chunked",
            "threaded",
            "numba",
            "distributed",
        ]

    def test_get_backend_by_name_and_instance(self):
        np_backend = get_backend("numpy")
        assert isinstance(np_backend, NumpyBackend)
        assert get_backend(np_backend) is np_backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("cuda")

    def test_register_rejects_duplicates_and_non_backends(self):
        with pytest.raises(ValueError):
            register_backend(NumpyBackend())
        with pytest.raises(TypeError):
            register_backend("numpy")

    def test_register_overwrite(self):
        original = get_backend("chunked")
        replacement = ChunkedBackend(block_elements=128)
        try:
            register_backend(replacement, overwrite=True)
            assert get_backend("chunked") is replacement
        finally:
            register_backend(original, overwrite=True)


class TestDefaultBackend:
    def test_default_is_numpy(self):
        assert default_backend().name == "numpy"
        assert resolve_backend(None) is default_backend()

    def test_resolve_by_name(self):
        assert resolve_backend("chunked").name == "chunked"

    def test_set_default_backend_context_restores(self):
        before = default_backend()
        with set_default_backend("chunked") as active:
            assert active.name == "chunked"
            assert default_backend().name == "chunked"
            # Kernels called without backend= pick up the scoped default.
            result = kk_mis2(path_graph(8))
            assert result.config.backend == "chunked"
        assert default_backend() is before

    def test_set_default_backend_plain_call(self):
        before = default_backend()
        try:
            set_default_backend("chunked")
            assert default_backend().name == "chunked"
        finally:
            set_default_backend(before)

    def test_context_restores_on_exception(self):
        before = default_backend()
        with pytest.raises(RuntimeError):
            with set_default_backend("chunked"):
                raise RuntimeError("boom")
        assert default_backend() is before


class TestChunkedBackend:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            ChunkedBackend(block_elements=0)
        with pytest.raises(ValueError):
            ChunkedBackend(processes=0)

    def test_segment_blocks_never_split_segments(self):
        B = ChunkedBackend(block_elements=4)
        # Segment lengths 3, 3, 10, 1: the 10-element segment exceeds the block
        # size and must still land in a block of its own.
        seg = exclusive_scan(np.array([3, 3, 10, 1]))
        blocks = B._segment_blocks(seg)
        assert blocks[0] == (0, 1) or blocks[0] == (0, 2)
        covered = []
        for s, e in blocks:
            assert s < e
            covered.extend(range(s, e))
        assert covered == [0, 1, 2, 3]

    def test_chunked_scan_matches_reference_int(self):
        B = ChunkedBackend(block_elements=7)
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 100, size=1000)
        assert np.array_equal(B.exclusive_scan(vals), exclusive_scan(vals))
        assert np.array_equal(B.inclusive_scan(vals), np.cumsum(vals))
        assert B.exclusive_scan(vals).dtype == exclusive_scan(vals).dtype

    def test_chunked_scan_floats_delegate(self):
        B = ChunkedBackend(block_elements=7)
        vals = np.linspace(0.0, 1.0, 100)
        assert np.array_equal(B.exclusive_scan(vals), exclusive_scan(vals))

    @pytest.mark.parametrize("dtype", [np.uint64, np.uint32, np.int32, np.int64, np.bool_])
    @pytest.mark.parametrize("size", [7, 8, 9, 100])
    def test_chunked_scan_dtype_independent_of_size(self, dtype, size):
        # Regression: the blocked path used to force int64 while inputs below
        # block_elements took the reference's promoted dtype (uint64 for
        # unsigned inputs), so the output dtype flipped at the block boundary.
        B = ChunkedBackend(block_elements=8)
        vals = (np.arange(size) % 3).astype(dtype)
        ref_inc = np.cumsum(vals)
        out_inc = B.inclusive_scan(vals)
        assert out_inc.dtype == ref_inc.dtype, (dtype, size)
        assert np.array_equal(out_inc, ref_inc)
        ref_exc = exclusive_scan(vals)
        out_exc = B.exclusive_scan(vals)
        assert out_exc.dtype == ref_exc.dtype, (dtype, size)
        assert np.array_equal(out_exc, ref_exc)

    def test_chunked_compact_matches_reference(self):
        B = ChunkedBackend(block_elements=16)
        rng = np.random.default_rng(1)
        items = rng.integers(0, 1000, size=500)
        keep = rng.random(500) < 0.3
        assert np.array_equal(B.stream_compact(items, keep), items[keep])

    def test_chunked_expand_rows_matches_reference(self):
        B = ChunkedBackend(block_elements=8)
        ref = NumpyBackend()
        g = random_gnp(150, 0.05, seed=5)
        rows = np.arange(g.num_vertices, dtype=np.int64)
        s_ref, seg_ref = ref.expand_rows(g.rowmap, rows)
        s_chk, seg_chk = B.expand_rows(g.rowmap, rows)
        assert np.array_equal(s_ref, s_chk)
        assert np.array_equal(seg_ref, seg_chk)

    def test_map_graphs_process_pool_preserves_order(self):
        graphs = [random_gnp(40, 0.1, seed=s) for s in range(4)]
        serial = NumpyBackend().map_graphs(_graph_mis_size, graphs)
        pooled = ChunkedBackend(processes=2).map_graphs(_graph_mis_size, graphs)
        inline = ChunkedBackend(processes=1).map_graphs(_graph_mis_size, graphs)
        assert pooled == serial == inline

    def test_error_paths_match_reference(self):
        B = ChunkedBackend(block_elements=4)
        with pytest.raises(ValueError):
            B.stream_compact(np.array([1, 2]), np.array([True]))
        with pytest.raises(ValueError):
            B.exclusive_scan(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            B.segmented_lexmin([], np.array([0]), [])


class TestThreadedBackend:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            ThreadedBackend(threads=0)

    def test_map_graphs_thread_pool_preserves_order(self):
        graphs = [random_gnp(40, 0.1, seed=s) for s in range(4)]
        serial = NumpyBackend().map_graphs(_graph_mis_size, graphs)
        pooled = ThreadedBackend(threads=3).map_graphs(_graph_mis_size, graphs)
        inline = ThreadedBackend(threads=1).map_graphs(_graph_mis_size, graphs)
        assert pooled == serial == inline

    def test_primitives_are_the_reference(self):
        # The threaded backend accelerates only map_graphs; per-graph primitives
        # delegate to the NumPy reference, so equivalence is structural.
        B = ThreadedBackend()
        vals = np.arange(20)
        assert np.array_equal(B.exclusive_scan(vals), exclusive_scan(vals))

    def test_requestable_by_name(self):
        result = kk_mis2(path_graph(8), backend="threaded")
        assert result.config.backend == "threaded"


class TestWithJobs:
    def test_serial_backends_ignore_jobs(self):
        B = NumpyBackend()
        assert B.with_jobs(4) is B
        assert B.with_jobs(None) is B

    def test_chunked_clone_keeps_block_size(self):
        B = ChunkedBackend(block_elements=512)
        clone = B.with_jobs(3)
        assert clone is not B
        assert clone.processes == 3
        assert clone.block_elements == 512
        assert B.processes is None  # registered instance untouched
        assert B.with_jobs(None) is B

    def test_threaded_clone(self):
        B = ThreadedBackend()
        clone = B.with_jobs(2)
        assert clone is not B
        assert clone.threads == 2
        assert B.threads is None


class TestNumbaBackend:
    def test_reports_availability(self):
        B = NumbaBackend()
        assert B.available == numba_available()

    def test_degrades_to_numpy_reference(self):
        # Whether or not numba is installed, results must equal the reference.
        B = NumbaBackend()
        ref = NumpyBackend()
        rng = np.random.default_rng(2)
        lens = rng.integers(0, 6, size=50)
        seg = exclusive_scan(lens)
        values = rng.integers(0, 1000, size=int(seg[-1])).astype(np.uint64)
        ident = np.uint64(2**64 - 1)
        assert np.array_equal(
            B.segmented_min(values, seg, ident), ref.segmented_min(values, seg, ident)
        )
        assert np.array_equal(
            B.segmented_max(values, seg, np.uint64(0)),
            ref.segmented_max(values, seg, np.uint64(0)),
        )
        assert np.array_equal(B.segmented_sum(values, seg), ref.segmented_sum(values, seg))

    def test_requestable_by_name_without_numba(self):
        result = kk_mis2(from_edges(5, [(0, 1), (1, 2), (3, 4)]), backend="numba")
        assert result.config.backend == "numba"

    def test_float_nan_matches_nan_propagating_reference(self):
        # Regression: the jitted </> comparison loops skip NaN (NaN < x is
        # False), diverging from the reference's np.minimum/np.maximum, which
        # propagate it. Float inputs must delegate to the reference.
        B = NumbaBackend()
        ref = NumpyBackend()
        values = np.array([1.0, np.nan, 3.0, 2.0, np.nan, 0.5])
        seg = np.array([0, 3, 6], dtype=np.int64)
        for op in ("segmented_min", "segmented_max"):
            out = getattr(B, op)(values, seg, np.inf)
            expect = getattr(ref, op)(values, seg, np.inf)
            assert out.dtype == expect.dtype
            assert np.array_equal(out, expect, equal_nan=True)
            assert np.isnan(out).all()  # every segment contains a NaN
        assert np.array_equal(
            B.segmented_sum(values, seg), ref.segmented_sum(values, seg), equal_nan=True
        )

    def test_float_without_nan_matches_reference(self):
        B = NumbaBackend()
        ref = NumpyBackend()
        rng = np.random.default_rng(3)
        values = rng.random(40)
        seg = exclusive_scan(np.array([5, 0, 10, 25]))
        assert np.array_equal(
            B.segmented_min(values, seg, np.inf), ref.segmented_min(values, seg, np.inf)
        )
        assert np.array_equal(
            B.segmented_max(values, seg, -np.inf), ref.segmented_max(values, seg, -np.inf)
        )

    def test_empty_input_dtype_matches_reference(self):
        # Regression: the empty-input output dtype must be the reference's
        # identity-derived choice, not a JIT-path variant.
        B = NumbaBackend()
        ref = NumpyBackend()
        empty = np.zeros(0, dtype=np.uint64)
        seg = np.array([0, 0, 0], dtype=np.int64)
        for identity in (np.uint64(2**64 - 1), 7, 1.5):
            out = B.segmented_min(empty, seg, identity)
            expect = ref.segmented_min(empty, seg, identity)
            assert out.dtype == expect.dtype, identity
            assert np.array_equal(out, expect)
        out_sum = B.segmented_sum(empty, seg)
        expect_sum = ref.segmented_sum(empty, seg)
        assert out_sum.dtype == expect_sum.dtype
        assert np.array_equal(out_sum, expect_sum)
        # Zero segments with non-empty values: output is empty but typed.
        values = np.arange(4, dtype=np.int64)
        none = np.array([0], dtype=np.int64)
        assert B.segmented_min(values, none, 0).dtype == ref.segmented_min(values, none, 0).dtype


def _install(token, part, payload, session_key, state):
    """Shorthand for the worker-side install task, called in-process."""
    return backends._resident_install((token, part, payload, session_key, state))


class TestResidentInstallEviction:
    """Regression tests for the LRU eviction scan of ``_resident_install``."""

    @pytest.fixture(autouse=True)
    def _isolated_store(self, monkeypatch):
        monkeypatch.setattr(backends, "_RESIDENT_PAYLOADS", OrderedDict())
        monkeypatch.setattr(backends, "_RESIDENT_STATES", {})
        monkeypatch.setattr(backends, "_RESIDENT_PAYLOAD_CAPACITY", 3)

    def test_protected_head_entry_does_not_block_eviction(self):
        # Interleave two tokens past capacity so the installing token's own
        # entry sits at the LRU head when capacity is exceeded. The eviction
        # scan used to *stop* at that protected head entry, leaving the store
        # over capacity with token B's stale payloads parked behind it forever.
        _install("A", 0, "pA0", 1, "sA0")
        _install("B", 0, "pB0", 2, "sB0")
        _install("B", 1, "pB1", 2, "sB1")
        _install("A", 1, "pA1", 1, "sA1")  # head is now ("A", 0): protected
        store = backends._RESIDENT_PAYLOADS
        assert len(store) <= backends._RESIDENT_PAYLOAD_CAPACITY
        # The oldest *other-token* entry was evicted; A's entries survive.
        assert ("B", 0) not in store
        assert set(store) == {("A", 0), ("B", 1), ("A", 1)}

    def test_installing_token_never_evicts_its_own_parts(self):
        # A session with more parts than capacity must keep every one of its
        # own payloads resident (over capacity is the lesser evil — evicting a
        # live session's parts would make it thrash within a single superstep).
        for part in range(5):
            _install("A", part, f"p{part}", 1, f"s{part}")
        store = backends._RESIDENT_PAYLOADS
        assert set(store) == {("A", part) for part in range(5)}

    def test_eviction_is_oldest_first_among_unprotected(self):
        _install("B", 0, "pB0", 2, "sB0")
        _install("C", 0, "pC0", 3, "sC0")
        _install("B", 1, "pB1", 2, "sB1")
        _install("A", 0, "pA0", 1, "sA0")
        assert ("B", 0) not in backends._RESIDENT_PAYLOADS  # oldest went first
        assert ("C", 0) in backends._RESIDENT_PAYLOADS


# ---- worker-side helpers for the payload-miss retry tests (module level so
# ---- the single-worker slot pool can unpickle them by reference)

def _drop_payload(args):
    """Worker task: evict one payload behind the coordinator's back."""
    token, part = args
    backends._RESIDENT_PAYLOADS.pop((token, part), None)
    return True


_FLAKY_RESTORE_FAILURES = 0

# Bound at import time: a slot worker forked while the coordinator's
# monkeypatch is active would otherwise resolve the patched module attribute
# and recurse into the stand-in instead of the real restore.
_REAL_RESTORE = backends._resident_restore_payload


def _arm_flaky_restore(failures):
    """Worker task: make the next ``failures`` restores silently do nothing."""
    global _FLAKY_RESTORE_FAILURES
    _FLAKY_RESTORE_FAILURES = failures
    return True


def _flaky_restore(args):
    """Worker task standing in for ``_resident_restore_payload``: drops the
    first N restore requests on the floor (as if a concurrent session re-evicted
    the payload between the restore and the retry), then behaves normally."""
    global _FLAKY_RESTORE_FAILURES
    if _FLAKY_RESTORE_FAILURES > 0:
        _FLAKY_RESTORE_FAILURES -= 1
        return True
    return _REAL_RESTORE(args)


def _never_restore(args):
    """Worker task: every restore is lost — the exhaustion path."""
    return True


def _double_state(payload, state, delta):
    state["x"] = state["x"] * 2 + delta
    return state["x"].copy()


class TestPinnedSessionMissRetry:
    """The `_ResidentPayloadMiss` recovery must survive repeated evictions."""

    def _session(self):
        payloads = [{"w": np.arange(3)}]
        states = [{"x": np.ones(3, dtype=np.int64)}]
        return backends._PinnedResidentSession(
            f"tok/miss-retry/{next(backends._RESIDENT_SESSION_KEYS)}",
            payloads,
            states,
            width=1,
        )

    def test_double_eviction_recovers(self, monkeypatch):
        # Force the phase to miss, then make the first restore vanish too (a
        # concurrent session re-evicting between restore and retry). The old
        # single-shot recovery surfaced the second miss as a raw failure; the
        # bounded loop must recover and produce the right result.
        monkeypatch.setattr(backends, "_resident_restore_payload", _flaky_restore)
        with self._session() as session:
            pool = backends._resident_slot(0)
            pool.submit(_drop_payload, (session.token, 0)).result()
            pool.submit(_arm_flaky_restore, 1).result()
            (result,) = session.run(_double_state, [(0, 5)])
        assert np.array_equal(result, np.ones(3, dtype=np.int64) * 2 + 5)

    def test_exhaustion_raises_clear_error(self, monkeypatch):
        monkeypatch.setattr(backends, "_resident_restore_payload", _never_restore)
        with self._session() as session:
            backends._resident_slot(0).submit(
                _drop_payload, (session.token, 0)
            ).result()
            with pytest.raises(RuntimeError, match="evicted again after each of"):
                session.run(_double_state, [(0, 5)])


def test_every_registered_backend_is_an_execution_backend():
    for name in available_backends():
        assert isinstance(_REGISTRY[name], ExecutionBackend)
        assert _REGISTRY[name].name == name


# ---------------------------------------------------------------- run_async


def _echo_delta(payload, state, delta):
    return delta


def _stash_delta(payload, state, delta):
    state["v"] = delta
    return None


def _read_stash(payload, state, delta):
    return state["v"]


class TestRunAsync:
    """The overlap seam: PhaseFuture resolution and _StepGroup accounting."""

    @staticmethod
    def _session(resident=True):
        payloads = [np.zeros(4, dtype=np.int64), np.zeros(2, dtype=np.int64)]
        states = [{"v": None}, {"v": None}]
        return backends._LocalResidentSession(
            "tok", payloads, states, resident=resident
        )

    @pytest.mark.parametrize("resident", [True, False])
    def test_split_phase_commits_one_superstep(self, resident):
        a = np.arange(3, dtype=np.int64)
        b = np.arange(5, dtype=np.int64)
        c = np.arange(2, dtype=np.int64)
        split = self._session(resident)
        fb = split.run_async(_echo_delta, [(0, a), (1, b)], commit=False)
        fi = split.run_async(_echo_delta, [(0, c)])
        # Resolving the committing member first must NOT commit the group
        # while the other member is pending — accounting is completion-order
        # independent.
        fi.result()
        assert split.supersteps == 0 and split.superstep_bytes == 0
        fb.result()
        assert split.supersteps == 1
        barrier = self._session(resident)
        barrier.run(_echo_delta, [(0, a), (1, b), (0, c)])
        assert split.supersteps == barrier.supersteps
        assert split.superstep_bytes == barrier.superstep_bytes
        assert split.max_superstep_bytes == barrier.max_superstep_bytes

    def test_result_is_cached(self):
        session = self._session()
        future = session.run_async(_echo_delta, [(0, np.arange(3))])
        assert not future.done
        first = future.result()
        assert future.done
        assert future.result() is first
        assert session.supersteps == 1  # no double commit

    def test_run_matches_run_async_accounting(self):
        delta = np.arange(6, dtype=np.int64)
        via_run = self._session()
        via_run.run(_echo_delta, [(0, delta)])
        via_async = self._session()
        via_async.run_async(_echo_delta, [(0, delta)]).result()
        assert via_run.superstep_bytes == via_async.superstep_bytes
        assert via_run.supersteps == via_async.supersteps

    def test_same_part_tasks_run_fifo_across_phases(self):
        # A boundary sub-phase's worker-side stash must be visible to the
        # interior sub-phase of the same part when futures resolve in
        # submission order — the chaining the overlapped drivers rely on.
        session = self._session()
        marker = np.arange(7, dtype=np.int64)
        fb = session.run_async(_stash_delta, [(0, marker)], commit=False)
        fi = session.run_async(_read_stash, [(0, None)])
        fb.result()
        (seen,) = fi.result()
        assert np.array_equal(seen, marker)
        assert session.supersteps == 1

"""Tests for graph builders and converters."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (
    from_dense,
    from_edges,
    from_networkx,
    from_scipy,
    remove_self_loops,
    symmetrize,
    to_scipy,
)


class TestFromEdges:
    def test_basic(self):
        g = from_edges(3, [(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_empty_edges(self):
        g = from_edges(5, [])
        assert g.num_vertices == 5
        assert g.num_edge_slots == 0

    def test_duplicates_collapsed(self):
        g = from_edges(3, [(0, 1), (0, 1), (1, 0)])
        assert g.num_edge_slots == 2

    def test_self_loops_dropped_by_default(self):
        g = from_edges(3, [(0, 0), (0, 1)])
        assert not g.has_self_loops()
        g2 = from_edges(3, [(0, 0), (0, 1)], allow_self_loops=True)
        assert g2.has_self_loops()

    def test_asymmetric_storage(self):
        g = from_edges(3, [(0, 1)], symmetric=False)
        assert g.neighbors(0).tolist() == [1]
        assert g.neighbors(1).tolist() == []

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            from_edges(2, [(0, 5)])

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            from_edges(3, [(0, 1, 2)])


class TestScipyConversions:
    def test_from_scipy_symmetrizes_pattern(self):
        A = sp.csr_matrix(np.array([[0, 1, 0], [0, 0, 0], [0, 2, 0]], dtype=float))
        g = from_scipy(A)
        assert g.is_symmetric()
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_from_scipy_drops_diagonal(self):
        A = sp.identity(4, format="csr") + sp.diags([1.0], offsets=[1], shape=(4, 4))
        g = from_scipy(A)
        assert not g.has_self_loops()

    def test_from_scipy_rejects_rectangular(self):
        with pytest.raises(ValueError):
            from_scipy(sp.csr_matrix(np.ones((2, 3))))

    def test_roundtrip_to_scipy(self):
        g = from_edges(4, [(0, 1), (2, 3), (1, 2)])
        A = to_scipy(g)
        g2 = from_scipy(A)
        assert g == g2

    def test_from_dense(self):
        dense = np.array([[0, 1], [1, 0]])
        g = from_dense(dense)
        assert g.num_edge_slots == 2
        with pytest.raises(ValueError):
            from_dense(np.ones((2, 3)))


class TestNetworkx:
    def test_from_networkx(self):
        nx = pytest.importorskip("networkx")
        gnx = nx.path_graph(5)
        g = from_networkx(gnx)
        assert g.num_vertices == 5
        assert g.num_edges == 4


class TestSymmetrizeAndLoops:
    def test_symmetrize(self):
        g = from_edges(3, [(0, 1), (1, 2)], symmetric=False)
        s = symmetrize(g)
        assert s.is_symmetric()
        assert s.has_edge(1, 0)

    def test_remove_self_loops_no_loops_is_copy(self):
        g = from_edges(3, [(0, 1)])
        h = remove_self_loops(g)
        assert h == g

    def test_remove_self_loops(self):
        g = from_edges(3, [(0, 0), (0, 1)], allow_self_loops=True)
        h = remove_self_loops(g)
        assert not h.has_self_loops()
        assert h.has_edge(0, 1)

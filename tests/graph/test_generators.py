"""Tests for the graph and matrix generators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (
    anisotropic3d,
    complete_graph,
    cycle_graph,
    elasticity3d,
    elasticity3d_matrix,
    empty_graph,
    grid2d,
    laplace2d,
    laplace3d,
    laplace3d_matrix,
    paper_example_graph,
    path_graph,
    random_gnp,
    random_regular,
    rmat,
    star_graph,
)


class TestCanonicalGraphs:
    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(v) == 2 for v in range(6))
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 7
        assert g.num_vertices == 8

    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10
        assert all(g.degree(v) == 4 for v in range(5))

    def test_empty(self):
        assert empty_graph(3).num_edges == 0

    def test_negative_sizes_rejected(self):
        for fn in (path_graph, complete_graph, empty_graph):
            with pytest.raises(ValueError):
                fn(-1)
        with pytest.raises(ValueError):
            star_graph(-1)

    def test_paper_example_structure(self):
        g = paper_example_graph()
        assert g.num_vertices == 6
        assert sorted(g.neighbors(3).tolist()) == [2, 4, 5]
        assert g.degree(0) == 1


class TestGridsAndStencils:
    def test_grid2d_degrees(self):
        g = grid2d(4, 5)
        assert g.num_vertices == 20
        assert g.max_degree() == 4
        corner_degree = g.degree(0)
        assert corner_degree == 2

    def test_grid2d_diagonal(self):
        g = grid2d(4, 4, diagonal=True)
        assert g.max_degree() == 8

    def test_grid_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            grid2d(0, 3)

    def test_laplace2d_matrix_structure(self):
        A = laplace2d(4, 4)
        assert A.shape == (16, 16)
        assert (A.diagonal() == 4).all()
        assert abs(A - A.T).max() == 0

    def test_laplace3d_matrix_is_7_point(self):
        A = laplace3d_matrix(4, 4, 4)
        assert A.shape == (64, 64)
        assert (A.diagonal() == 6).all()
        # interior row has 7 nonzeros
        row_nnz = np.diff(A.indptr)
        assert row_nnz.max() == 7

    def test_laplace3d_graph_degrees(self):
        g = laplace3d(5, 5, 5)
        assert g.num_vertices == 125
        assert g.max_degree() == 6
        assert g.degree(0) == 3  # corner

    def test_laplace3d_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            laplace3d_matrix(0, 2, 2)

    def test_anisotropic3d(self):
        A = anisotropic3d(4, 4, 4, epsilon_y=0.1, epsilon_z=0.01)
        iso = laplace3d_matrix(4, 4, 4)
        assert A.shape == iso.shape
        assert A.diagonal().max() < iso.diagonal().max()

    def test_elasticity_matrix_spd_structure(self):
        A = elasticity3d_matrix(3, 3, 3, dofs_per_node=3)
        assert A.shape == (81, 81)
        assert abs(A - A.T).max() < 1e-12
        # strictly diagonally dominant by construction
        diag = np.abs(A.diagonal())
        offdiag_sum = np.abs(A).sum(axis=1).A1 - diag
        assert np.all(diag >= offdiag_sum)

    def test_elasticity_graph_average_degree_matches_paper_profile(self):
        g = elasticity3d(6, 6, 6, dofs_per_node=3)
        # The paper's Elasticity3D_60 has average degree ~78 (27-point stencil x 3 dof).
        assert 50 <= g.average_degree() <= 81
        assert g.num_vertices == 6 * 6 * 6 * 3


class TestRandomGenerators:
    def test_random_regular_degree_profile(self):
        g = random_regular(200, 6, seed=1)
        degs = g.degrees()
        assert degs.mean() == pytest.approx(6, abs=1.0)
        assert degs.max() <= 12

    def test_random_regular_determinism(self):
        assert random_regular(100, 4, seed=7) == random_regular(100, 4, seed=7)
        assert random_regular(100, 4, seed=7) != random_regular(100, 4, seed=8)

    def test_random_regular_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            random_regular(10, 10)

    def test_random_gnp_bounds(self):
        g = random_gnp(50, 0.1, seed=0)
        assert g.num_vertices == 50
        assert not g.has_self_loops()
        with pytest.raises(ValueError):
            random_gnp(10, 1.5)

    def test_rmat_power_law_shape(self):
        g = rmat(9, edge_factor=4, seed=3)
        assert g.num_vertices == 512
        degs = g.degrees()
        assert degs.max() > 4 * degs[degs > 0].mean()

    def test_rmat_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat(5, a=0.6, b=0.3, c=0.2)

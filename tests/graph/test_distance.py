"""Tests for BFS distances and k-hop neighbourhoods."""

import numpy as np
import pytest

from repro.graph import (
    all_pairs_within,
    bfs_distances,
    cycle_graph,
    from_edges,
    k_hop_neighborhood,
    path_graph,
    star_graph,
)


class TestBFS:
    def test_path_distances(self):
        g = path_graph(5)
        dist = bfs_distances(g, 0)
        assert dist.tolist() == [0, 1, 2, 3, 4]

    def test_unreachable_marked_minus_one(self):
        g = from_edges(4, [(0, 1)])
        dist = bfs_distances(g, 0)
        assert dist[2] == -1 and dist[3] == -1

    def test_max_distance_truncation(self):
        g = path_graph(6)
        dist = bfs_distances(g, 0, max_distance=2)
        assert dist[2] == 2
        assert dist[3] == -1

    def test_invalid_source(self):
        with pytest.raises(IndexError):
            bfs_distances(path_graph(3), 9)

    def test_cycle_symmetry(self):
        g = cycle_graph(8)
        dist = bfs_distances(g, 0)
        assert dist[4] == 4
        assert dist[1] == dist[7] == 1


class TestKHop:
    def test_k_hop_includes_self_by_default(self):
        g = path_graph(5)
        nb = k_hop_neighborhood(g, 2, 1)
        assert nb.tolist() == [1, 2, 3]

    def test_k_hop_excluding_self(self):
        g = path_graph(5)
        nb = k_hop_neighborhood(g, 2, 1, include_self=False)
        assert nb.tolist() == [1, 3]

    def test_k_hop_radius_two(self):
        g = star_graph(4)
        nb = k_hop_neighborhood(g, 1, 2)
        assert set(nb.tolist()) == {0, 1, 2, 3, 4}

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            k_hop_neighborhood(path_graph(3), 0, -1)


class TestAllPairsWithin:
    def test_path_pairs_within_two(self):
        g = path_graph(4)
        pairs = set(all_pairs_within(g, 2))
        assert pairs == {(0, 1), (1, 2), (2, 3), (0, 2), (1, 3)}

    def test_k_zero_yields_nothing(self):
        assert list(all_pairs_within(path_graph(3), 0)) == []

"""Tests for the CSRGraph container."""

import numpy as np
import pytest

from repro.graph import CSRGraph, from_edges, path_graph, star_graph


class TestConstruction:
    def test_basic_construction(self):
        g = CSRGraph(np.array([0, 1, 3, 4]), np.array([1, 0, 2, 1]))
        assert g.num_vertices == 3
        assert g.num_edge_slots == 4
        assert g.degree(1) == 2

    def test_empty_graph(self):
        g = CSRGraph.empty(4)
        assert g.num_vertices == 4
        assert g.num_edge_slots == 0
        assert g.degrees().tolist() == [0, 0, 0, 0]

    def test_zero_vertex_graph(self):
        g = CSRGraph.empty(0)
        assert g.num_vertices == 0
        assert g.average_degree() == 0.0
        assert g.max_degree() == 0

    def test_rejects_bad_rowmap_start(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_rejects_rowmap_entries_mismatch(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2]), np.array([0]))

    def test_rejects_decreasing_rowmap(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2]))

    def test_rejects_out_of_range_entries(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_rejects_float_arrays(self):
        with pytest.raises(TypeError):
            CSRGraph(np.array([0.0, 1.0]), np.array([0]))

    def test_rejects_negative_vertex_count(self):
        with pytest.raises(ValueError):
            CSRGraph.empty(-1)

    def test_arrays_are_read_only(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            g.rowmap[0] = 7
        with pytest.raises(ValueError):
            g.entries[0] = 3


class TestAccessors:
    def test_neighbors(self):
        g = from_edges(4, [(0, 1), (1, 2), (1, 3)])
        assert sorted(g.neighbors(1).tolist()) == [0, 2, 3]
        assert g.neighbors(0).tolist() == [1]

    def test_neighbors_out_of_range(self):
        g = path_graph(3)
        with pytest.raises(IndexError):
            g.neighbors(5)
        with pytest.raises(IndexError):
            g.degree(-1)

    def test_has_edge(self):
        g = path_graph(4)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_degrees_and_average(self):
        g = star_graph(5)
        assert g.degree(0) == 5
        assert g.max_degree() == 5
        assert g.average_degree() == pytest.approx(10 / 6)

    def test_num_edges_counts_undirected(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.num_edge_slots == 8

    def test_iter_edges_and_edge_array(self):
        g = from_edges(4, [(0, 1), (2, 3), (1, 2)])
        edges = sorted(g.iter_edges())
        assert edges == [(0, 1), (1, 2), (2, 3)]
        arr = g.edge_array()
        assert sorted(map(tuple, arr.tolist())) == edges


class TestProperties:
    def test_symmetry_check(self):
        g = path_graph(4)
        assert g.is_symmetric()
        asym = CSRGraph(np.array([0, 1, 1]), np.array([1]))
        assert not asym.is_symmetric()

    def test_self_loop_detection(self):
        g = path_graph(3)
        assert not g.has_self_loops()
        loop = CSRGraph(np.array([0, 1, 1]), np.array([0]))
        assert loop.has_self_loops()

    def test_equality_and_hash(self):
        a = path_graph(5)
        b = path_graph(5)
        c = path_graph(6)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a graph"

    def test_copy_is_independent_and_equal(self):
        g = path_graph(4)
        h = g.copy()
        assert g == h
        assert g is not h

    def test_memory_bytes(self):
        g = path_graph(10)
        expected = 8 * 11 + 4 * 18
        assert g.memory_bytes() == expected

    def test_repr_contains_counts(self):
        text = repr(path_graph(3))
        assert "num_vertices=3" in text

"""Tests for structural graph operations (square, subgraphs, statistics)."""

import numpy as np
import pytest

from repro.graph import (
    all_pairs_within,
    complement_mask,
    cycle_graph,
    degree_statistics,
    distance_k_graph,
    from_edges,
    grid2d,
    induced_subgraph,
    path_graph,
    square,
    star_graph,
    union,
)


class TestSquare:
    def test_square_of_path(self):
        g = path_graph(5)
        sq = square(g)
        # distance-2 pairs appear
        assert sq.has_edge(0, 2)
        assert sq.has_edge(1, 3)
        # distance-3 pairs do not
        assert not sq.has_edge(0, 3)
        # original edges are kept (distance-1)
        assert sq.has_edge(0, 1)

    def test_square_matches_bfs_pairs(self, nonempty_small_graph):
        g = nonempty_small_graph
        sq = square(g)
        expected = set(all_pairs_within(g, 2))
        actual = {(u, v) for u, v in sq.iter_edges() if u < v}
        assert actual == expected

    def test_distance_k_graph_general(self):
        g = path_graph(7)
        d3 = distance_k_graph(g, 3)
        assert d3.has_edge(0, 3)
        assert not d3.has_edge(0, 4)
        with pytest.raises(ValueError):
            distance_k_graph(g, 0)

    def test_square_star_is_clique_on_leaves(self):
        g = star_graph(5)
        sq = square(g)
        for i in range(1, 6):
            for j in range(i + 1, 6):
                assert sq.has_edge(i, j)


class TestInducedSubgraph:
    def test_basic_subgraph(self):
        g = cycle_graph(6)
        sub, mapping = induced_subgraph(g, np.array([0, 1, 2]))
        assert sub.num_vertices == 3
        assert mapping.tolist() == [0, 1, 2]
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)
        assert not sub.has_edge(0, 2)

    def test_subgraph_of_nothing(self):
        g = path_graph(4)
        sub, mapping = induced_subgraph(g, np.array([], dtype=np.int64))
        assert sub.num_vertices == 0
        assert mapping.size == 0

    def test_subgraph_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            induced_subgraph(path_graph(3), np.array([5]))

    def test_subgraph_deduplicates(self):
        g = path_graph(4)
        sub, mapping = induced_subgraph(g, np.array([2, 2, 1]))
        assert sub.num_vertices == 2
        assert mapping.tolist() == [1, 2]


class TestUnionAndMask:
    def test_union(self):
        a = from_edges(4, [(0, 1)])
        b = from_edges(4, [(2, 3)])
        u = union(a, b)
        assert u.has_edge(0, 1) and u.has_edge(2, 3)
        with pytest.raises(ValueError):
            union(a, from_edges(5, [(0, 1)]))

    def test_complement_mask(self):
        mask = complement_mask(5, np.array([1, 3]))
        assert mask.tolist() == [True, False, True, False, True]
        with pytest.raises(ValueError):
            complement_mask(3, np.array([7]))


class TestDegreeStatistics:
    def test_statistics_of_grid(self):
        g = grid2d(5, 5)
        stats = degree_statistics(g)
        assert stats.num_vertices == 25
        assert stats.max_degree == 4
        assert stats.min_degree == 2
        assert stats.average_degree == pytest.approx(g.average_degree())
        assert stats.num_vertices_millions == pytest.approx(25e-6)
        assert stats.num_edges_millions == pytest.approx(g.num_edge_slots / 1e6)

    def test_statistics_of_empty_graph(self):
        from repro.graph import empty_graph

        stats = degree_statistics(empty_graph(3))
        assert stats.max_degree == 0
        assert stats.min_degree == 0

"""Tests for MatrixMarket I/O."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (
    CSRGraph,
    from_edges,
    laplace2d,
    read_matrix_market,
    to_scipy,
    write_matrix_market,
)


class TestRoundTrip:
    def test_matrix_roundtrip(self, tmp_path):
        A = laplace2d(4, 3)
        path = tmp_path / "lap.mtx"
        write_matrix_market(path, A)
        B = read_matrix_market(path)
        assert (A != B).nnz == 0

    def test_graph_pattern_roundtrip(self, tmp_path):
        g = from_edges(5, [(0, 1), (1, 2), (3, 4)])
        path = tmp_path / "graph.mtx"
        write_matrix_market(path, g)
        g2 = read_matrix_market(path, as_graph=True)
        assert isinstance(g2, CSRGraph)
        assert g2 == g

    def test_gzip_roundtrip(self, tmp_path):
        A = laplace2d(3, 3)
        path = tmp_path / "lap.mtx.gz"
        write_matrix_market(path, A)
        B = read_matrix_market(path)
        assert (A != B).nnz == 0


class TestParsing:
    def test_symmetric_file_is_expanded(self, tmp_path):
        path = tmp_path / "sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% comment line\n"
            "3 3 3\n"
            "1 1 2.0\n"
            "2 1 -1.0\n"
            "3 2 -1.0\n"
        )
        A = read_matrix_market(path)
        assert A[0, 1] == -1.0 and A[1, 0] == -1.0
        assert A[1, 2] == -1.0 and A[2, 1] == -1.0
        assert A[0, 0] == 2.0

    def test_pattern_file(self, tmp_path):
        path = tmp_path / "pat.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n"
            "1 2\n"
            "2 1\n"
        )
        g = read_matrix_market(path, as_graph=True)
        assert g.has_edge(0, 1)

    def test_rejects_non_matrixmarket(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("hello world\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)

    def test_rejects_array_format(self, tmp_path):
        path = tmp_path / "dense.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)

"""Tests for connectivity and degree-histogram helpers."""

import pytest

from repro.graph import (
    connected_components,
    cycle_graph,
    degree_histogram,
    empty_graph,
    from_edges,
    grid2d,
    is_connected,
    path_graph,
)


def test_connected_components_of_connected_graph():
    n, labels = connected_components(cycle_graph(5))
    assert n == 1
    assert len(set(labels.tolist())) == 1


def test_connected_components_of_disconnected_graph(disconnected_graph):
    n, labels = connected_components(disconnected_graph)
    # one triangle, one path of 4, two isolated vertices
    assert n == 4
    assert labels.size == 9


def test_connected_components_of_empty_graph():
    n, labels = connected_components(empty_graph(0))
    assert n == 0
    assert labels.size == 0


def test_is_connected():
    assert is_connected(path_graph(4))
    assert not is_connected(from_edges(4, [(0, 1)]))
    assert not is_connected(empty_graph(0))


def test_degree_histogram_grid():
    hist = degree_histogram(grid2d(3, 3))
    # 4 corners of degree 2, 4 edge-midpoints of degree 3, 1 center of degree 4
    assert hist == {2: 4, 3: 4, 4: 1}


def test_degree_histogram_isolated():
    hist = degree_histogram(empty_graph(3))
    assert hist == {0: 3}

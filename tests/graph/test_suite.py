"""Tests for the 17-matrix evaluation suite and its synthetic stand-ins."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (
    SUITE,
    load_suite_graph,
    load_suite_matrix,
    paper_statistics,
    suite_names,
    write_matrix_market,
)


class TestRegistry:
    def test_seventeen_main_matrices(self):
        assert len(suite_names()) == 17

    def test_bodyy5_is_extra(self):
        names_all = suite_names(main_only=False)
        assert "bodyy5" in names_all
        assert "bodyy5" not in suite_names()

    def test_every_main_record_has_reference_data(self):
        for name in suite_names():
            rec = paper_statistics(name)
            assert rec.paper_nv_millions > 0
            assert set(rec.paper_times_ms) == {"v100", "mi100", "skylake", "tx2"}
            assert set(rec.paper_iterations) == {"fixed", "xor", "xorstar"}
            assert set(rec.paper_mis2_sizes) == {"kk", "cusp", "viennacl"}

    def test_paper_reference_values_spot_checks(self):
        eco = paper_statistics("ecology2")
        assert eco.paper_avg_degree == pytest.approx(3.0)
        assert eco.paper_iterations["xorstar"] == 8
        assert eco.paper_mis2_sizes["kk"] == 139431
        lap = paper_statistics("Laplace3D_100")
        assert lap.paper_num_vertices == 1_000_000
        assert lap.paper_times_ms["v100"] == pytest.approx(3.34)

    def test_unknown_matrix_raises(self):
        with pytest.raises(KeyError):
            paper_statistics("not_a_matrix")


class TestStandIns:
    @pytest.mark.parametrize("name", suite_names())
    def test_standin_generates_and_scales(self, name):
        graph = load_suite_graph(name, scale=0.004, seed=0)
        record = paper_statistics(name)
        target = record.paper_num_vertices * 0.004
        assert graph.num_vertices >= 64
        # within a factor ~3 of the requested scaled size (grid rounding)
        assert graph.num_vertices <= max(3 * target, 500)
        assert graph.is_symmetric()
        assert not graph.has_self_loops()

    def test_degree_profile_roughly_matches_paper(self):
        # Spot-check representative generator families.
        for name, tolerance in [("ecology2", 2.0), ("Laplace3D_100", 2.0), ("audikw_1", 8.0)]:
            graph = load_suite_graph(name, scale=0.01)
            record = paper_statistics(name)
            assert abs(graph.average_degree() - record.paper_avg_degree) <= tolerance

    def test_matrix_is_spd_like(self):
        A = load_suite_matrix("Emilia_923", scale=0.002)
        assert abs(A - A.T).max() < 1e-10
        assert A.diagonal().min() > 0

    def test_determinism_of_standins(self):
        a = load_suite_graph("Serena", scale=0.002, seed=1)
        b = load_suite_graph("Serena", scale=0.002, seed=1)
        assert a == b

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_suite_matrix("ecology2", scale=0.0)

    def test_mtx_dir_override(self, tmp_path):
        # A real .mtx file in mtx_dir takes precedence over the stand-in generator.
        from repro.graph import laplace2d

        A = laplace2d(5, 5)
        write_matrix_market(tmp_path / "ecology2.mtx", A)
        B = load_suite_matrix("ecology2", scale=0.01, mtx_dir=str(tmp_path))
        assert B.shape == (25, 25)

"""Shared fixtures for the test-suite.

Graphs used across many test modules are defined once here. They are intentionally
small: the algorithms are verified against brute-force BFS-based checks, so keeping
the fixtures small keeps the whole suite fast while still covering the interesting
structure (paths, cycles, stars, grids, stencils, random graphs, disconnected graphs,
graphs with isolated vertices).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

# Hypothesis profiles: CI runs fully derandomized so every pipeline execution
# explores the same example sequence (reproducible pass/fail); local runs keep
# the default randomized exploration. Select explicitly with
# HYPOTHESIS_PROFILE=ci|default. Hypothesis stays an optional test dependency —
# without it the property suites fail to import but everything else runs.
try:
    from hypothesis import settings as _hypothesis_settings
except ImportError:  # pragma: no cover - exercised only in minimal environments
    _hypothesis_settings = None
if _hypothesis_settings is not None:
    _hypothesis_settings.register_profile("ci", derandomize=True, print_blob=True)
    _hypothesis_settings.load_profile(
        os.environ.get("HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "default")
    )

from repro.graph import (
    CSRGraph,
    complete_graph,
    cycle_graph,
    elasticity3d,
    empty_graph,
    from_edges,
    grid2d,
    laplace2d,
    laplace3d,
    laplace3d_matrix,
    paper_example_graph,
    path_graph,
    random_gnp,
    random_regular,
    star_graph,
)

__all__ = []


@pytest.fixture
def fig1_graph() -> CSRGraph:
    """The 6-vertex worked-example graph of the paper's Fig. 1."""
    return paper_example_graph()


@pytest.fixture
def small_laplace3d() -> CSRGraph:
    """A 10x10x10 7-point-stencil graph (1000 vertices)."""
    return laplace3d(10, 10, 10)


@pytest.fixture
def small_laplace3d_matrix():
    """The 10x10x10 Laplace matrix matching :func:`small_laplace3d`."""
    return laplace3d_matrix(10, 10, 10)


@pytest.fixture
def medium_laplace3d() -> CSRGraph:
    """A 14x14x14 7-point-stencil graph used by the solver tests."""
    return laplace3d(14, 14, 14)


@pytest.fixture
def small_elasticity() -> CSRGraph:
    """A small 27-point-stencil, 3-dof elasticity graph."""
    return elasticity3d(5, 5, 5)


@pytest.fixture
def random_graph() -> CSRGraph:
    """A deterministic Erdős–Rényi graph with 120 vertices."""
    return random_gnp(120, 0.05, seed=3)


@pytest.fixture
def disconnected_graph() -> CSRGraph:
    """Two components plus two isolated vertices."""
    edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6)]
    return from_edges(9, edges)


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running test (excluded from quick runs)")


#: Collection of named small graphs exercised by parametrised structural tests.
SMALL_GRAPH_CASES = {
    "empty": empty_graph(0),
    "single_vertex": empty_graph(1),
    "isolated_vertices": empty_graph(5),
    "single_edge": path_graph(2),
    "path10": path_graph(10),
    "cycle9": cycle_graph(9),
    "star8": star_graph(8),
    "complete6": complete_graph(6),
    "grid5x7": grid2d(5, 7),
    "fig1": paper_example_graph(),
    "gnp60": random_gnp(60, 0.08, seed=1),
    "regular48": random_regular(48, 4, seed=2),
    "disconnected": from_edges(9, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 6)]),
}


@pytest.fixture(params=sorted(SMALL_GRAPH_CASES), ids=sorted(SMALL_GRAPH_CASES))
def any_small_graph(request) -> CSRGraph:
    """Parametrised fixture iterating over all named small graphs."""
    return SMALL_GRAPH_CASES[request.param]


@pytest.fixture(
    params=[name for name, g in sorted(SMALL_GRAPH_CASES.items()) if g.num_vertices > 0],
    ids=[name for name, g in sorted(SMALL_GRAPH_CASES.items()) if g.num_vertices > 0],
)
def nonempty_small_graph(request) -> CSRGraph:
    """Parametrised fixture over the non-empty named small graphs."""
    return SMALL_GRAPH_CASES[request.param]

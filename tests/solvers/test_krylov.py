"""Tests for CG, GMRES and the direct coarse solver."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import laplace2d, laplace3d_matrix
from repro.solvers import DirectSolver, JacobiSmoother, gmres, pcg


@pytest.fixture
def spd_system():
    A = laplace2d(15, 15)
    rng = np.random.default_rng(2)
    x_exact = rng.random(A.shape[0])
    return A, x_exact, A @ x_exact


class TestDirectSolver:
    def test_exact_solve(self, spd_system):
        A, x_exact, b = spd_system
        solver = DirectSolver(A)
        assert np.allclose(solver.solve(b), x_exact, atol=1e-8)

    def test_singular_matrix_falls_back_to_pinv(self):
        A = sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]))
        solver = DirectSolver(A)
        x = solver.solve(np.array([2.0, 2.0]))
        assert np.allclose(A @ x, [2.0, 2.0])

    def test_empty_system(self):
        solver = DirectSolver(sp.csr_matrix((0, 0)))
        assert solver.solve(np.zeros(0)).size == 0

    def test_validation(self, spd_system):
        A, _, _ = spd_system
        solver = DirectSolver(A)
        with pytest.raises(ValueError):
            solver.solve(np.zeros(3))
        with pytest.raises(ValueError):
            DirectSolver(sp.csr_matrix(np.ones((2, 3))))


class TestPCG:
    def test_converges_unpreconditioned(self, spd_system):
        A, x_exact, b = spd_system
        result = pcg(A, b, tol=1e-10, maxiter=2000)
        assert result.converged
        assert np.allclose(result.x, x_exact, atol=1e-6)
        assert result.residual_norms[-1] < result.residual_norms[0]

    def test_preconditioning_reduces_iterations(self, spd_system):
        A, _, b = spd_system
        plain = pcg(A, b, tol=1e-10, maxiter=2000)
        smoother = JacobiSmoother(A, sweeps=2)
        preconditioned = pcg(A, b, M=smoother.apply, tol=1e-10, maxiter=2000)
        assert preconditioned.converged
        assert preconditioned.iterations < plain.iterations

    def test_zero_rhs(self, spd_system):
        A, _, _ = spd_system
        result = pcg(A, np.zeros(A.shape[0]))
        assert result.converged
        assert result.iterations == 0
        assert np.all(result.x == 0)

    def test_initial_guess(self, spd_system):
        A, x_exact, b = spd_system
        result = pcg(A, b, x0=x_exact.copy(), tol=1e-10)
        assert result.iterations == 0
        assert result.converged

    def test_maxiter_respected(self, spd_system):
        A, _, b = spd_system
        result = pcg(A, b, tol=1e-14, maxiter=3)
        assert result.iterations == 3
        assert not result.converged

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            pcg(laplace2d(3, 3), np.zeros(5))


class TestGMRES:
    def test_converges_on_spd_system(self, spd_system):
        A, x_exact, b = spd_system
        result = gmres(A, b, tol=1e-10, maxiter=500)
        assert result.converged
        assert np.allclose(result.x, x_exact, atol=1e-5)

    def test_converges_on_nonsymmetric_system(self):
        A = laplace2d(10, 10).tolil()
        A[0, 5] += 0.3  # break symmetry
        A = sp.csr_matrix(A)
        rng = np.random.default_rng(3)
        x_exact = rng.random(A.shape[0])
        b = A @ x_exact
        result = gmres(A, b, tol=1e-10, maxiter=500)
        assert result.converged
        assert np.allclose(result.x, x_exact, atol=1e-5)

    def test_preconditioning_reduces_iterations(self, spd_system):
        A, _, b = spd_system
        plain = gmres(A, b, tol=1e-8, maxiter=800)
        smoother = JacobiSmoother(A, sweeps=2)
        pre = gmres(A, b, M=smoother.apply, tol=1e-8, maxiter=800)
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_restart_still_converges(self, spd_system):
        A, x_exact, b = spd_system
        result = gmres(A, b, tol=1e-8, restart=10, maxiter=800)
        assert result.converged
        assert np.allclose(result.x, x_exact, atol=1e-4)

    def test_zero_rhs(self, spd_system):
        A, _, _ = spd_system
        result = gmres(A, np.zeros(A.shape[0]))
        assert result.converged and result.iterations == 0

    def test_maxiter_cap(self, spd_system):
        A, _, b = spd_system
        result = gmres(A, b, tol=1e-15, maxiter=5)
        assert result.iterations <= 5
        assert not result.converged

    def test_validation(self):
        with pytest.raises(ValueError):
            gmres(laplace2d(3, 3), np.zeros(5))
        with pytest.raises(ValueError):
            gmres(laplace2d(3, 3), np.zeros(9), restart=0)

"""Tests for the Jacobi and Chebyshev smoothers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import laplace2d
from repro.solvers import ChebyshevSmoother, JacobiSmoother


@pytest.fixture
def system():
    A = laplace2d(12, 12)
    rng = np.random.default_rng(0)
    x_exact = rng.random(A.shape[0])
    return A, x_exact, A @ x_exact


class TestJacobi:
    def test_reduces_residual(self, system):
        A, x_exact, b = system
        smoother = JacobiSmoother(A, sweeps=3)
        x = smoother.apply(b)
        assert np.linalg.norm(b - A @ x) < np.linalg.norm(b)

    def test_sweeps_accumulate(self, system):
        A, _, b = system
        one = JacobiSmoother(A, sweeps=1).apply(b)
        two = JacobiSmoother(A, sweeps=2).apply(b)
        r1 = np.linalg.norm(b - A @ one)
        r2 = np.linalg.norm(b - A @ two)
        assert r2 < r1

    def test_initial_guess_respected(self, system):
        A, x_exact, b = system
        smoother = JacobiSmoother(A, sweeps=1)
        from_exact = smoother.apply(b, x_exact.copy())
        assert np.allclose(from_exact, x_exact, atol=1e-12)

    def test_error_energy_norm_does_not_grow(self, system):
        A, _, _ = system
        n = A.shape[0]
        rng = np.random.default_rng(1)
        rough = rng.standard_normal(n)
        smoother = JacobiSmoother(A, sweeps=2)
        # For the homogeneous system b = 0 the new error is simply the smoother
        # applied to the old error; damped Jacobi must not amplify it in energy norm.
        e_after = smoother.apply(np.zeros(n), rough)
        assert e_after @ (A @ e_after) <= rough @ (A @ rough) * 1.001

    def test_zero_diagonal_rejected(self):
        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        with pytest.raises(ValueError):
            JacobiSmoother(A)


class TestChebyshev:
    def test_reduces_residual(self, system):
        A, _, b = system
        smoother = ChebyshevSmoother(A, degree=3)
        x = smoother.apply(b)
        assert np.linalg.norm(b - A @ x) < np.linalg.norm(b)

    def test_higher_degree_better(self, system):
        A, _, b = system
        r2 = np.linalg.norm(b - A @ ChebyshevSmoother(A, degree=2).apply(b))
        r4 = np.linalg.norm(b - A @ ChebyshevSmoother(A, degree=4).apply(b))
        assert r4 < r2

    def test_explicit_lambda_max(self, system):
        A, _, b = system
        x = ChebyshevSmoother(A, degree=2, lambda_max=2.0).apply(b)
        assert np.all(np.isfinite(x))

    def test_validation(self):
        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        with pytest.raises(ValueError):
            ChebyshevSmoother(A)
        with pytest.raises(ValueError):
            ChebyshevSmoother(laplace2d(3, 3), lambda_max=-1.0)

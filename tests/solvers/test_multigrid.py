"""Tests for the SA-AMG hierarchy and V-cycle (the Table V substrate)."""

import numpy as np
import pytest

from repro.coarsen import mis2_aggregation, mis2_basic_aggregation, serial_aggregation
from repro.graph import laplace3d_matrix
from repro.solvers import build_hierarchy, pcg


@pytest.fixture(scope="module")
def laplace_system():
    A = laplace3d_matrix(12, 12, 12)
    b = np.ones(A.shape[0])
    return A, b


class TestHierarchySetup:
    def test_levels_shrink(self, laplace_system):
        A, _ = laplace_system
        h = build_hierarchy(A, max_levels=5, min_coarse_size=40)
        sizes = h.level_sizes()
        assert sizes[0] == A.shape[0]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] <= 40 or h.num_levels == 5

    def test_transfer_operator_shapes(self, laplace_system):
        A, _ = laplace_system
        h = build_hierarchy(A)
        for fine, coarse in zip(h.levels, h.levels[1:]):
            assert fine.P.shape == (fine.A.shape[0], coarse.A.shape[0])
            assert fine.R.shape == (coarse.A.shape[0], fine.A.shape[0])

    def test_operator_complexity_reasonable(self, laplace_system):
        A, _ = laplace_system
        h = build_hierarchy(A)
        assert 1.0 < h.operator_complexity() < 3.0

    def test_aggregation_time_recorded(self, laplace_system):
        A, _ = laplace_system
        h = build_hierarchy(A)
        assert 0 < h.aggregation_seconds <= h.setup_seconds

    def test_max_levels_respected(self, laplace_system):
        A, _ = laplace_system
        h = build_hierarchy(A, max_levels=2, min_coarse_size=2)
        assert h.num_levels <= 2

    def test_aggregation_name_recorded(self, laplace_system):
        A, _ = laplace_system
        h = build_hierarchy(A, aggregation_fn=mis2_basic_aggregation, aggregation_name="MIS2 Basic")
        assert h.aggregation_name == "MIS2 Basic"


class TestVCycleSolve:
    def test_vcycle_reduces_residual(self, laplace_system):
        A, b = laplace_system
        h = build_hierarchy(A)
        x = h.vcycle(b)
        assert np.linalg.norm(b - A @ x) < np.linalg.norm(b)

    def test_preconditioned_cg_converges_fast(self, laplace_system):
        A, b = laplace_system
        h = build_hierarchy(A)
        result = h.solve(b, tol=1e-10)
        assert result.converged
        assert result.iterations < 30
        assert np.allclose(A @ result.x, b, atol=1e-6)

    def test_amg_beats_unpreconditioned_cg(self, laplace_system):
        A, b = laplace_system
        h = build_hierarchy(A)
        amg = h.solve(b, tol=1e-10)
        plain = pcg(A, b, tol=1e-10, maxiter=2000)
        assert amg.iterations < plain.iterations

    def test_solve_records_timings(self, laplace_system):
        A, b = laplace_system
        h = build_hierarchy(A)
        result = h.solve(b, tol=1e-8)
        assert result.solve_seconds > 0
        assert result.setup_seconds == h.setup_seconds


class TestAggregationSchemesInsideAMG:
    @pytest.mark.parametrize(
        "fn", [mis2_aggregation, mis2_basic_aggregation, serial_aggregation],
        ids=["mis2_agg", "mis2_basic", "serial"],
    )
    def test_all_schemes_converge(self, laplace_system, fn):
        A, b = laplace_system
        h = build_hierarchy(A, aggregation_fn=fn)
        result = h.solve(b, tol=1e-10)
        assert result.converged

    def test_algorithm3_converges_at_least_as_fast_as_algorithm2(self, laplace_system):
        # The headline of Table V: MIS2 Agg needs fewer CG iterations than MIS2 Basic.
        A, b = laplace_system
        agg3 = build_hierarchy(A, aggregation_fn=mis2_aggregation).solve(b, tol=1e-10)
        agg2 = build_hierarchy(A, aggregation_fn=mis2_basic_aggregation).solve(b, tol=1e-10)
        assert agg3.iterations <= agg2.iterations

"""Regression tests for the defects the static contract checker surfaced.

The analyzer (repro.analysis) flagged: bare-set iteration seeding the repair
heaps, unlocked reads of the service stats, torn per-entry reads in
``health()``, and an unguarded ``_closed`` flag. Each fix is pinned here.
"""

import threading

import numpy as np
import pytest

from repro.graph import from_edges
from repro.service import GraphService, ServiceClosed
from repro.service.repair import (
    mis_keys,
    ordered_color,
    repair_mis2,
    repair_ordered_color,
    serial_mis2_mask,
)


def _ring(n):
    return from_edges(n, [(i, (i + 1) % n) for i in range(n)])


# ------------------------------------------------- repair heap determinism
def test_repair_mis2_invariant_under_dirty_permutation_and_duplicates():
    """The worklist heap is seeded from np.unique order, not set-hash order:
    any permutation (with duplicates) of the same dirty set must evaluate the
    same vertices in the same order — identical results AND touched counts."""
    graph = _ring(24)
    keys = mis_keys(24, seed=3)
    prev = serial_mis2_mask(graph, keys)
    dirty = np.arange(0, 12, dtype=np.int64)
    rng = np.random.default_rng(7)

    base = repair_mis2(graph, keys, prev, dirty)
    assert base is not None
    base_mask, base_touched = base
    for _ in range(5):
        shuffled = rng.permutation(np.concatenate([dirty, dirty[::2]]))
        result = repair_mis2(graph, keys, prev, shuffled)
        assert result is not None
        mask, touched = result
        assert np.array_equal(mask, base_mask)
        assert touched == base_touched


def test_repair_color_invariant_under_dirty_permutation_and_duplicates():
    graph = _ring(24)
    keys = mis_keys(24, seed=5)
    prev = ordered_color(graph, keys)
    dirty = np.arange(6, 18, dtype=np.int64)
    rng = np.random.default_rng(11)

    base = repair_ordered_color(graph, keys, prev, dirty)
    assert base is not None
    base_colors, base_touched = base
    for _ in range(5):
        shuffled = rng.permutation(np.concatenate([dirty, dirty[1::2]]))
        result = repair_ordered_color(graph, keys, prev, shuffled)
        assert result is not None
        colors, touched = result
        assert np.array_equal(colors, base_colors)
        assert touched == base_touched


# ----------------------------------------------------------- stats snapshot
def test_stats_snapshot_matches_counters_and_is_a_copy():
    with GraphService() as svc:
        svc.add_graph("g", _ring(12))
        svc.mis2("g")
        svc.mis2("g")  # cache hit
        snap = svc.stats_snapshot()
        assert snap["queries"] == 2
        assert snap["cache_hits"] == 1
        snap["queries"] = 999  # a copy, not a live view
        assert svc.stats_snapshot()["queries"] == 2


def test_stats_snapshot_is_consistent_under_concurrent_queries():
    """queries >= full_recomputes + cache_hits must hold in every snapshot;
    an unlocked read could observe the bumped sub-counter before queries."""
    with GraphService() as svc:
        svc.add_graph("g", _ring(16))
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                svc.mis2("g")

        workers = [threading.Thread(target=hammer) for _ in range(3)]
        for t in workers:
            t.start()
        try:
            for _ in range(200):
                snap = svc.stats_snapshot()
                assert snap["queries"] >= snap["full_recomputes"] + snap["cache_hits"]
        finally:
            stop.set()
            for t in workers:
                t.join()


# ------------------------------------------------------------ health snapshot
def test_health_is_never_torn_under_concurrent_mutation():
    """Appending one vertex per epoch makes ``vertices == 8 + epoch`` an
    invariant; reading graph and epoch without the entry lock could pair the
    new graph with the old epoch."""
    with GraphService() as svc:
        svc.add_graph("g", _ring(8))
        done = threading.Event()

        def mutate():
            for _ in range(120):
                svc.add_vertices("g", 1)
            done.set()

        thread = threading.Thread(target=mutate)
        thread.start()
        try:
            while not done.is_set():
                info = svc.health()["graphs"]["g"]
                assert info["vertices"] == 8 + info["epoch"]
        finally:
            thread.join()
        info = svc.health()["graphs"]["g"]
        assert info["epoch"] == 120 and info["vertices"] == 128


# ------------------------------------------------------------------- closing
def test_concurrent_close_is_idempotent_and_rejects_new_work():
    svc = GraphService()
    svc.add_graph("g", _ring(8))
    barrier = threading.Barrier(6)

    def closer():
        barrier.wait()
        svc.close()

    threads = [threading.Thread(target=closer) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert svc.health()["closed"] is True
    with pytest.raises(ServiceClosed):
        svc.mis2("g")
    svc.close()  # still idempotent after the fact
